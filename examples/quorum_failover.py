#!/usr/bin/env python3
"""Quorum key management: surviving key-manager failures without losing dedup.

The TEDStore prototype runs a single key manager; the paper points at a
quorum-based design for fault tolerance (§4, citing Duan CCSW'14). This
example runs that extension:

1. A dealer shares a signing key across 5 key-manager replicas with a
   3-of-5 threshold (Shamir over the P-256 group order).
2. A client derives chunk keys through *blinded* requests to any 3 live
   replicas — no replica ever sees a fingerprint, and fewer than 3
   colluding replicas learn nothing about the signing key.
3. We knock replicas out and show the derived keys do not change — which
   is exactly why deduplication keeps working across failovers.

Usage:
    python examples/quorum_failover.py
"""

import random

from repro.tedstore.quorum import (
    QuorumClient,
    availability_map,
    deal_quorum,
    simulate_failover,
)

THRESHOLD = 3
REPLICAS = 5


def main() -> None:
    servers, public_point = deal_quorum(
        threshold=THRESHOLD, num_servers=REPLICAS, rng=random.Random(2026)
    )
    info = availability_map(REPLICAS, THRESHOLD)
    print(
        f"dealt a {THRESHOLD}-of-{REPLICAS} quorum: tolerates "
        f"{info['tolerated_failures']} replica failures, resists "
        f"{info['collusion_resistance']} colluding replicas"
    )
    print(f"public verification point: {public_point[0]:064x}\n")

    client = QuorumClient(THRESHOLD, rng=random.Random(1))
    fingerprints = [b"chunk-fp-%d" % i for i in range(4)]

    print("healthy cluster (replicas 1,2,3):")
    baseline = {}
    for fp in fingerprints:
        key = client.derive_key(fp, servers[:THRESHOLD])
        baseline[fp] = key
        print(f"  {fp.decode():<12} -> {key.hex()[:24]}…")

    for down in ([1], [1, 2], [4, 5]):
        alive = [s.server_id for s in servers if s.server_id not in down]
        print(f"\nreplicas {down} down; deriving via {alive[:THRESHOLD]}:")
        for fp in fingerprints:
            key = simulate_failover(
                fp, servers, THRESHOLD, down=down, rng=random.Random(9)
            )
            status = "SAME" if key == baseline[fp] else "DIFFERENT (!)"
            print(f"  {fp.decode():<12} -> {key.hex()[:24]}… {status}")
            assert key == baseline[fp]

    print("\ntrying to survive 3 failures (below threshold):")
    try:
        simulate_failover(fingerprints[0], servers, THRESHOLD, down=[1, 2, 3])
    except ValueError as exc:
        print(f"  correctly refused: {exc}")

    print(
        "\nkeys are identical no matter which quorum answers, so duplicate "
        "chunks keep deduplicating across failovers; the blinding keeps "
        "fingerprints hidden from every replica."
    )


if __name__ == "__main__":
    main()
