#!/usr/bin/env python3
"""Quickstart: encrypt a backup snapshot with TED and inspect the trade-off.

Runs in seconds. Demonstrates the two headline knobs of the paper:

1. Trace-driven analysis — encrypt one synthetic file-system snapshot under
   MLE, SKE, and FTED, and compare information leakage (KLD) against
   storage blowup.
2. TEDStore — upload a file through the real client/key-manager/provider
   pipeline and download it back.

Usage:
    python examples/quickstart.py
"""

import random

from repro import (
    MLEScheme,
    SKEScheme,
    TedKeyManager,
    TedScheme,
    generate_fsl_like,
)
from repro.core.kld import samples_for_success
from repro.crypto.cipher import SHACTR
from repro.tedstore import (
    KeyManagerService,
    LocalKeyManager,
    LocalProvider,
    ProviderService,
    TedStoreClient,
)
from repro.traces.workload import unique_file


def tradeoff_demo() -> None:
    print("=== 1. The storage-confidentiality trade-off ===")
    dataset = generate_fsl_like(users=1, snapshots_per_user=1, scale=0.3)
    snapshot = dataset.snapshots[0]
    print(
        f"snapshot: {len(snapshot)} chunks, {snapshot.unique_chunks} unique "
        f"({snapshot.dedup_ratio:.1f}x duplication)"
    )

    schemes = [
        MLEScheme(),
        SKEScheme(rng=random.Random(0)),
        TedScheme(
            TedKeyManager(
                secret=b"quickstart-secret",
                blowup_factor=1.1,  # allow 10% extra storage over exact dedup
                sketch_width=2**16,
                rng=random.Random(0),
            )
        ),
    ]
    print(f"{'scheme':<14} {'KLD':>6} {'blowup':>7} {'samples for 90% attack':>23}")
    for scheme in schemes:
        output = scheme.process(snapshot.records)
        kld = output.kld()
        if kld > 1e-9:
            needed = f"{samples_for_success(0.9, kld):>22,.0f}"
        else:
            needed = f"{'never (uniform)':>22}"
        print(
            f"{scheme.name:<14} {kld:>6.3f} {output.blowup():>7.3f} {needed}"
        )
    print(
        "MLE deduplicates perfectly but leaks frequencies; SKE leaks nothing"
        " but stores every copy; TED sits where you configure it.\n"
    )


def tedstore_demo() -> None:
    print("=== 2. TEDStore: upload and download a file ===")
    key_manager = KeyManagerService(
        TedKeyManager(
            secret=b"org-global-secret",
            blowup_factor=1.05,
            batch_size=2000,
            sketch_width=2**18,
        )
    )
    provider = ProviderService(in_memory=True)
    client = TedStoreClient(
        LocalKeyManager(key_manager),
        LocalProvider(provider),
        master_key=b"\x42" * 32,
        profile=SHACTR,
        sketch_width=2**18,
        batch_size=2000,
    )

    data = unique_file(2 << 20)  # 2 MiB of unique content
    result = client.upload("documents.tar", data)
    print(
        f"uploaded {result.logical_bytes} bytes as {result.chunk_count} "
        f"chunks ({result.stored_chunks} stored, "
        f"{result.duplicate_chunks} deduplicated)"
    )
    restored = client.download("documents.tar")
    assert restored == data
    print("downloaded and verified byte-for-byte. provider stats:")
    for name, value in client.provider.stats():
        print(f"  {name}: {value}")


if __name__ == "__main__":
    tradeoff_demo()
    tedstore_demo()
