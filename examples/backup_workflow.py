#!/usr/bin/env python3
"""Backup workflow: an organization backs up several clients over TCP.

This is the paper's application scenario (§3.1): an organization runs a key
manager, rents provider storage in the cloud, and lets its clients back up
through TEDStore. The script:

1. starts a key manager (FTED, b = 1.05) and an on-disk provider over TCP;
2. has three clients upload a week of evolving backup snapshots
   (synthetic trace replay — content materialized from fingerprints);
3. prints per-upload dedup statistics and the provider's realized storage
   blowup versus exact deduplication;
4. restores one client's latest backup and verifies it byte-for-byte.

Usage:
    python examples/backup_workflow.py
"""

import tempfile

from repro.core.ted import TedKeyManager
from repro.crypto.cipher import SHACTR
from repro.tedstore import (
    KeyManagerService,
    ProviderService,
    RemoteKeyManager,
    RemoteProvider,
    TedStoreClient,
    serve_key_manager,
    serve_provider,
)
from repro.traces.synthetic import SyntheticTraceGenerator, TraceConfig
from repro.traces.workload import snapshot_to_chunks

NUM_CLIENTS = 3
SNAPSHOTS_PER_CLIENT = 3


def main() -> None:
    storage_dir = tempfile.mkdtemp(prefix="tedstore-backup-")
    key_manager = KeyManagerService(
        TedKeyManager(
            secret=b"organization-global-secret",
            blowup_factor=1.05,
            batch_size=4000,
            sketch_width=2**18,
        )
    )
    provider = ProviderService(directory=storage_dir, container_bytes=4 << 20)

    with serve_key_manager(key_manager) as km, serve_provider(provider) as pr:
        print(f"key manager on {km.address}, provider on {pr.address}")
        print(f"provider storage under {storage_dir}\n")

        config = TraceConfig(
            name="org-backups",
            files_per_snapshot=60,
            file_copy_prob=0.4,
            popular_pool_size=2000,
            popular_prob=0.25,
            zipf_s=1.6,
        )
        clients = []
        backups = {}
        for cid in range(NUM_CLIENTS):
            client = TedStoreClient(
                RemoteKeyManager(km.address),
                RemoteProvider(pr.address),
                master_key=bytes([cid + 1]) * 32,  # per-client master key
                profile=SHACTR,
                sketch_width=2**18,
                batch_size=4000,
            )
            clients.append(client)
            generator = SyntheticTraceGenerator(config, f"client{cid}", seed=cid)
            backups[cid] = [
                generator.snapshot(f"client{cid}/day{day}")
                for day in range(SNAPSHOTS_PER_CLIENT)
            ]

        unique_plaintext = set()
        for day in range(SNAPSHOTS_PER_CLIENT):
            for cid, client in enumerate(clients):
                snapshot = backups[cid][day]
                unique_plaintext.update(fp for fp, _ in snapshot.records)
                chunks = [c for _, c in snapshot_to_chunks(snapshot)]
                result = client.upload_chunks(snapshot.snapshot_id, chunks)
                dedup_pct = 100 * result.duplicate_chunks / result.chunk_count
                print(
                    f"day {day} client {cid}: {result.chunk_count:>6} chunks "
                    f"uploaded, {dedup_pct:5.1f}% deduplicated at provider"
                )
        provider.flush()

        stats = dict(clients[0].provider.stats())
        blowup = stats["unique_chunks"] / len(unique_plaintext)
        print(
            f"\nprovider: {stats['logical_chunks']} logical chunks -> "
            f"{stats['unique_chunks']} stored ciphertext chunks across "
            f"{stats['containers']} containers"
        )
        print(
            f"realized storage blowup over exact dedup: {blowup:.3f} "
            f"(configured b = 1.05)"
        )
        print(
            "the overshoot beyond b is the batched tuner's cold start: t "
            "begins at 1 for each client's stream and rises as the key "
            "manager accumulates evidence (Experiment A.5's effect), so "
            "early duplicates were spread more aggressively than the "
            "steady-state budget. longer series amortize this toward b."
        )

        snapshot = backups[0][-1]
        expected = b"".join(c for _, c in snapshot_to_chunks(snapshot))
        restored = clients[0].download(snapshot.snapshot_id)
        assert restored == expected
        print(
            f"\nrestored {snapshot.snapshot_id} "
            f"({len(restored)} bytes) and verified byte-for-byte"
        )

        for client in clients:
            client.key_manager.close()
            client.provider.close()


if __name__ == "__main__":
    main()
