#!/usr/bin/env python3
"""Trade-off explorer: sweep the storage blowup factor and map the frontier.

For a workload of your choice (FSL-like or MS-like synthetic snapshots, or
a trace file converted with repro.traces.format), this sweeps FTED's
storage blowup factor b and prints, for each point on the frontier:

* the predicted KLD from the Eq. 6/7 optimization (a lower bound),
* the realized KLD and actual storage blowup after encryption,
* the number of ciphertext samples an adversary would need to distinguish
  the frequency distribution from uniform with 90% confidence (Eq. 9) —
  the practical meaning of the KLD numbers.

This is the tool an operator would use to pick b (§3.5: "users can readily
configure a storage blowup factor based on their affordable storage
overhead").

Usage:
    python examples/tradeoff_explorer.py [fsl|ms]
"""

import sys

from repro.analysis.tradeoff import make_fted
from repro.core.kld import samples_for_success
from repro.core.schemes import MLEScheme
from repro.core.tuning import solve
from repro.traces.synthetic import generate_fsl_like, generate_ms_like

SWEEP = (1.01, 1.02, 1.05, 1.10, 1.15, 1.20, 1.30, 1.50)


def main(flavor: str) -> None:
    if flavor == "ms":
        dataset = generate_ms_like(machines=1, scale=0.4)
    else:
        dataset = generate_fsl_like(users=1, snapshots_per_user=1, scale=0.4)
    snapshot = dataset.snapshots[0]
    frequencies = snapshot.frequencies()
    print(
        f"workload: {flavor}-like snapshot, {len(snapshot)} chunks, "
        f"{snapshot.unique_chunks} unique, "
        f"dedup ratio {snapshot.dedup_ratio:.2f}x\n"
    )

    mle = MLEScheme().process(snapshot.records)
    baseline_samples = samples_for_success(0.9, mle.kld())
    print(
        f"MLE baseline: KLD = {mle.kld():.3f}; an adversary needs "
        f"~{baseline_samples:,.0f} sampled ciphertext chunks for a 90% "
        f"confident distinguishing attack\n"
    )

    header = (
        f"{'b':>5} {'t*':>6} {'KLD (pred)':>11} {'KLD (real)':>11} "
        f"{'blowup':>7} {'samples@90%':>12} {'vs MLE':>7}"
    )
    print(header)
    print("-" * len(header))
    for b in SWEEP:
        solution = solve(frequencies, b)
        output = make_fted(b, sketch_width=2**16, seed=1).process(
            snapshot.records
        )
        kld = output.kld()
        samples = samples_for_success(0.9, kld) if kld > 1e-9 else float("inf")
        ratio = samples / baseline_samples
        print(
            f"{b:>5.2f} {solution.t:>6} {solution.predicted_kld:>11.4f} "
            f"{kld:>11.4f} {output.blowup():>7.3f} {samples:>12,.0f} "
            f"{ratio:>6.1f}x"
        )
    print(
        "\nreading the table: pick the smallest b whose 'samples@90%' "
        "exceeds what an adversary could plausibly collect."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "fsl")
