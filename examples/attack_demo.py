#!/usr/bin/env python3
"""Frequency-analysis attack demo: watch TED blunt the attack end to end.

Plays both sides of the threat model (§2.3):

* The *defender* encrypts a backup snapshot under MLE, MinHash encryption,
  and FTED at several blowup factors.
* The *adversary* holds an auxiliary dataset — here, the previous backup
  snapshot of the same system, the scenario of Li et al. [DSN '17] — and
  runs rank-based frequency analysis against the observed ciphertexts.

Printed for each scheme: the measured KLD, the attack's inference rate
(fraction of unique ciphertext chunks whose plaintext the adversary
recovers), and the storage cost. SKE is included as the
perfect-but-unaffordable endpoint.

Usage:
    python examples/attack_demo.py
"""

import random

from repro.analysis.attack import attack_scheme
from repro.analysis.tradeoff import make_fted
from repro.core.schemes import MLEScheme, MinHashScheme, SKEScheme
from repro.traces.synthetic import SyntheticTraceGenerator, TraceConfig


def main() -> None:
    config = TraceConfig(
        name="attack-demo",
        files_per_snapshot=120,
        file_copy_prob=0.4,
        popular_pool_size=2000,
        popular_prob=0.25,
        zipf_s=1.7,
        modify_prob=0.2,
    )
    generator = SyntheticTraceGenerator(config, "victim", seed=13)
    auxiliary = generator.snapshot("monday-backup")   # leaked prior backup
    target = generator.snapshot("tuesday-backup")     # what the adversary sees
    overlap = len(
        {fp for fp, _ in auxiliary.records}
        & {fp for fp, _ in target.records}
    ) / target.unique_chunks
    print(
        f"target: {len(target)} chunks ({target.unique_chunks} unique); "
        f"adversary's auxiliary covers {overlap:.0%} of them\n"
    )

    schemes = [
        MLEScheme(),
        MinHashScheme(),
        make_fted(1.05, sketch_width=2**16, seed=3),
        make_fted(1.10, sketch_width=2**16, seed=3),
        make_fted(1.20, sketch_width=2**16, seed=3),
        SKEScheme(rng=random.Random(3)),
    ]

    header = (
        f"{'scheme':<14} {'KLD':>7} {'top-50 inference':>17} "
        f"{'overall':>8} {'blowup':>7}"
    )
    print(header)
    print("-" * len(header))
    for scheme in schemes:
        output = scheme.process(target.records)
        result = attack_scheme(scheme, target, auxiliary)
        print(
            f"{scheme.name:<14} {output.kld():>7.3f} "
            f"{result.top_inference_rate:>16.1%} "
            f"{result.inference_rate:>8.2%} {output.blowup():>7.3f}"
        )

    print(
        "\nMLE leaks the most (deterministic encryption preserves the whole "
        "frequency distribution); TED's probabilistic, frequency-aware keys "
        "flatten the ciphertext histogram so rank matching collapses — at a "
        "storage cost you chose, not one the scheme imposed."
    )


if __name__ == "__main__":
    main()
