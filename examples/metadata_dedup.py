#!/usr/bin/env python3
"""Metadata deduplication: shrinking recipe storage across a backup series.

TEDStore's prototype stores every file's recipes verbatim (§4 lists
metadata dedup as an open limitation, pointing at Metadedup [43]). This
example quantifies what that costs — and what the Metadedup-style extension
(`metadata_dedup=True` on the client) recovers:

1. One user backs up 7 daily snapshots of an evolving file system.
2. Arm A stores recipes verbatim (the paper's prototype behaviour).
3. Arm B splits recipes into content-keyed metadata chunks that ride the
   normal dedup path.
4. We compare the metadata bytes the provider actually keeps.

Usage:
    python examples/metadata_dedup.py
"""

from repro.storage.recipe import FileRecipe, KeyRecipe, seal
from repro.storage.metadedup import pack_metadata_chunks
from repro.traces.synthetic import SyntheticTraceGenerator, TraceConfig

DAYS = 7
MASTER = b"\x07" * 32


def build_recipes(snapshot):
    """Recipes as the TEDStore client would build them (MLE keys here,
    since only recipe *structure* matters for metadata dedup)."""
    from repro.crypto.hashes import hash_concat

    file_recipe = FileRecipe(file_name=snapshot.snapshot_id)
    key_recipe = KeyRecipe()
    for fingerprint, size in snapshot.records:
        file_recipe.add(fingerprint, size)
        key_recipe.add(hash_concat([b"key", fingerprint]))
    return file_recipe, key_recipe


def main() -> None:
    config = TraceConfig(
        name="meta-demo",
        files_per_snapshot=80,
        file_copy_prob=0.35,
        popular_pool_size=1500,
        popular_prob=0.2,
        zipf_s=1.5,
        modify_prob=0.15,
        delete_prob=0.03,
        growth_files=3,
    )
    generator = SyntheticTraceGenerator(config, "user", seed=5)
    snapshots = [generator.snapshot(f"day-{d}") for d in range(DAYS)]

    verbatim_bytes = 0
    dedup_unique: dict = {}
    dedup_logical = 0
    meta_recipe_bytes = 0

    print(f"{'day':>4} {'chunks':>8} {'verbatim recipes':>17} "
          f"{'metadata chunks new/total':>26}")
    for day, snapshot in enumerate(snapshots):
        file_recipe, key_recipe = build_recipes(snapshot)
        sealed_size = len(
            seal(MASTER, file_recipe.serialize())
        ) + len(seal(MASTER, key_recipe.serialize()))
        verbatim_bytes += sealed_size

        chunks, meta_plain = pack_metadata_chunks(
            file_recipe, key_recipe, entries_per_chunk=128
        )
        new = 0
        for fingerprint, ciphertext in chunks:
            dedup_logical += len(ciphertext)
            if fingerprint not in dedup_unique:
                dedup_unique[fingerprint] = len(ciphertext)
                new += 1
        meta_recipe_bytes += len(seal(MASTER, meta_plain))
        print(
            f"{day:>4} {len(snapshot):>8} {sealed_size:>15} B "
            f"{new:>11}/{len(chunks):<3} chunks"
        )

    dedup_physical = sum(dedup_unique.values()) + meta_recipe_bytes
    print(
        f"\nverbatim metadata storage (prototype): {verbatim_bytes:,} bytes"
    )
    print(
        f"deduplicated metadata storage:          {dedup_physical:,} bytes "
        f"({sum(dedup_unique.values()):,} metadata chunks + "
        f"{meta_recipe_bytes:,} meta recipes)"
    )
    print(
        f"metadata saving: "
        f"{100 * (1 - dedup_physical / verbatim_bytes):.1f}% — unchanged "
        f"recipe regions across days are stored once."
    )


if __name__ == "__main__":
    main()
