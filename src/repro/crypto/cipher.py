"""Deterministic chunk ciphers behind a single interface.

Every encryption scheme in this reproduction (MLE, SKE, MinHash, TED) needs
one operation: "encrypt this chunk under this key, deterministically". The
determinism requirement comes from deduplication — two duplicate plaintext
chunks encrypted under the same key must yield byte-identical ciphertexts so
the provider can deduplicate them. We follow the convergent-encryption
convention of deriving the IV from the key itself.

Two profiles mirror the paper's Fast/Secure split (Experiment B.1), plus the
throughput-path ``shactr`` profile (see DESIGN.md §4):

========  =============  =====================  =================
profile   fingerprints   key derivation hash    chunk cipher
========  =============  =====================  =================
secure    SHA-256        SHA-256                AES-256-CTR
fast      MD5            MD5                    AES-128-CTR
shactr    SHA-256        SHA-256                SHA-256-CTR PRF
========  =============  =====================  =================
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto import modes, shactr


@dataclass(frozen=True)
class CipherProfile:
    """Named configuration of hash + cipher algorithms.

    Attributes:
        name: profile identifier ("secure", "fast", "shactr").
        hash_algorithm: hash used for fingerprints and key derivation.
        key_size: symmetric key size in bytes.
    """

    name: str
    hash_algorithm: str
    key_size: int

    def normalize_key(self, key: bytes) -> bytes:
        """Stretch or truncate a derived key to the profile's key size."""
        if len(key) == self.key_size:
            return key
        if len(key) > self.key_size:
            return key[: self.key_size]
        # Expand short keys with SHA-256 feedback; only reachable when a
        # 16-byte MD5-derived key feeds a 32-byte cipher.
        material = key
        while len(material) < self.key_size:
            material += hashlib.sha256(material).digest()
        return material[: self.key_size]

    def derive_nonce(self, key: bytes) -> bytes:
        """Deterministic per-key IV (convergent-encryption convention)."""
        return hashlib.sha256(b"repro-nonce" + key).digest()[:16]

    def encrypt(self, key: bytes, plaintext: bytes) -> bytes:
        """Deterministically encrypt ``plaintext`` under ``key``."""
        key = self.normalize_key(key)
        nonce = self.derive_nonce(key)
        if self.name == "shactr":
            return shactr.encrypt(key, nonce, plaintext)
        return modes.ctr_encrypt(key, nonce, plaintext)

    def decrypt(self, key: bytes, ciphertext: bytes) -> bytes:
        """Invert :meth:`encrypt`."""
        key = self.normalize_key(key)
        nonce = self.derive_nonce(key)
        if self.name == "shactr":
            return shactr.decrypt(key, nonce, ciphertext)
        return modes.ctr_decrypt(key, nonce, ciphertext)


SECURE = CipherProfile(name="secure", hash_algorithm="sha256", key_size=32)
FAST = CipherProfile(name="fast", hash_algorithm="md5", key_size=16)
SHACTR = CipherProfile(name="shactr", hash_algorithm="sha256", key_size=32)

_PROFILES = {p.name: p for p in (SECURE, FAST, SHACTR)}


def get_profile(name: str) -> CipherProfile:
    """Look up a profile by name.

    Raises:
        KeyError: for unknown profile names.
    """
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown cipher profile {name!r}; expected one of "
            f"{sorted(_PROFILES)}"
        ) from None
