"""Hash and key-derivation helpers shared by all schemes.

The paper uses SHA-256 (secure profile) or MD5 (fast profile) for three
roles: chunk fingerprints, the key manager's seed derivation H(kappa || ... )
(Eq. 2), and the client's key derivation H(k || P) (Eq. 4). This module
centralizes those so every scheme derives keys the same way, and provides the
length-prefixed concatenation that keeps H(a || b) unambiguous.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from typing import Iterable, Union

HashInput = Union[bytes, bytearray, memoryview, int, str]

#: Digest sizes of the supported hash profiles.
DIGEST_SIZES = {"sha256": 32, "md5": 16, "sha1": 20}


def _to_bytes(value: HashInput) -> bytes:
    """Canonicalize a hash input component to bytes."""
    if isinstance(value, (bytes, bytearray, memoryview)):
        return bytes(value)
    if isinstance(value, int):
        if value < 0:
            raise ValueError("negative integers are not hashable inputs")
        length = max(1, (value.bit_length() + 7) // 8)
        return value.to_bytes(length, "big")
    if isinstance(value, str):
        return value.encode("utf-8")
    raise TypeError(f"unsupported hash input type: {type(value)!r}")


def new_hash(algorithm: str):
    """Return a fresh hashlib object for a supported algorithm name."""
    if algorithm not in DIGEST_SIZES:
        raise ValueError(f"unsupported hash algorithm: {algorithm!r}")
    return hashlib.new(algorithm)


def digest(data: bytes, algorithm: str = "sha256") -> bytes:
    """Hash a single byte string."""
    h = new_hash(algorithm)
    h.update(data)
    return h.digest()


def hash_concat(parts: Iterable[HashInput], algorithm: str = "sha256") -> bytes:
    """Compute H(p1 || p2 || ...) with length-prefixed components.

    Length prefixes prevent ambiguity between e.g. (b"ab", b"c") and
    (b"a", b"bc"), which matters because the key manager concatenates the
    global secret, short hashes, and the frequency bucket index (Eq. 2).
    """
    h = new_hash(algorithm)
    for part in parts:
        raw = _to_bytes(part)
        h.update(len(raw).to_bytes(4, "big"))
        h.update(raw)
    return h.digest()


def hmac_digest(key: bytes, data: bytes, algorithm: str = "sha256") -> bytes:
    """HMAC used for recipe authentication in the storage substrate."""
    if algorithm not in DIGEST_SIZES:
        raise ValueError(f"unsupported hash algorithm: {algorithm!r}")
    return _hmac.new(key, data, algorithm).digest()


def fingerprint(chunk: bytes, algorithm: str = "sha256") -> bytes:
    """Compute a chunk fingerprint (the cryptographic hash of its content)."""
    return digest(chunk, algorithm)


def truncated_fingerprint(chunk: bytes, bits: int, algorithm: str = "sha256") -> bytes:
    """Fingerprint truncated to ``bits`` (FSL traces use 48-bit, MS 40-bit)."""
    if bits <= 0 or bits % 8:
        raise ValueError("bits must be a positive multiple of 8")
    full = digest(chunk, algorithm)
    if bits // 8 > len(full):
        raise ValueError("requested truncation longer than the digest")
    return full[: bits // 8]
