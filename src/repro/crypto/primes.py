"""Probabilistic prime generation (Miller–Rabin) for the RSA substrate."""

from __future__ import annotations

import random
from typing import Optional

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]


def is_probable_prime(n: int, rounds: int = 40, rng: Optional[random.Random] = None) -> bool:
    """Miller–Rabin primality test with trial division pre-filter.

    With 40 random bases the error probability is below 2^-80, which is the
    standard bar for RSA key generation.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random()
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: Optional[random.Random] = None) -> int:
    """Generate a random probable prime of exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("refusing to generate primes under 8 bits")
    rng = rng or random.Random()
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate, rng=rng):
            return candidate


def modinv(a: int, m: int) -> int:
    """Modular inverse.

    Uses CPython's C implementation (``pow(a, -1, m)``); the extended
    Euclidean fallback is kept for exposition and as a cross-check in the
    tests. Per-chunk unblinding in blind RSA calls this on 2048-bit
    operands, so the C path matters (~100x).

    Raises:
        ValueError: if ``a`` is not invertible modulo ``m``.
    """
    return pow(a, -1, m)


def modinv_euclid(a: int, m: int) -> int:
    """Reference modular inverse via the extended Euclidean algorithm."""
    g, x = _extended_gcd(a % m, m)
    if g != 1:
        raise ValueError("modular inverse does not exist")
    return x % m


def _extended_gcd(a: int, b: int):
    old_r, r = a, b
    old_s, s = 1, 0
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
    return old_r, old_s
