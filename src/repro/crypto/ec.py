"""Elliptic-curve arithmetic over NIST P-256 (short Weierstrass form).

This backs the blind-BLS-style key-generation baseline of Experiment B.2.
Blind BLS signing is ``sig = d * H2C(m)`` — a hash-to-curve followed by
scalar multiplications for blinding, signing, and unblinding. Those scalar
multiplications dominate the protocol's cost, which is exactly what the
experiment measures, so P-256 group arithmetic reproduces the relevant
behaviour without a pairing implementation (the pairing only appears in
*verification*, which is off the measured path; see DESIGN.md §4).

Points are represented as affine ``(x, y)`` tuples with ``None`` for the
point at infinity; scalar multiplication uses Jacobian coordinates
internally to avoid per-step modular inversions.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

# NIST P-256 domain parameters (FIPS 186-4, D.1.2.3).
P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
A = P - 3
B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
N = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551
GX = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
GY = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5

Point = Optional[Tuple[int, int]]

GENERATOR: Point = (GX, GY)


def is_on_curve(point: Point) -> bool:
    """Check the curve equation y^2 = x^3 + ax + b (mod p)."""
    if point is None:
        return True
    x, y = point
    return (y * y - (x * x * x + A * x + B)) % P == 0


def _to_jacobian(point: Point) -> Tuple[int, int, int]:
    if point is None:
        return (1, 1, 0)
    return (point[0], point[1], 1)


def _from_jacobian(jac: Tuple[int, int, int]) -> Point:
    x, y, z = jac
    if z == 0:
        return None
    z_inv = pow(z, P - 2, P)
    z_inv2 = z_inv * z_inv % P
    return (x * z_inv2 % P, y * z_inv2 * z_inv % P)


def _jacobian_double(jac: Tuple[int, int, int]) -> Tuple[int, int, int]:
    x, y, z = jac
    if z == 0 or y == 0:
        return (1, 1, 0)
    ysq = y * y % P
    s = 4 * x * ysq % P
    m = (3 * x * x + A * pow(z, 4, P)) % P
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = 2 * y * z % P
    return (nx, ny, nz)


def _jacobian_add(
    p1: Tuple[int, int, int], p2: Tuple[int, int, int]
) -> Tuple[int, int, int]:
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    if z1 == 0:
        return p2
    if z2 == 0:
        return p1
    z1sq = z1 * z1 % P
    z2sq = z2 * z2 % P
    u1 = x1 * z2sq % P
    u2 = x2 * z1sq % P
    s1 = y1 * z2sq * z2 % P
    s2 = y2 * z1sq * z1 % P
    if u1 == u2:
        if s1 != s2:
            return (1, 1, 0)
        return _jacobian_double(p1)
    h = (u2 - u1) % P
    r = (s2 - s1) % P
    h2 = h * h % P
    h3 = h * h2 % P
    u1h2 = u1 * h2 % P
    nx = (r * r - h3 - 2 * u1h2) % P
    ny = (r * (u1h2 - nx) - s1 * h3) % P
    nz = h * z1 * z2 % P
    return (nx, ny, nz)


def point_add(p1: Point, p2: Point) -> Point:
    """Add two affine points."""
    return _from_jacobian(_jacobian_add(_to_jacobian(p1), _to_jacobian(p2)))


def point_neg(point: Point) -> Point:
    """Negate a point."""
    if point is None:
        return None
    return (point[0], (-point[1]) % P)


def scalar_mult(k: int, point: Point) -> Point:
    """Compute ``k * point`` with a left-to-right double-and-add ladder."""
    k %= N
    if k == 0 or point is None:
        return None
    acc = (1, 1, 0)
    base = _to_jacobian(point)
    for bit in bin(k)[2:]:
        acc = _jacobian_double(acc)
        if bit == "1":
            acc = _jacobian_add(acc, base)
    return _from_jacobian(acc)


def hash_to_curve(data: bytes) -> Point:
    """Map bytes to a curve point by try-and-increment.

    Each candidate x is SHA-256(counter || data) reduced mod p; we accept the
    first x whose cubic has a quadratic residue. Expected two attempts, and
    the output is independent of low-level encoding details — adequate for a
    performance comparator (production systems would use an SSWU map).
    """
    counter = 0
    while True:
        candidate = (
            int.from_bytes(
                hashlib.sha256(counter.to_bytes(4, "big") + data).digest(),
                "big",
            )
            % P
        )
        rhs = (pow(candidate, 3, P) + A * candidate + B) % P
        # p ≡ 3 (mod 4), so a square root, if it exists, is rhs^((p+1)/4).
        y = pow(rhs, (P + 1) // 4, P)
        if y * y % P == rhs:
            return (candidate, y)
        counter += 1


def encode_point(point: Point) -> bytes:
    """Serialize a point as 64 bytes (uncompressed, no prefix)."""
    if point is None:
        return b"\x00" * 64
    return point[0].to_bytes(32, "big") + point[1].to_bytes(32, "big")


def decode_point(data: bytes) -> Point:
    """Inverse of :func:`encode_point`, validating curve membership."""
    if len(data) != 64:
        raise ValueError("encoded point must be 64 bytes")
    if data == b"\x00" * 64:
        return None
    point = (int.from_bytes(data[:32], "big"), int.from_bytes(data[32:], "big"))
    if not is_on_curve(point):
        raise ValueError("point is not on the curve")
    return point
