"""Blinded server-aided key-generation protocols (Experiment B.2 baselines).

Both protocols implement the same interface as TED's key generation from the
client's point of view: hand the key server a *blinded* value derived from a
chunk fingerprint, get back material from which the chunk key is derived.
The server never learns the fingerprint (blindness), yet duplicate chunks
yield identical keys (determinism) — the server-aided MLE contract.

``BlindRSAKeyServer``/``BlindRSAClient`` realize DupLESS's blind-RSA OPRF.
``BlindBLSKeyServer``/``BlindBLSClient`` realize the blind-BLS-style protocol
of Armknecht et al. [CCS '15] over P-256 (see :mod:`repro.crypto.ec` for the
pairing substitution note).
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional, Sequence, Tuple

from repro.crypto import ec, rsa


class BlindRSAKeyServer:
    """Key server half of the blind-RSA protocol (holds the private key)."""

    def __init__(
        self,
        key: Optional[rsa.RSAPrivateKey] = None,
        bits: int = 2048,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._key = key or rsa.generate_keypair(bits=bits, rng=rng)

    @property
    def public_key(self) -> rsa.RSAPublicKey:
        return self._key.public_key()

    def sign_blinded(self, blinded: int) -> int:
        """Sign one blinded message representative."""
        return self._key.sign_raw(blinded)

    def sign_blinded_batch(self, blinded: Sequence[int]) -> List[int]:
        """Sign a batch (one network round trip in TEDStore terms)."""
        return [self._key.sign_raw(m) for m in blinded]


class BlindRSAClient:
    """Client half of the blind-RSA protocol."""

    def __init__(
        self,
        public_key: rsa.RSAPublicKey,
        rng: Optional[random.Random] = None,
        verify: bool = False,
    ) -> None:
        self.public_key = public_key
        self._rng = rng or random.Random()
        self._verify = verify

    def blind_fingerprint(self, fingerprint: bytes) -> Tuple[int, int]:
        """Blind a fingerprint; returns (blinded message, blinding factor)."""
        m = rsa.hash_to_int(fingerprint, self.public_key.n)
        return rsa.blind(self.public_key, m, rng=self._rng)

    def derive_key(
        self, fingerprint: bytes, blinded_signature: int, blinding: int
    ) -> bytes:
        """Unblind the server's reply and derive the 32-byte chunk key."""
        signature = rsa.unblind(self.public_key, blinded_signature, blinding)
        if self._verify:
            m = rsa.hash_to_int(fingerprint, self.public_key.n)
            if not rsa.verify_raw(self.public_key, m, signature):
                raise ValueError("blind-RSA signature failed verification")
        sig_bytes = signature.to_bytes(
            (self.public_key.n.bit_length() + 7) // 8, "big"
        )
        return hashlib.sha256(sig_bytes).digest()

    def generate_keys(
        self, fingerprints: Sequence[bytes], server: BlindRSAKeyServer
    ) -> List[bytes]:
        """Run the whole protocol for a batch of fingerprints."""
        blinded_pairs = [self.blind_fingerprint(fp) for fp in fingerprints]
        signatures = server.sign_blinded_batch([b for b, _ in blinded_pairs])
        return [
            self.derive_key(fp, sig, blinding)
            for fp, sig, (_, blinding) in zip(
                fingerprints, signatures, blinded_pairs
            )
        ]


class BlindBLSKeyServer:
    """Key server half of the blind-BLS-style protocol (holds scalar d)."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        rng = rng or random.Random()
        self._d = rng.randrange(1, ec.N)
        self.public_point = ec.scalar_mult(self._d, ec.GENERATOR)

    def sign_blinded(self, blinded_point: ec.Point) -> ec.Point:
        """Multiply one blinded point by the secret scalar."""
        if not ec.is_on_curve(blinded_point) or blinded_point is None:
            raise ValueError("invalid blinded point")
        return ec.scalar_mult(self._d, blinded_point)

    def sign_blinded_batch(
        self, blinded_points: Sequence[ec.Point]
    ) -> List[ec.Point]:
        """Sign a batch of blinded points."""
        return [self.sign_blinded(p) for p in blinded_points]


class BlindBLSClient:
    """Client half of the blind-BLS-style protocol."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng or random.Random()

    def blind_fingerprint(self, fingerprint: bytes) -> Tuple[ec.Point, int]:
        """Hash to the curve and blind with a random scalar r."""
        point = ec.hash_to_curve(fingerprint)
        r = self._rng.randrange(1, ec.N)
        return ec.scalar_mult(r, point), r

    def derive_key(self, blinded_signature: ec.Point, blinding: int) -> bytes:
        """Unblind (multiply by r^{-1} mod N) and hash into a chunk key."""
        r_inv = pow(blinding, ec.N - 2, ec.N)
        signature = ec.scalar_mult(r_inv, blinded_signature)
        return hashlib.sha256(ec.encode_point(signature)).digest()

    def generate_keys(
        self, fingerprints: Sequence[bytes], server: BlindBLSKeyServer
    ) -> List[bytes]:
        """Run the whole protocol for a batch of fingerprints."""
        blinded_pairs = [self.blind_fingerprint(fp) for fp in fingerprints]
        signatures = server.sign_blinded_batch([p for p, _ in blinded_pairs])
        return [
            self.derive_key(sig, blinding)
            for sig, (_, blinding) in zip(signatures, blinded_pairs)
        ]
