"""SHA-256 counter-mode stream cipher — the throughput-path substitute.

The paper streams gigabytes through OpenSSL AES-NI; a pure-Python AES does a
few hundred kilobytes per second, which would make the Experiment B benches
measure interpreter overhead rather than system behaviour. This cipher keeps
the *structure* of AES-CTR (keyed deterministic keystream XORed over the
data) but generates the keystream with CPython's C-implemented SHA-256, so a
single client sustains tens of MB/s and the B.* benchmarks exercise realistic
data volumes. See DESIGN.md §4 for the substitution entry.

Security note: SHA-256(key || nonce || counter) as a keystream is a standard
PRF-counter construction; it is deterministic under (key, nonce) exactly like
the AES-CTR configuration TEDStore uses, so deduplication behaviour — the
property the experiments actually depend on — is identical.
"""

from __future__ import annotations

import hashlib
import time

from repro.utils import kernels

_DIGEST_SIZE = 32

#: Big-endian counter encodings shared by every keystream call. Grown on
#: demand and capped so a pathological length request cannot pin memory;
#: 2^16 entries cover 2 MiB of keystream, far above the 16 KiB max chunk.
_COUNTER_CACHE: list = []
_COUNTER_CACHE_MAX = 1 << 16


def _counter_bytes(nblocks: int) -> list:
    """The first ``nblocks`` 8-byte counter encodings (cached prefix)."""
    cached = len(_COUNTER_CACHE)
    if nblocks > cached:
        grow_to = min(nblocks, _COUNTER_CACHE_MAX)
        _COUNTER_CACHE.extend(
            c.to_bytes(8, "big") for c in range(cached, grow_to)
        )
    if nblocks <= len(_COUNTER_CACHE):
        return _COUNTER_CACHE[:nblocks]
    return _COUNTER_CACHE + [
        c.to_bytes(8, "big")
        for c in range(len(_COUNTER_CACHE), nblocks)
    ]


def keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Generate ``length`` pseudo-random bytes from (key, nonce).

    The batched path hashes the (key || nonce) prefix once and clones
    the resulting midstate per counter block (``hash.copy()``), so each
    32-byte block costs one 8-byte update + finalize instead of
    re-hashing the whole prefix — byte-identical output, since
    SHA-256(prefix || counter) is exactly what the clone finalizes.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    nblocks = (length + _DIGEST_SIZE - 1) // _DIGEST_SIZE
    if not kernels.kernels_enabled():
        blocks = []
        prefix = key + nonce
        for counter in range(nblocks):
            blocks.append(
                hashlib.sha256(prefix + counter.to_bytes(8, "big")).digest()
            )
        return b"".join(blocks)[:length]
    start = time.perf_counter()
    copy = hashlib.sha256(key + nonce).copy
    blocks = []
    append = blocks.append
    for counter in _counter_bytes(nblocks):
        h = copy()
        h.update(counter)
        append(h.digest())
    stream = b"".join(blocks)[:length]
    kernels.observe(
        "shactr_keystream", nblocks, length, time.perf_counter() - start
    )
    return stream


def encrypt(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """XOR ``data`` with the (key, nonce) keystream."""
    stream = keystream(key, nonce, len(data))
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
    ).to_bytes(len(data), "big") if data else b""


def decrypt(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Inverse of :func:`encrypt` (the cipher is an involution)."""
    return encrypt(key, nonce, data)
