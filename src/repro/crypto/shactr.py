"""SHA-256 counter-mode stream cipher — the throughput-path substitute.

The paper streams gigabytes through OpenSSL AES-NI; a pure-Python AES does a
few hundred kilobytes per second, which would make the Experiment B benches
measure interpreter overhead rather than system behaviour. This cipher keeps
the *structure* of AES-CTR (keyed deterministic keystream XORed over the
data) but generates the keystream with CPython's C-implemented SHA-256, so a
single client sustains tens of MB/s and the B.* benchmarks exercise realistic
data volumes. See DESIGN.md §4 for the substitution entry.

Security note: SHA-256(key || nonce || counter) as a keystream is a standard
PRF-counter construction; it is deterministic under (key, nonce) exactly like
the AES-CTR configuration TEDStore uses, so deduplication behaviour — the
property the experiments actually depend on — is identical.
"""

from __future__ import annotations

import hashlib

_DIGEST_SIZE = 32


def keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Generate ``length`` pseudo-random bytes from (key, nonce)."""
    if length < 0:
        raise ValueError("length must be non-negative")
    blocks = []
    prefix = key + nonce
    for counter in range((length + _DIGEST_SIZE - 1) // _DIGEST_SIZE):
        blocks.append(
            hashlib.sha256(prefix + counter.to_bytes(8, "big")).digest()
        )
    return b"".join(blocks)[:length]


def encrypt(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """XOR ``data`` with the (key, nonce) keystream."""
    stream = keystream(key, nonce, len(data))
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
    ).to_bytes(len(data), "big") if data else b""


def decrypt(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Inverse of :func:`encrypt` (the cipher is an involution)."""
    return encrypt(key, nonce, data)
