"""RSA key generation and blind RSA signatures (DupLESS-style key server).

Experiment B.2 compares TED's sketch-based key generation against two blinded
server-aided MLE protocols. The first, from DupLESS [Bellare et al., USENIX
Security '13], is Chaum's blind RSA signature used as an oblivious PRF:

1. The client hashes the chunk fingerprint to an integer ``m`` and *blinds*
   it with a random ``r``: ``m' = m * r^e mod n``.
2. The key server signs the blinded value with its private exponent:
   ``s' = m'^d mod n`` (accelerated with the CRT, as OpenSSL does).
3. The client unblinds ``s = s' * r^{-1} mod n`` and derives the chunk key as
   ``H(s)``. Blindness means the server never sees the fingerprint; the
   deterministic signature means duplicate chunks still get identical keys.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.primes import generate_prime, modinv


@dataclass(frozen=True)
class RSAPublicKey:
    """RSA public key (n, e)."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()


@dataclass(frozen=True)
class RSAPrivateKey:
    """RSA private key with CRT components for fast signing."""

    n: int
    e: int
    d: int
    p: int
    q: int
    d_p: int
    d_q: int
    q_inv: int

    def public_key(self) -> RSAPublicKey:
        return RSAPublicKey(n=self.n, e=self.e)

    def sign_raw(self, m: int) -> int:
        """Raw RSA signature ``m^d mod n`` via the CRT (about 4x faster)."""
        if not 0 <= m < self.n:
            raise ValueError("message representative out of range")
        s_p = pow(m % self.p, self.d_p, self.p)
        s_q = pow(m % self.q, self.d_q, self.q)
        h = (self.q_inv * (s_p - s_q)) % self.p
        return s_q + h * self.q


def generate_keypair(
    bits: int = 2048, e: int = 65537, rng: Optional[random.Random] = None
) -> RSAPrivateKey:
    """Generate an RSA keypair of the requested modulus size."""
    if bits < 512:
        raise ValueError("modulus below 512 bits is not meaningful")
    rng = rng or random.Random()
    half = bits // 2
    while True:
        p = generate_prime(half, rng=rng)
        q = generate_prime(bits - half, rng=rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = modinv(e, phi)
        return RSAPrivateKey(
            n=n,
            e=e,
            d=d,
            p=p,
            q=q,
            d_p=d % (p - 1),
            d_q=d % (q - 1),
            q_inv=modinv(q, p),
        )


def hash_to_int(data: bytes, n: int) -> int:
    """Full-domain-ish hash of ``data`` into Z_n (expand-then-reduce)."""
    material = b""
    counter = 0
    target_len = (n.bit_length() + 7) // 8 + 8
    while len(material) < target_len:
        material += hashlib.sha256(
            counter.to_bytes(4, "big") + data
        ).digest()
        counter += 1
    return int.from_bytes(material[:target_len], "big") % n


def blind(
    public: RSAPublicKey, m: int, rng: Optional[random.Random] = None
) -> Tuple[int, int]:
    """Blind a message representative; returns (blinded, blinding factor)."""
    rng = rng or random.Random()
    while True:
        r = rng.randrange(2, public.n - 1)
        if math.gcd(r, public.n) != 1:  # negligible for real moduli
            continue  # pragma: no cover
        return (m * pow(r, public.e, public.n)) % public.n, r


def unblind(public: RSAPublicKey, blinded_signature: int, r: int) -> int:
    """Remove the blinding factor from a signature on a blinded message."""
    return (blinded_signature * modinv(r, public.n)) % public.n


def verify_raw(public: RSAPublicKey, m: int, signature: int) -> bool:
    """Check ``signature^e == m (mod n)``."""
    return pow(signature, public.e, public.n) == m % public.n
