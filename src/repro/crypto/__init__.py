"""Crypto substrate: every primitive TEDStore's C++ prototype imported from
OpenSSL/smhasher, rebuilt from scratch in Python.

Submodules:
    aes       — FIPS-197 AES-128/192/256 block cipher.
    modes     — CTR and CBC (PKCS#7) modes.
    shactr    — SHA-256 counter-mode stream cipher (throughput path).
    cipher    — deterministic chunk-cipher profiles (secure/fast/shactr).
    hashes    — fingerprints, H(.) concatenation, HMAC.
    murmur3   — MurmurHash3 x64-128 and the short-hash split.
    primes    — Miller–Rabin prime generation.
    rsa       — RSA keygen + Chaum blind signatures (DupLESS baseline).
    ec        — NIST P-256 group arithmetic + hash-to-curve.
    blindsig  — blind-RSA and blind-BLS key-generation protocols.
    shamir    — Shamir secret sharing (quorum key-management substrate).
"""

from repro.crypto.cipher import FAST, SECURE, SHACTR, CipherProfile, get_profile
from repro.crypto.hashes import fingerprint, hash_concat, hmac_digest
from repro.crypto.murmur3 import murmur3_x64_128, short_hashes

__all__ = [
    "FAST",
    "SECURE",
    "SHACTR",
    "CipherProfile",
    "get_profile",
    "fingerprint",
    "hash_concat",
    "hmac_digest",
    "murmur3_x64_128",
    "short_hashes",
]
