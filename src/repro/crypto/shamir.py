"""Shamir secret sharing over a prime field.

Substrate for the quorum-based key management extension
(:mod:`repro.tedstore.quorum`). The paper lists key-manager fault tolerance
as an addressable limitation via "a quorum-based design for key generation
[27]" (§4); the standard construction shares the key-server secret with a
(k, n) Shamir scheme so any k replicas can serve requests.

Shares are points ``(x, f(x))`` on a random degree-``k-1`` polynomial with
``f(0) = secret``; reconstruction is Lagrange interpolation at zero. All
arithmetic is modulo a caller-chosen prime (the quorum protocol uses the
P-256 group order so shares can act as scalar shares in the exponent).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class Share:
    """One Shamir share: the evaluation point ``x`` and value ``y``."""

    x: int
    y: int


def split(
    secret: int,
    threshold: int,
    num_shares: int,
    prime: int,
    rng: Optional[random.Random] = None,
) -> List[Share]:
    """Split ``secret`` into ``num_shares`` shares, any ``threshold`` of
    which reconstruct it.

    Raises:
        ValueError: on out-of-range secret or nonsensical parameters.
    """
    if not 0 <= secret < prime:
        raise ValueError("secret must be in [0, prime)")
    if threshold < 1:
        raise ValueError("threshold must be at least 1")
    if num_shares < threshold:
        raise ValueError("need at least `threshold` shares")
    if num_shares >= prime:
        raise ValueError("too many shares for the field size")
    rng = rng or random.Random()
    coefficients = [secret] + [
        rng.randrange(prime) for _ in range(threshold - 1)
    ]

    def evaluate(x: int) -> int:
        acc = 0
        for coefficient in reversed(coefficients):
            acc = (acc * x + coefficient) % prime
        return acc

    return [Share(x=i, y=evaluate(i)) for i in range(1, num_shares + 1)]


def lagrange_coefficients_at_zero(
    xs: Sequence[int], prime: int
) -> List[int]:
    """Lagrange basis coefficients ``l_i(0)`` for the given x-coordinates.

    These are exactly the weights the quorum protocol applies *in the
    exponent* when combining partial signatures, so they are exposed as a
    first-class function.

    Raises:
        ValueError: on duplicate x-coordinates.
    """
    if len(set(xs)) != len(xs):
        raise ValueError("duplicate share points")
    coefficients = []
    for i, x_i in enumerate(xs):
        numerator = 1
        denominator = 1
        for j, x_j in enumerate(xs):
            if i == j:
                continue
            numerator = numerator * (-x_j) % prime
            denominator = denominator * (x_i - x_j) % prime
        coefficients.append(
            numerator * pow(denominator, prime - 2, prime) % prime
        )
    return coefficients


def reconstruct(shares: Sequence[Share], prime: int) -> int:
    """Recover the secret from ``threshold`` (or more) shares.

    Raises:
        ValueError: on empty input or duplicate share points.
    """
    if not shares:
        raise ValueError("need at least one share")
    xs = [share.x for share in shares]
    coefficients = lagrange_coefficients_at_zero(xs, prime)
    return sum(
        coefficient * share.y for coefficient, share in zip(coefficients, shares)
    ) % prime
