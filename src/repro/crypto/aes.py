"""Pure-Python AES block cipher (AES-128/192/256), FIPS-197 from scratch.

The paper's TEDStore prototype encrypts chunks with OpenSSL AES-256 (secure
profile) or AES-128 (fast profile). We rebuild the block cipher here so the
reproduction carries no external crypto dependency. The implementation is a
straightforward byte-oriented realization of FIPS-197 (SubBytes, ShiftRows,
MixColumns, AddRoundKey) with the S-box generated from the GF(2^8) inverse at
import time rather than pasted in as a table.

Correctness is pinned by the FIPS-197 Appendix C known-answer vectors in the
test suite. Throughput is obviously far below OpenSSL; the performance
experiments that stream megabytes use :mod:`repro.crypto.shactr` instead (see
DESIGN.md §4 for the substitution rationale).
"""

from __future__ import annotations

import struct
import time
from typing import List, Tuple

from repro.utils import kernels


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial 0x11B."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= 0x11B
        b >>= 1
    return result


def _build_sbox() -> Tuple[bytes, bytes]:
    """Generate the AES S-box and its inverse from first principles."""
    # Multiplicative inverses in GF(2^8) via exponentiation tables on the
    # generator 0x03.
    exp = [0] * 510
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gf_mul(x, 0x03)
    for i in range(255, 510):
        exp[i] = exp[i - 255]

    sbox = bytearray(256)
    inv_sbox = bytearray(256)
    for value in range(256):
        inverse = 0 if value == 0 else exp[255 - log[value]]
        # Affine transformation over GF(2).
        transformed = 0
        for bit in range(8):
            t = (
                (inverse >> bit)
                ^ (inverse >> ((bit + 4) % 8))
                ^ (inverse >> ((bit + 5) % 8))
                ^ (inverse >> ((bit + 6) % 8))
                ^ (inverse >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            transformed |= t << bit
        sbox[value] = transformed
        inv_sbox[transformed] = value
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 0x02))

# Precomputed GF(2^8) multiplication tables for the MixColumns constants.
_MUL2 = bytes(_gf_mul(x, 2) for x in range(256))
_MUL3 = bytes(_gf_mul(x, 3) for x in range(256))
_MUL9 = bytes(_gf_mul(x, 9) for x in range(256))
_MUL11 = bytes(_gf_mul(x, 11) for x in range(256))
_MUL13 = bytes(_gf_mul(x, 13) for x in range(256))
_MUL14 = bytes(_gf_mul(x, 14) for x in range(256))

BLOCK_SIZE = 16

# -- T-tables (DESIGN.md §16) -------------------------------------------------
#
# The batched encrypt path folds SubBytes + ShiftRows + MixColumns into
# four 256-entry 32-bit tables: one full round becomes 16 table lookups
# and 16 XORs on big-endian column words, with no per-byte state
# mutation. Derived from the generated S-box, so still constant-free.
_T0 = tuple(
    (_MUL2[s] << 24) | (s << 16) | (s << 8) | _MUL3[s]
    for s in _SBOX
)
_T1 = tuple(
    (_MUL3[s] << 24) | (_MUL2[s] << 16) | (s << 8) | s
    for s in _SBOX
)
_T2 = tuple(
    (s << 24) | (_MUL3[s] << 16) | (_MUL2[s] << 8) | s
    for s in _SBOX
)
_T3 = tuple(
    (s << 24) | (s << 16) | (_MUL3[s] << 8) | _MUL2[s]
    for s in _SBOX
)

_WORDS4 = struct.Struct(">4I")


class AES:
    """AES block cipher over 16-byte blocks.

    Args:
        key: 16, 24, or 32 bytes selecting AES-128/192/256.

    Example:
        >>> cipher = AES(bytes(range(16)))
        >>> block = cipher.encrypt_block(bytes.fromhex(
        ...     "00112233445566778899aabbccddeeff"))
        >>> cipher.decrypt_block(block).hex()
        '00112233445566778899aabbccddeeff'
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError("AES key must be 16, 24, or 32 bytes")
        self.key = bytes(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)
        # Word-form schedule for the T-table batch path: one flat tuple
        # of big-endian 32-bit columns, computed once per key and reused
        # across every block of every batch this cipher encrypts.
        self._round_words = tuple(
            word
            for round_key in self._round_keys
            for word in _WORDS4.unpack(round_key)
        )

    def _expand_key(self, key: bytes) -> List[bytes]:
        """FIPS-197 key schedule; returns per-round 16-byte subkeys."""
        nk = len(key) // 4
        words = [key[i * 4 : i * 4 + 4] for i in range(nk)]
        total_words = 4 * (self.rounds + 1)
        for i in range(nk, total_words):
            temp = words[i - 1]
            if i % nk == 0:
                rotated = temp[1:] + temp[:1]
                temp = bytes(_SBOX[b] for b in rotated)
                temp = bytes([temp[0] ^ _RCON[i // nk - 1]]) + temp[1:]
            elif nk > 6 and i % nk == 4:
                temp = bytes(_SBOX[b] for b in temp)
            words.append(bytes(a ^ b for a, b in zip(words[i - nk], temp)))
        return [
            b"".join(words[r * 4 : r * 4 + 4]) for r in range(self.rounds + 1)
        ]

    @staticmethod
    def _add_round_key(state: bytearray, round_key: bytes) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: bytearray) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: bytearray) -> None:
        for i in range(16):
            state[i] = _INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: bytearray) -> None:
        # State is column-major: state[row + 4*col].
        state[1], state[5], state[9], state[13] = (
            state[5],
            state[9],
            state[13],
            state[1],
        )
        state[2], state[6], state[10], state[14] = (
            state[10],
            state[14],
            state[2],
            state[6],
        )
        state[3], state[7], state[11], state[15] = (
            state[15],
            state[3],
            state[7],
            state[11],
        )

    @staticmethod
    def _inv_shift_rows(state: bytearray) -> None:
        state[5], state[9], state[13], state[1] = (
            state[1],
            state[5],
            state[9],
            state[13],
        )
        state[10], state[14], state[2], state[6] = (
            state[2],
            state[6],
            state[10],
            state[14],
        )
        state[15], state[3], state[7], state[11] = (
            state[3],
            state[7],
            state[11],
            state[15],
        )

    @staticmethod
    def _mix_columns(state: bytearray) -> None:
        for col in range(4):
            base = col * 4
            s0, s1, s2, s3 = state[base : base + 4]
            state[base] = _MUL2[s0] ^ _MUL3[s1] ^ s2 ^ s3
            state[base + 1] = s0 ^ _MUL2[s1] ^ _MUL3[s2] ^ s3
            state[base + 2] = s0 ^ s1 ^ _MUL2[s2] ^ _MUL3[s3]
            state[base + 3] = _MUL3[s0] ^ s1 ^ s2 ^ _MUL2[s3]

    @staticmethod
    def _inv_mix_columns(state: bytearray) -> None:
        for col in range(4):
            base = col * 4
            s0, s1, s2, s3 = state[base : base + 4]
            state[base] = _MUL14[s0] ^ _MUL11[s1] ^ _MUL13[s2] ^ _MUL9[s3]
            state[base + 1] = _MUL9[s0] ^ _MUL14[s1] ^ _MUL11[s2] ^ _MUL13[s3]
            state[base + 2] = _MUL13[s0] ^ _MUL9[s1] ^ _MUL14[s2] ^ _MUL11[s3]
            state[base + 3] = _MUL11[s0] ^ _MUL13[s1] ^ _MUL9[s2] ^ _MUL14[s3]

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError("AES operates on 16-byte blocks")
        state = bytearray(block)
        self._add_round_key(state, self._round_keys[0])
        for round_index in range(1, self.rounds):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_index])
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def encrypt_blocks(self, data) -> bytes:
        """Encrypt a run of consecutive 16-byte blocks in one call.

        ``data`` is any bytes-like object whose length is a multiple of
        16 (ECB over the batch — the CTR layer feeds counter blocks, so
        no chaining is wanted). The batched path runs the T-table round
        function over every block with the word-form key schedule reused
        across the batch; it is byte-identical to calling
        :meth:`encrypt_block` per block (property-tested), which is also
        the fallback when kernels are disabled.
        """
        view = memoryview(data)
        if len(view) % BLOCK_SIZE:
            raise ValueError("batch length must be a multiple of 16")
        if not kernels.kernels_enabled():
            return b"".join(
                self.encrypt_block(bytes(view[i : i + BLOCK_SIZE]))
                for i in range(0, len(view), BLOCK_SIZE)
            )
        start = time.perf_counter()
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        sbox = _SBOX
        words = self._round_words
        rounds = self.rounds
        out = bytearray(len(view))
        unpack = _WORDS4.unpack_from
        pack = _WORDS4.pack_into
        for offset in range(0, len(view), BLOCK_SIZE):
            w0, w1, w2, w3 = unpack(view, offset)
            w0 ^= words[0]
            w1 ^= words[1]
            w2 ^= words[2]
            w3 ^= words[3]
            base = 4
            for _ in range(1, rounds):
                n0 = (
                    t0[w0 >> 24]
                    ^ t1[(w1 >> 16) & 0xFF]
                    ^ t2[(w2 >> 8) & 0xFF]
                    ^ t3[w3 & 0xFF]
                    ^ words[base]
                )
                n1 = (
                    t0[w1 >> 24]
                    ^ t1[(w2 >> 16) & 0xFF]
                    ^ t2[(w3 >> 8) & 0xFF]
                    ^ t3[w0 & 0xFF]
                    ^ words[base + 1]
                )
                n2 = (
                    t0[w2 >> 24]
                    ^ t1[(w3 >> 16) & 0xFF]
                    ^ t2[(w0 >> 8) & 0xFF]
                    ^ t3[w1 & 0xFF]
                    ^ words[base + 2]
                )
                n3 = (
                    t0[w3 >> 24]
                    ^ t1[(w0 >> 16) & 0xFF]
                    ^ t2[(w1 >> 8) & 0xFF]
                    ^ t3[w2 & 0xFF]
                    ^ words[base + 3]
                )
                w0, w1, w2, w3 = n0, n1, n2, n3
                base += 4
            pack(
                out,
                offset,
                (
                    (sbox[w0 >> 24] << 24)
                    | (sbox[(w1 >> 16) & 0xFF] << 16)
                    | (sbox[(w2 >> 8) & 0xFF] << 8)
                    | sbox[w3 & 0xFF]
                )
                ^ words[base],
                (
                    (sbox[w1 >> 24] << 24)
                    | (sbox[(w2 >> 16) & 0xFF] << 16)
                    | (sbox[(w3 >> 8) & 0xFF] << 8)
                    | sbox[w0 & 0xFF]
                )
                ^ words[base + 1],
                (
                    (sbox[w2 >> 24] << 24)
                    | (sbox[(w3 >> 16) & 0xFF] << 16)
                    | (sbox[(w0 >> 8) & 0xFF] << 8)
                    | sbox[w1 & 0xFF]
                )
                ^ words[base + 2],
                (
                    (sbox[w3 >> 24] << 24)
                    | (sbox[(w0 >> 16) & 0xFF] << 16)
                    | (sbox[(w1 >> 8) & 0xFF] << 8)
                    | sbox[w2 & 0xFF]
                )
                ^ words[base + 3],
            )
        kernels.observe(
            "aes_blocks",
            len(view) // BLOCK_SIZE,
            len(view),
            time.perf_counter() - start,
        )
        return bytes(out)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError("AES operates on 16-byte blocks")
        state = bytearray(block)
        self._add_round_key(state, self._round_keys[self.rounds])
        for round_index in range(self.rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self._round_keys[round_index])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
