"""Block-cipher modes of operation (CTR and CBC with PKCS#7 padding).

Encrypted deduplication needs *deterministic* encryption: the same
(key, plaintext) pair must produce the same ciphertext, or duplicate chunks
encrypted under the same MLE key would not deduplicate. TEDStore achieves
this the same way convergent-encryption systems do — by deriving the IV
deterministically from the key (see :mod:`repro.crypto.cipher`). The modes
here take an explicit IV/nonce and leave that policy to the caller.
"""

from __future__ import annotations

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.utils import kernels
from repro.utils.bytesutil import xor_bytes


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Apply PKCS#7 padding up to ``block_size``."""
    if not 1 <= block_size <= 255:
        raise ValueError("block size must be in [1, 255]")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip and validate PKCS#7 padding.

    Raises:
        ValueError: if the padding is malformed (corrupt ciphertext or a
            wrong decryption key).
    """
    if not data or len(data) % block_size:
        raise ValueError("invalid padded length")
    pad_len = data[-1]
    if not 1 <= pad_len <= block_size:
        raise ValueError("invalid padding byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise ValueError("inconsistent padding")
    return data[:-pad_len]


def ctr_keystream(cipher: AES, nonce: bytes, length: int) -> bytes:
    """Generate ``length`` keystream bytes in big-endian counter mode.

    The batched path materializes every counter block into one buffer
    and encrypts them in a single :meth:`AES.encrypt_blocks` call, so
    the key schedule and the T-table round function are amortized over
    the whole message instead of being re-entered per block.
    """
    if len(nonce) != BLOCK_SIZE:
        raise ValueError("CTR nonce must be one block")
    counter = int.from_bytes(nonce, "big")
    nblocks = (length + BLOCK_SIZE - 1) // BLOCK_SIZE
    if not kernels.kernels_enabled():
        blocks = []
        for _ in range(nblocks):
            blocks.append(
                cipher.encrypt_block(counter.to_bytes(BLOCK_SIZE, "big"))
            )
            counter = (counter + 1) % (1 << 128)
        return b"".join(blocks)[:length]
    buf = bytearray(nblocks * BLOCK_SIZE)
    wrap = 1 << 128
    for i in range(nblocks):
        buf[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE] = (
            (counter + i) % wrap
        ).to_bytes(BLOCK_SIZE, "big")
    return cipher.encrypt_blocks(bytes(buf))[:length]


def ctr_encrypt(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Encrypt (or decrypt — CTR is an involution) ``data`` under AES-CTR."""
    cipher = AES(key)
    stream = ctr_keystream(cipher, nonce, len(data))
    if not kernels.kernels_enabled():
        return bytes(a ^ b for a, b in zip(data, stream))
    return xor_bytes(data, stream)


def ctr_decrypt(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Decrypt AES-CTR ciphertext (identical to encryption)."""
    return ctr_encrypt(key, nonce, data)


def cbc_encrypt(key: bytes, iv: bytes, data: bytes) -> bytes:
    """Encrypt ``data`` under AES-CBC with PKCS#7 padding."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError("CBC IV must be one block")
    cipher = AES(key)
    padded = pkcs7_pad(data)
    out = bytearray()
    previous = iv
    for offset in range(0, len(padded), BLOCK_SIZE):
        block = bytes(
            a ^ b
            for a, b in zip(padded[offset : offset + BLOCK_SIZE], previous)
        )
        previous = cipher.encrypt_block(block)
        out.extend(previous)
    return bytes(out)


def cbc_decrypt(key: bytes, iv: bytes, data: bytes) -> bytes:
    """Decrypt AES-CBC ciphertext and strip PKCS#7 padding."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError("CBC IV must be one block")
    if len(data) % BLOCK_SIZE:
        raise ValueError("CBC ciphertext must be block-aligned")
    cipher = AES(key)
    out = bytearray()
    previous = iv
    for offset in range(0, len(data), BLOCK_SIZE):
        block = data[offset : offset + BLOCK_SIZE]
        plain = cipher.decrypt_block(block)
        out.extend(a ^ b for a, b in zip(plain, previous))
        previous = block
    return pkcs7_unpad(bytes(out))
