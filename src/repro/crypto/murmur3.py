"""Pure-Python MurmurHash3 (x64, 128-bit variant).

TEDStore uses MurmurHash3 for the short hashes sent to the key manager
(paper §4): the client computes one 128-bit MurmurHash3 digest per chunk and
splits it into ``r`` short hashes, each indexing a Count-Min Sketch row.

This is a from-scratch port of Austin Appleby's public-domain
``MurmurHash3_x64_128`` reference implementation. Correctness is checked in
the test suite against the SMHasher verification value (0x6384BA69).
"""

from __future__ import annotations

from typing import List

_MASK64 = 0xFFFFFFFFFFFFFFFF
_C1 = 0x87C37B91114253D5
_C2 = 0x4CF5AD432745937F


def _rotl64(value: int, shift: int) -> int:
    return ((value << shift) | (value >> (64 - shift))) & _MASK64


def _fmix64(k: int) -> int:
    k ^= k >> 33
    k = (k * 0xFF51AFD7ED558CCD) & _MASK64
    k ^= k >> 33
    k = (k * 0xC4CEB9FE1A85EC53) & _MASK64
    k ^= k >> 33
    return k


def murmur3_x64_128(data: bytes, seed: int = 0) -> bytes:
    """Return the 16-byte MurmurHash3 x64 128-bit digest of ``data``.

    The digest is serialized as two little-endian 64-bit words (h1 then h2),
    matching the reference implementation's output layout.
    """
    length = len(data)
    h1 = seed & _MASK64
    h2 = seed & _MASK64

    nblocks = length // 16
    for block in range(nblocks):
        offset = block * 16
        k1 = int.from_bytes(data[offset : offset + 8], "little")
        k2 = int.from_bytes(data[offset + 8 : offset + 16], "little")

        k1 = (k1 * _C1) & _MASK64
        k1 = _rotl64(k1, 31)
        k1 = (k1 * _C2) & _MASK64
        h1 ^= k1
        h1 = _rotl64(h1, 27)
        h1 = (h1 + h2) & _MASK64
        h1 = (h1 * 5 + 0x52DCE729) & _MASK64

        k2 = (k2 * _C2) & _MASK64
        k2 = _rotl64(k2, 33)
        k2 = (k2 * _C1) & _MASK64
        h2 ^= k2
        h2 = _rotl64(h2, 31)
        h2 = (h2 + h1) & _MASK64
        h2 = (h2 * 5 + 0x38495AB5) & _MASK64

    tail = data[nblocks * 16 :]
    k1 = 0
    k2 = 0
    tail_len = len(tail)
    if tail_len >= 9:
        for i in range(tail_len - 1, 7, -1):
            k2 = (k2 << 8) | tail[i]
        k2 = (k2 * _C2) & _MASK64
        k2 = _rotl64(k2, 33)
        k2 = (k2 * _C1) & _MASK64
        h2 ^= k2
    if tail_len >= 1:
        for i in range(min(tail_len, 8) - 1, -1, -1):
            k1 = (k1 << 8) | tail[i]
        k1 = (k1 * _C1) & _MASK64
        k1 = _rotl64(k1, 31)
        k1 = (k1 * _C2) & _MASK64
        h1 ^= k1

    h1 ^= length
    h2 ^= length
    h1 = (h1 + h2) & _MASK64
    h2 = (h2 + h1) & _MASK64
    h1 = _fmix64(h1)
    h2 = _fmix64(h2)
    h1 = (h1 + h2) & _MASK64
    h2 = (h2 + h1) & _MASK64

    return h1.to_bytes(8, "little") + h2.to_bytes(8, "little")


def short_hashes(data: bytes, rows: int, width: int, seed: int = 0) -> List[int]:
    """Split one MurmurHash3 digest into ``rows`` short hashes in ``[0, width)``.

    This mirrors TEDStore's optimization (paper §4): instead of computing
    ``r`` independent hashes per chunk, the client computes one 128-bit
    MurmurHash3 and divides it into four short hashes. For ``rows > 4`` we
    chain additional digests (seeded by the block index) so the construction
    generalizes while staying a single hash computation in the default
    ``rows = 4`` configuration.

    Args:
        data: the chunk content (or its fingerprint, in trace-driven mode).
        rows: the number of sketch rows ``r``.
        width: the number of counters per row ``w``.
        seed: base seed for the digest chain.

    Returns:
        A list of ``rows`` counter indices.
    """
    if rows <= 0:
        raise ValueError("rows must be positive")
    if width <= 0:
        raise ValueError("width must be positive")
    indices: List[int] = []
    block = 0
    while len(indices) < rows:
        digest = murmur3_x64_128(data, seed=seed + block)
        for i in range(4):
            if len(indices) == rows:
                break
            word = int.from_bytes(digest[i * 4 : i * 4 + 4], "little")
            indices.append(word % width)
        block += 1
    return indices
