"""Binary and text trace formats for snapshot fingerprint lists.

Real FSL/MS traces ship as fingerprint lists; this module defines compact,
self-describing equivalents so real traces can be converted in and synthetic
traces can be persisted and replayed byte-identically.

Binary layout::

    [magic "REPROTRC"] [version u8] [fp_bytes u8]
    [snapshot_id_len varint] [snapshot_id utf-8]
    [record_count varint]
    repeat: [fingerprint fp_bytes] [size varint]

The text format is one ``<hex fingerprint>,<size>`` pair per line with a
``# snapshot: <id>`` header — convenient for eyeballing and diffing.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from repro.traces.model import Dataset, Snapshot
from repro.utils.varint import decode_uvarint, encode_uvarint

_MAGIC = b"REPROTRC"
_VERSION = 1


def write_snapshot(path, snapshot: Snapshot) -> None:
    """Write one snapshot in the binary trace format.

    Raises:
        ValueError: if fingerprints are not all the same length.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fp_lengths = {len(fp) for fp, _ in snapshot.records}
    if len(fp_lengths) > 1:
        raise ValueError("all fingerprints in a trace must share one length")
    fp_bytes = fp_lengths.pop() if fp_lengths else 0
    out = bytearray(_MAGIC)
    out.append(_VERSION)
    out.append(fp_bytes)
    sid = snapshot.snapshot_id.encode("utf-8")
    out.extend(encode_uvarint(len(sid)))
    out.extend(sid)
    out.extend(encode_uvarint(len(snapshot.records)))
    for fingerprint, size in snapshot.records:
        out.extend(fingerprint)
        out.extend(encode_uvarint(size))
    path.write_bytes(bytes(out))


def read_snapshot(path) -> Snapshot:
    """Read one snapshot from the binary trace format.

    Raises:
        ValueError: on bad magic, version, or truncation.
    """
    data = Path(path).read_bytes()
    if data[: len(_MAGIC)] != _MAGIC:
        raise ValueError(f"not a trace file: {path}")
    pos = len(_MAGIC)
    version = data[pos]
    if version != _VERSION:
        raise ValueError(f"unsupported trace version {version}")
    fp_bytes = data[pos + 1]
    pos += 2
    sid_len, pos = decode_uvarint(data, pos)
    snapshot_id = data[pos : pos + sid_len].decode("utf-8")
    pos += sid_len
    count, pos = decode_uvarint(data, pos)
    snapshot = Snapshot(snapshot_id=snapshot_id)
    for _ in range(count):
        fingerprint = data[pos : pos + fp_bytes]
        if len(fingerprint) != fp_bytes:
            raise ValueError("truncated trace file")
        pos += fp_bytes
        size, pos = decode_uvarint(data, pos)
        snapshot.records.append((fingerprint, size))
    return snapshot


def write_dataset(directory, dataset: Dataset) -> List[Path]:
    """Write each snapshot of a dataset as ``<name>-<index>.trc``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for i, snapshot in enumerate(dataset.snapshots):
        path = directory / f"{dataset.name}-{i:04d}.trc"
        write_snapshot(path, snapshot)
        paths.append(path)
    return paths


def read_dataset(directory, name: str) -> Dataset:
    """Read back a dataset written by :func:`write_dataset`."""
    directory = Path(directory)
    paths = sorted(directory.glob(f"{name}-*.trc"))
    if not paths:
        raise FileNotFoundError(f"no trace files for dataset {name!r}")
    return Dataset(name=name, snapshots=[read_snapshot(p) for p in paths])


def write_snapshot_text(path, snapshot: Snapshot) -> None:
    """Write the human-readable text form."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [f"# snapshot: {snapshot.snapshot_id}"]
    lines.extend(
        f"{fp.hex()},{size}" for fp, size in snapshot.records
    )
    path.write_text("\n".join(lines) + "\n")


def read_snapshot_text(path) -> Snapshot:
    """Read the human-readable text form."""
    snapshot_id = Path(path).stem
    snapshot = Snapshot(snapshot_id=snapshot_id)
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith("# snapshot:"):
                snapshot.snapshot_id = line.split(":", 1)[1].strip()
            continue
        fp_hex, size_str = line.split(",")
        snapshot.records.append((bytes.fromhex(fp_hex), int(size_str)))
    return snapshot
