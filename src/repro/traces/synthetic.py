"""Synthetic file-system snapshot generator (the FSL/MS substitution).

The paper's traces are unavailable here, so we generate snapshot series that
reproduce the *properties the experiments depend on* (DESIGN.md §4):

* **Intra-snapshot duplication** — each snapshot deduplicates on its own
  (paper: FSL 2.0x, MS 2.9x), produced by file copies and a popular-chunk
  pool (zero blocks, shared libraries) with Zipf-skewed popularity.
* **Skewed frequency distributions** — what frequency analysis exploits and
  what gives MLE its high KLD.
* **Chunk locality** — duplicate chunks recur in runs (copied files), which
  MinHash encryption's segment-similarity assumption needs.
* **Snapshot evolution** — consecutive snapshots share most content
  (unchanged files), with modifications, deletions, and growth; this drives
  the cross-snapshot dedup and fragmentation behaviour of Experiment B.5.
* **Per-dataset contrast** — FSL-like: per-user series, widely varying
  snapshot sizes, larger chunks; MS-like: per-machine snapshots of similar
  size, smaller chunks, heavier duplication (matching §5.1's description
  and the chunks-per-MB difference Experiment B.4 observes).

Generation is fully deterministic given the seed. A "file" is a list of
chunk ids; the snapshot's record stream is the concatenation of its files.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List

from repro.traces.model import ChunkRecord, Dataset, Snapshot


@dataclass
class TraceConfig:
    """Knobs of the synthetic snapshot model.

    Attributes:
        name: dataset name (also salts fingerprints).
        fingerprint_bits: truncated fingerprint width (FSL 48, MS 40).
        min_chunk / max_chunk: chunk size range; sizes are derived
            deterministically from fingerprints so duplicates agree.
        files_per_snapshot: initial file count per user/machine.
        mean_file_chunks: geometric mean of file length in chunks.
        file_copy_prob: probability a new file duplicates an existing file
            (with a few edits) — the locality + duplication source.
        popular_pool_size: size of the hot-chunk pool.
        popular_prob: per-chunk probability of drawing from the pool.
        zipf_s: popularity skew of the pool (higher = more skew).
        modify_prob / delete_prob: per-file evolution rates per snapshot.
        growth_files: new files added per snapshot step.
        size_jitter: multiplicative spread of per-user snapshot sizes.
    """

    name: str
    fingerprint_bits: int = 48
    min_chunk: int = 4096
    max_chunk: int = 16384
    files_per_snapshot: int = 40
    mean_file_chunks: int = 48
    file_copy_prob: float = 0.30
    popular_pool_size: int = 400
    popular_prob: float = 0.10
    zipf_s: float = 1.25
    modify_prob: float = 0.20
    delete_prob: float = 0.05
    growth_files: int = 4
    size_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.fingerprint_bits % 8:
            raise ValueError("fingerprint_bits must be a multiple of 8")
        if not 0 < self.min_chunk <= self.max_chunk:
            raise ValueError("require 0 < min_chunk <= max_chunk")


class SyntheticTraceGenerator:
    """Stateful generator for one user's (or machine's) snapshot series."""

    def __init__(self, config: TraceConfig, user: str, seed: int) -> None:
        self.config = config
        self.user = user
        self._rng = random.Random(
            hashlib.sha256(
                f"{config.name}/{user}/{seed}".encode()
            ).digest()
        )
        self._next_chunk_id = 0
        self._files: List[List[int]] = []
        self._pool = [self._new_chunk_id() for _ in range(config.popular_pool_size)]
        self._zipf_weights = self._build_zipf_weights()
        jitter = config.size_jitter
        self._scale = 1.0
        if jitter > 0:
            self._scale = self._rng.uniform(1.0 / (1.0 + jitter), 1.0 + jitter)

    def _build_zipf_weights(self) -> List[float]:
        s = self.config.zipf_s
        weights = [1.0 / (rank**s) for rank in range(1, self.config.popular_pool_size + 1)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        return cumulative

    def _new_chunk_id(self) -> int:
        cid = self._next_chunk_id
        self._next_chunk_id += 1
        return cid

    def _draw_pool_chunk(self) -> int:
        u = self._rng.random()
        lo, hi = 0, len(self._zipf_weights) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._zipf_weights[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return self._pool[lo]

    def _draw_chunk(self) -> int:
        if self._rng.random() < self.config.popular_prob:
            return self._draw_pool_chunk()
        return self._new_chunk_id()

    def _new_file(self) -> List[int]:
        rng = self._rng
        if self._files and rng.random() < self.config.file_copy_prob:
            original = rng.choice(self._files)
            copy = list(original)
            # A handful of edits so copies are near- rather than exact
            # duplicates about half the time.
            for _ in range(rng.randrange(0, max(1, len(copy) // 16) + 1)):
                if copy:
                    copy[rng.randrange(len(copy))] = self._draw_chunk()
            return copy
        length = max(
            1,
            int(self._scale * rng.expovariate(1.0 / self.config.mean_file_chunks))
            + 1,
        )
        return [self._draw_chunk() for _ in range(length)]

    def _evolve(self) -> None:
        rng = self._rng
        survivors: List[List[int]] = []
        for file in self._files:
            roll = rng.random()
            if roll < self.config.delete_prob:
                continue
            if roll < self.config.delete_prob + self.config.modify_prob:
                file = list(file)
                edits = max(1, len(file) // 10)
                for _ in range(edits):
                    position = rng.randrange(len(file))
                    file[position] = self._draw_chunk()
                if rng.random() < 0.5:  # appends model file growth
                    file.extend(
                        self._draw_chunk() for _ in range(rng.randrange(1, 6))
                    )
            survivors.append(file)
        self._files = survivors
        for _ in range(self.config.growth_files):
            self._files.append(self._new_file())

    def _fingerprint(self, chunk_id: int) -> bytes:
        digest = hashlib.sha256(
            f"{self.config.name}/{self.user}/{chunk_id}".encode()
        ).digest()
        return digest[: self.config.fingerprint_bits // 8]

    def _size(self, fingerprint: bytes) -> int:
        span = self.config.max_chunk - self.config.min_chunk
        if span == 0:
            return self.config.min_chunk
        value = int.from_bytes(
            hashlib.sha256(b"size" + fingerprint).digest()[:4], "big"
        )
        return self.config.min_chunk + value % span

    def snapshot(self, snapshot_id: str) -> Snapshot:
        """Generate the next snapshot in this user's series."""
        if not self._files:
            count = max(1, int(self.config.files_per_snapshot * self._scale))
            # Append incrementally so later files can copy earlier ones —
            # the source of intra-snapshot duplication and chunk locality.
            for _ in range(count):
                self._files.append(self._new_file())
        else:
            self._evolve()
        records: List[ChunkRecord] = []
        for file in self._files:
            for chunk_id in file:
                fingerprint = self._fingerprint(chunk_id)
                records.append((fingerprint, self._size(fingerprint)))
        return Snapshot(snapshot_id=snapshot_id, records=records)


def generate_fsl_like(
    users: int = 3,
    snapshots_per_user: int = 4,
    scale: float = 1.0,
    seed: int = 2013,
) -> Dataset:
    """FSL-fslhomes-like dataset: per-user home-directory snapshot series.

    Matches the paper's description (§5.1): 48-bit fingerprints, snapshot
    sizes varying widely across users, per-snapshot dedup factor around 2x.
    ``scale`` multiplies the per-snapshot chunk volume.
    """
    config = TraceConfig(
        name="fsl",
        fingerprint_bits=48,
        min_chunk=4096,
        max_chunk=16384,
        files_per_snapshot=max(4, int(300 * scale)),
        mean_file_chunks=48,
        file_copy_prob=0.38,
        popular_pool_size=4000,
        popular_prob=0.30,
        zipf_s=1.85,
        size_jitter=2.5,
    )
    dataset = Dataset(name="fsl")
    for user in range(users):
        generator = SyntheticTraceGenerator(config, f"user{user:03d}", seed)
        for step in range(snapshots_per_user):
            dataset.snapshots.append(
                generator.snapshot(f"fsl/user{user:03d}/snap{step:02d}")
            )
    return dataset


def generate_ms_like(
    machines: int = 10,
    snapshots_per_machine: int = 1,
    scale: float = 1.0,
    seed: int = 2011,
) -> Dataset:
    """MS-like dataset: Windows machine snapshots of similar size.

    Matches §5.1: 40-bit fingerprints, snapshots of roughly equal size,
    heavier duplication (≈3x per-snapshot dedup), smaller average chunk
    size than FSL (the Experiment B.4 contrast).
    """
    config = TraceConfig(
        name="ms",
        fingerprint_bits=40,
        min_chunk=2048,
        max_chunk=12288,
        files_per_snapshot=max(4, int(300 * scale)),
        mean_file_chunks=40,
        file_copy_prob=0.55,
        popular_pool_size=3000,
        popular_prob=0.33,
        zipf_s=1.95,
        size_jitter=0.15,
    )
    dataset = Dataset(name="ms")
    for machine in range(machines):
        generator = SyntheticTraceGenerator(config, f"m{machine:03d}", seed)
        for step in range(snapshots_per_machine):
            dataset.snapshots.append(
                generator.snapshot(f"ms/m{machine:03d}/snap{step:02d}")
            )
    return dataset
