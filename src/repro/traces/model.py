"""Trace data model: chunk records, snapshots, and datasets.

The paper's evaluation datasets (FSL fslhomes and MS file-system snapshots)
are ordered lists of truncated chunk fingerprints with chunk sizes — no
content. A :class:`Snapshot` is exactly that; a :class:`Dataset` is a named
series of snapshots. Chunk *content* can be materialized from a fingerprint
on demand (:func:`materialize_chunk`) the same way the paper's trace replay
does: "reconstruct each chunk by repeatedly writing its fingerprint to a
chunk of the specified size" (§5.3.2), so identical fingerprints produce
identical chunks and dedup behaviour is preserved end to end.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

#: One chunk copy: (truncated fingerprint bytes, chunk size in bytes).
ChunkRecord = Tuple[bytes, int]


@dataclass
class Snapshot:
    """An ordered list of chunk records for one file-system snapshot."""

    snapshot_id: str
    records: List[ChunkRecord] = field(default_factory=list)

    def add(self, fingerprint: bytes, size: int) -> None:
        """Append one chunk record."""
        if size <= 0:
            raise ValueError("chunk size must be positive")
        self.records.append((fingerprint, size))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ChunkRecord]:
        return iter(self.records)

    @property
    def total_bytes(self) -> int:
        """Pre-deduplicated (logical) size."""
        return sum(size for _, size in self.records)

    @property
    def unique_chunks(self) -> int:
        """Number of distinct fingerprints."""
        return len({fp for fp, _ in self.records})

    @property
    def unique_bytes(self) -> int:
        """Post-deduplication (per-snapshot exact dedup) size."""
        seen: Dict[bytes, int] = {}
        for fp, size in self.records:
            seen[fp] = size
        return sum(seen.values())

    def frequencies(self) -> List[int]:
        """Duplicate counts per unique plaintext chunk."""
        return list(Counter(fp for fp, _ in self.records).values())

    @property
    def dedup_ratio(self) -> float:
        """Logical/unique byte ratio for this snapshot alone."""
        unique = self.unique_bytes
        return self.total_bytes / unique if unique else 1.0


@dataclass
class Dataset:
    """A named series of snapshots (e.g. one per backup date)."""

    name: str
    snapshots: List[Snapshot] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self) -> Iterator[Snapshot]:
        return iter(self.snapshots)

    @property
    def total_bytes(self) -> int:
        """Pre-deduplicated size across all snapshots."""
        return sum(s.total_bytes for s in self.snapshots)

    @property
    def per_snapshot_dedup_bytes(self) -> int:
        """Size after deduplicating each snapshot independently (§5.1)."""
        return sum(s.unique_bytes for s in self.snapshots)


def materialize_chunk(fingerprint: bytes, size: int) -> bytes:
    """Reconstruct chunk content from its fingerprint (paper §5.3.2).

    Repeats the fingerprint to fill ``size`` bytes, so the same fingerprint
    always yields the same content and distinct fingerprints yield distinct
    content (collisions of truncated fingerprints notwithstanding, as in the
    paper's replay).
    """
    if size <= 0:
        raise ValueError("chunk size must be positive")
    if not fingerprint:
        raise ValueError("fingerprint must be non-empty")
    repeats = -(-size // len(fingerprint))
    return (fingerprint * repeats)[:size]
