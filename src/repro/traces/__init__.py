"""Trace substrate: snapshot model, formats, and synthetic generators."""

from repro.traces.format import (
    read_dataset,
    read_snapshot,
    read_snapshot_text,
    write_dataset,
    write_snapshot,
    write_snapshot_text,
)
from repro.traces.model import ChunkRecord, Dataset, Snapshot, materialize_chunk
from repro.traces.synthetic import (
    SyntheticTraceGenerator,
    TraceConfig,
    generate_fsl_like,
    generate_ms_like,
)
from repro.traces.workload import (
    snapshot_to_chunks,
    unique_bytes,
    unique_chunk_stream,
    unique_file,
)

__all__ = [
    "read_dataset",
    "read_snapshot",
    "read_snapshot_text",
    "write_dataset",
    "write_snapshot",
    "write_snapshot_text",
    "ChunkRecord",
    "Dataset",
    "Snapshot",
    "materialize_chunk",
    "SyntheticTraceGenerator",
    "TraceConfig",
    "generate_fsl_like",
    "generate_ms_like",
    "snapshot_to_chunks",
    "unique_bytes",
    "unique_chunk_stream",
    "unique_file",
]
