"""Synthetic unique-data workloads for the performance experiments.

Experiments B.1–B.3 upload files of globally unique chunks (no duplicates)
to measure maximum achievable performance without deduplication effects
(§5.3.1). The paper uses 2 GB files; we generate the same *kind* of data at
a configurable (laptop-appropriate) size.

Data is produced from a seeded SHA-256 counter stream rather than
``os.urandom`` so workloads are reproducible run to run; the stream is
incompressible and collision-free for chunking purposes, which is all the
experiments need.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List, Tuple

from repro.traces.model import Snapshot, materialize_chunk


def unique_bytes(size: int, seed: int = 0) -> bytes:
    """Generate ``size`` deterministic pseudo-random bytes."""
    if size < 0:
        raise ValueError("size must be non-negative")
    blocks: List[bytes] = []
    generated = 0
    counter = 0
    prefix = b"repro-workload" + seed.to_bytes(8, "big")
    while generated < size:
        block = hashlib.sha256(prefix + counter.to_bytes(8, "big")).digest()
        blocks.append(block)
        generated += len(block)
        counter += 1
    return b"".join(blocks)[:size]


def unique_file(size: int, client_id: int = 0) -> bytes:
    """A file of globally unique content, distinct per client.

    Seeding by ``client_id`` guarantees different clients upload disjoint
    content, as in Experiment B.3's concurrent-client setup.
    """
    return unique_bytes(size, seed=client_id + 1)


def unique_chunk_stream(
    count: int, chunk_size: int = 8192, seed: int = 0
) -> Iterator[bytes]:
    """Yield ``count`` unique chunks of ``chunk_size`` bytes each."""
    for i in range(count):
        yield unique_bytes(chunk_size, seed=(seed << 32) | (i + 1))


def snapshot_to_chunks(snapshot: Snapshot) -> Iterator[Tuple[bytes, bytes]]:
    """Materialize a trace snapshot into (fingerprint, content) pairs.

    This is the paper's real-world replay path (§5.3.2): traces carry only
    fingerprints and sizes, so content is reconstructed deterministically
    from each fingerprint.
    """
    for fingerprint, size in snapshot.records:
        yield fingerprint, materialize_chunk(fingerprint, size)
