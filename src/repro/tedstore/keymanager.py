"""TEDStore key-manager service.

Wraps :class:`repro.core.ted.TedKeyManager` behind the batch request/response
interface the clients speak (one :class:`KeyGenRequest` per client batch,
§3.5), with a lock so multiple client threads can be served concurrently —
the frequency state (sketch + tuner) is shared across all clients, which is
what makes TED's frequencies *global* across the organization's users.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.core.ted import TedKeyManager
from repro.obs import metrics as obs_metrics, tracing
from repro.tedstore.messages import KeyGenRequest, KeyGenResponse
from repro.tedstore.ratelimit import KeyGenRateLimiter

_REGISTRY = obs_metrics.get_registry()
_BATCH_SIZE = _REGISTRY.histogram(
    "ted_keymanager_batch_size",
    "Hash vectors per key-generation batch request",
    buckets=(1, 8, 64, 512, 4096, 48000, 1 << 20),
)
_BATCH_SECONDS = _REGISTRY.histogram(
    "ted_keymanager_batch_seconds",
    "Latency of one key-generation batch (lock held)",
)


class KeyManagerService:
    """Thread-safe key-generation service.

    Args:
        key_manager: the TED key manager to serve (BTED or FTED).
        rate_limiter: optional per-client request budget (§2.3's online
            brute-force defence); ``None`` disables limiting.
    """

    def __init__(
        self,
        key_manager: Optional[TedKeyManager] = None,
        rate_limiter: Optional[KeyGenRateLimiter] = None,
    ) -> None:
        self.key_manager = key_manager or TedKeyManager(
            secret=b"tedstore-default-secret",
            blowup_factor=1.05,
            batch_size=48_000,
            sketch_width=2**21,
        )
        self.rate_limiter = rate_limiter
        self._lock = threading.Lock()

    def handle_keygen(
        self, request: KeyGenRequest, client_id: str = "local"
    ) -> KeyGenResponse:
        """Serve one batch of key-generation requests.

        Raises:
            RateLimitExceeded: if a rate limiter is configured and this
                client exhausted its key-generation budget.
        """
        if self.rate_limiter is not None:
            self.rate_limiter.check(client_id, len(request.hash_vectors))
        batch = len(request.hash_vectors)
        _BATCH_SIZE.observe(batch)
        with tracing.get_tracer().span(
            "keymanager.keygen", attributes={"batch": batch}
        ), _BATCH_SECONDS.time(), self._lock:
            seeds = self.key_manager.generate_seeds(request.hash_vectors)
            return KeyGenResponse(seeds=seeds, current_t=self.key_manager.t)

    def stats(self):
        """Counters for the evaluation harness."""
        with self._lock:
            return [
                ("requests", self.key_manager.stats.requests),
                ("batches_tuned", self.key_manager.stats.batches_tuned),
                ("current_t", self.key_manager.t),
            ]
