"""TEDStore key-manager service.

Wraps :class:`repro.core.ted.TedKeyManager` behind the batch request/response
interface the clients speak (one :class:`KeyGenRequest` per client batch,
§3.5), with a lock so multiple client threads can be served concurrently —
the frequency state (sketch + tuner) is shared across all clients, which is
what makes TED's frequencies *global* across the organization's users.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.ted import TedKeyManager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.tedstore.km_state import KeyManagerStateStore
from repro.obs import metrics as obs_metrics, tracing
from repro.tedstore.messages import (
    BatchedKeyGenRequest,
    BatchedKeyGenResponse,
    KeyGenRequest,
    KeyGenResponse,
)
from repro.tedstore.ratelimit import KeyGenRateLimiter

_REGISTRY = obs_metrics.get_registry()
_BATCH_SIZE = _REGISTRY.histogram(
    "ted_keymanager_batch_size",
    "Hash vectors per key-generation batch request",
    buckets=(1, 8, 64, 512, 4096, 48000, 1 << 20),
)
_BATCH_SECONDS = _REGISTRY.histogram(
    "ted_keymanager_batch_seconds",
    "Latency of one key-generation batch (lock held)",
)


class KeyManagerService:
    """Thread-safe key-generation service.

    Args:
        key_manager: the TED key manager to serve (BTED or FTED).
        rate_limiter: optional per-client request budget (§2.3's online
            brute-force defence); ``None`` disables limiting.
        state_store: optional durable sketch-state store. When given,
            the key manager's frequency state is restored from it at
            construction, and every acked batch is logged to it before
            the response is released (DESIGN.md §12).
    """

    def __init__(
        self,
        key_manager: Optional[TedKeyManager] = None,
        rate_limiter: Optional[KeyGenRateLimiter] = None,
        state_store: Optional["KeyManagerStateStore"] = None,
    ) -> None:
        self.key_manager = key_manager or TedKeyManager(
            secret=b"tedstore-default-secret",
            blowup_factor=1.05,
            batch_size=48_000,
            sketch_width=2**21,
        )
        self.rate_limiter = rate_limiter
        self.state_store = state_store
        self._lock = threading.Lock()
        # Last sequence number served per client stream (DESIGN.md §10).
        self._last_sequence: Dict[str, int] = {}
        if state_store is not None:
            report = state_store.restore_into(self.key_manager)
            self._last_sequence.update(report.last_sequence)
            self.restore_report = report
        else:
            self.restore_report = None

    def handle_keygen(
        self,
        request: KeyGenRequest,
        client_id: str = "local",
        sequence: int = 0,
    ) -> KeyGenResponse:
        """Serve one batch of key-generation requests.

        With a state store configured, the batch is durably logged under
        the lock *before* the response is built: once the client sees the
        ack, a crashed-and-recovered key manager is guaranteed to have
        replayed the batch, so future seed decisions are unchanged.

        Raises:
            RateLimitExceeded: if a rate limiter is configured and this
                client exhausted its key-generation budget.
        """
        if self.rate_limiter is not None:
            self.rate_limiter.check(client_id, len(request.hash_vectors))
        batch = len(request.hash_vectors)
        _BATCH_SIZE.observe(batch)
        with tracing.get_tracer().span(
            "keymanager.keygen", attributes={"batch": batch}
        ), _BATCH_SECONDS.time(), self._lock:
            seeds = self.key_manager.generate_seeds(request.hash_vectors)
            if self.state_store is not None:
                self.state_store.log_batch(
                    client_id,
                    sequence,
                    request.hash_vectors,
                    key_manager=self.key_manager,
                    last_sequence=self._last_sequence,
                )
            return KeyGenResponse(seeds=seeds, current_t=self.key_manager.t)

    def handle_keygen_batched(
        self, request: BatchedKeyGenRequest, client_id: str = "local"
    ) -> BatchedKeyGenResponse:
        """Serve one *sequenced* keygen batch (pipelined client path).

        Enforces the batching contract of DESIGN.md §10: batches of one
        client stream must arrive in non-decreasing sequence order,
        because the sketch's frequency state accumulates in arrival
        order. A retry of the last-served sequence is accepted (replay
        re-updates the sketch — the fail-safe, over-estimating
        direction); sequence 0 starts a new stream.

        Raises:
            ValueError: on a sequence regression (a batch overtaken by a
                later one — the stream was reordered in transit).
            RateLimitExceeded: per :meth:`handle_keygen`.
        """
        with self._lock:
            last = self._last_sequence.get(client_id)
            if (
                request.sequence != 0
                and last is not None
                and request.sequence < last
            ):
                raise ValueError(
                    f"stale keygen batch: sequence {request.sequence} after "
                    f"{last} (stream reordered)"
                )
            self._last_sequence[client_id] = request.sequence
        inner = self.handle_keygen(
            KeyGenRequest(hash_vectors=request.hash_vectors),
            client_id=client_id,
            sequence=request.sequence,
        )
        return BatchedKeyGenResponse(
            sequence=request.sequence,
            seeds=inner.seeds,
            current_t=inner.current_t,
        )

    def stats(self):
        """Counters for the evaluation harness."""
        with self._lock:
            return [
                ("requests", self.key_manager.stats.requests),
                ("batches_tuned", self.key_manager.stats.batches_tuned),
                ("current_t", self.key_manager.t),
            ]

    def close(self) -> None:
        """Snapshot pending state (if durable) and release file handles."""
        if self.state_store is not None:
            with self._lock:
                self.state_store.snapshot(
                    self.key_manager, self._last_sequence
                )
            self.state_store.close()
