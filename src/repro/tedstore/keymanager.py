"""TEDStore key-manager service.

Wraps :class:`repro.core.ted.TedKeyManager` behind the batch request/response
interface the clients speak (one :class:`KeyGenRequest` per client batch,
§3.5), with a lock so multiple client threads can be served concurrently —
the frequency state (sketch + tuner) is shared across all clients, which is
what makes TED's frequencies *global* across the organization's users.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.core.ted import TedKeyManager
from repro.obs import metrics as obs_metrics, tracing
from repro.tedstore.messages import (
    BatchedKeyGenRequest,
    BatchedKeyGenResponse,
    KeyGenRequest,
    KeyGenResponse,
)
from repro.tedstore.ratelimit import KeyGenRateLimiter

_REGISTRY = obs_metrics.get_registry()
_BATCH_SIZE = _REGISTRY.histogram(
    "ted_keymanager_batch_size",
    "Hash vectors per key-generation batch request",
    buckets=(1, 8, 64, 512, 4096, 48000, 1 << 20),
)
_BATCH_SECONDS = _REGISTRY.histogram(
    "ted_keymanager_batch_seconds",
    "Latency of one key-generation batch (lock held)",
)


class KeyManagerService:
    """Thread-safe key-generation service.

    Args:
        key_manager: the TED key manager to serve (BTED or FTED).
        rate_limiter: optional per-client request budget (§2.3's online
            brute-force defence); ``None`` disables limiting.
    """

    def __init__(
        self,
        key_manager: Optional[TedKeyManager] = None,
        rate_limiter: Optional[KeyGenRateLimiter] = None,
    ) -> None:
        self.key_manager = key_manager or TedKeyManager(
            secret=b"tedstore-default-secret",
            blowup_factor=1.05,
            batch_size=48_000,
            sketch_width=2**21,
        )
        self.rate_limiter = rate_limiter
        self._lock = threading.Lock()
        # Last sequence number served per client stream (DESIGN.md §10).
        self._last_sequence: Dict[str, int] = {}

    def handle_keygen(
        self, request: KeyGenRequest, client_id: str = "local"
    ) -> KeyGenResponse:
        """Serve one batch of key-generation requests.

        Raises:
            RateLimitExceeded: if a rate limiter is configured and this
                client exhausted its key-generation budget.
        """
        if self.rate_limiter is not None:
            self.rate_limiter.check(client_id, len(request.hash_vectors))
        batch = len(request.hash_vectors)
        _BATCH_SIZE.observe(batch)
        with tracing.get_tracer().span(
            "keymanager.keygen", attributes={"batch": batch}
        ), _BATCH_SECONDS.time(), self._lock:
            seeds = self.key_manager.generate_seeds(request.hash_vectors)
            return KeyGenResponse(seeds=seeds, current_t=self.key_manager.t)

    def handle_keygen_batched(
        self, request: BatchedKeyGenRequest, client_id: str = "local"
    ) -> BatchedKeyGenResponse:
        """Serve one *sequenced* keygen batch (pipelined client path).

        Enforces the batching contract of DESIGN.md §10: batches of one
        client stream must arrive in non-decreasing sequence order,
        because the sketch's frequency state accumulates in arrival
        order. A retry of the last-served sequence is accepted (replay
        re-updates the sketch — the fail-safe, over-estimating
        direction); sequence 0 starts a new stream.

        Raises:
            ValueError: on a sequence regression (a batch overtaken by a
                later one — the stream was reordered in transit).
            RateLimitExceeded: per :meth:`handle_keygen`.
        """
        with self._lock:
            last = self._last_sequence.get(client_id)
            if (
                request.sequence != 0
                and last is not None
                and request.sequence < last
            ):
                raise ValueError(
                    f"stale keygen batch: sequence {request.sequence} after "
                    f"{last} (stream reordered)"
                )
            self._last_sequence[client_id] = request.sequence
        inner = self.handle_keygen(
            KeyGenRequest(hash_vectors=request.hash_vectors),
            client_id=client_id,
        )
        return BatchedKeyGenResponse(
            sequence=request.sequence,
            seeds=inner.seeds,
            current_t=inner.current_t,
        )

    def stats(self):
        """Counters for the evaluation harness."""
        with self._lock:
            return [
                ("requests", self.key_manager.stats.requests),
                ("batches_tuned", self.key_manager.stats.batches_tuned),
                ("current_t", self.key_manager.t),
            ]
