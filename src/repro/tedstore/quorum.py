"""Quorum-based key management (the paper's §4 fault-tolerance extension).

The TEDStore prototype "does not address the fault tolerance of the key
manager ... yet we can implement a quorum-based design for key generation
[27]" (§4, citing Duan, CCSW '14). This module implements that design as a
(k, n)-threshold oblivious signing service:

* A dealer Shamir-shares a signing scalar ``d`` over the P-256 group order
  and hands one share to each of ``n`` key-manager replicas.
* To derive a chunk key, the client hashes the fingerprint to a curve
  point, *blinds* it with a random scalar (so no replica learns the
  fingerprint), and asks any ``k`` live replicas for partial signatures
  ``d_i * (r * P)``.
* The client combines the partials with Lagrange coefficients in the
  exponent — yielding ``d * (r * P)`` regardless of *which* ``k`` replicas
  answered — unblinds, and derives the chunk key as ``H(d * P)``.

Determinism across quorums is the crucial property: duplicate chunks get
identical keys no matter which replicas are alive, so deduplication
survives key-manager failures. Up to ``n - k`` replicas can be down (or
even hold their shares hostage) without affecting availability, and fewer
than ``k`` colluding replicas learn nothing about ``d``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto import ec
from repro.crypto.shamir import Share, lagrange_coefficients_at_zero, split


class QuorumKeyServer:
    """One key-manager replica holding a Shamir share of the signing key."""

    def __init__(self, share: Share) -> None:
        self.share = share

    @property
    def server_id(self) -> int:
        """The replica's share index (the Shamir x-coordinate)."""
        return self.share.x

    def sign_blinded(self, blinded_point: ec.Point) -> ec.Point:
        """Partial signature: multiply the blinded point by the share.

        Raises:
            ValueError: for points not on the curve (malformed requests).
        """
        if blinded_point is None or not ec.is_on_curve(blinded_point):
            raise ValueError("invalid blinded point")
        return ec.scalar_mult(self.share.y, blinded_point)


def deal_quorum(
    threshold: int,
    num_servers: int,
    rng: Optional[random.Random] = None,
) -> Tuple[List[QuorumKeyServer], ec.Point]:
    """Create ``num_servers`` replicas with a fresh shared signing key.

    Returns:
        The replicas and the public point ``d * G`` (for auditing).
    """
    rng = rng or random.Random()
    secret = rng.randrange(1, ec.N)
    shares = split(secret, threshold, num_servers, prime=ec.N, rng=rng)
    servers = [QuorumKeyServer(share) for share in shares]
    return servers, ec.scalar_mult(secret, ec.GENERATOR)


class QuorumClient:
    """Client side of the threshold oblivious signing protocol.

    Replicas that fail with a transport error (connection drop, timeout,
    injected fault — see :mod:`repro.tedstore.faults`) are skipped and the
    quorum proceeds with the remaining ones; the Lagrange combination
    yields the same key regardless of *which* ``threshold`` replicas
    answered, so dedup survives degraded quorums. The skips are counted in
    :attr:`stats` so degraded operation is observable.
    """

    #: Failures that mean "replica unreachable", not "request malformed".
    TRANSIENT_ERRORS = (ConnectionError, TimeoutError, OSError)

    def __init__(
        self, threshold: int, rng: Optional[random.Random] = None
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.threshold = threshold
        self._rng = rng or random.Random()
        self.stats: Dict[str, int] = {
            "derivations": 0,
            "replica_failures": 0,
            "degraded_derivations": 0,
        }

    def derive_key(
        self, fingerprint: bytes, servers: Sequence[QuorumKeyServer]
    ) -> bytes:
        """Derive the chunk key using any ``threshold`` live replicas.

        Replicas raising a transient transport error are skipped; later
        replicas in ``servers`` take their place.

        Raises:
            ValueError: if fewer than ``threshold`` replicas are offered,
                fewer than ``threshold`` replicas answer, or two replicas
                claim the same share index.
        """
        if len(servers) < self.threshold:
            raise ValueError(
                f"need {self.threshold} replicas, got {len(servers)}"
            )

        point = ec.hash_to_curve(fingerprint)
        blinding = self._rng.randrange(1, ec.N)
        blinded = ec.scalar_mult(blinding, point)

        partials: Dict[int, ec.Point] = {}
        failures = 0
        for server in servers:
            if len(partials) == self.threshold:
                break
            if server.server_id in partials:
                raise ValueError("duplicate replica ids in quorum")
            try:
                partials[server.server_id] = server.sign_blinded(blinded)
            except self.TRANSIENT_ERRORS:
                failures += 1
                self.stats["replica_failures"] += 1
        if len(partials) < self.threshold:
            raise ValueError(
                f"quorum degraded below threshold: "
                f"{len(partials)}/{self.threshold} replicas answered "
                f"({failures} failed)"
            )
        self.stats["derivations"] += 1
        if failures:
            self.stats["degraded_derivations"] += 1

        ids = list(partials)
        coefficients = lagrange_coefficients_at_zero(ids, ec.N)
        combined: ec.Point = None
        for coefficient, server_id in zip(coefficients, ids):
            combined = ec.point_add(
                combined, ec.scalar_mult(coefficient, partials[server_id])
            )
        unblinded = ec.scalar_mult(
            pow(blinding, ec.N - 2, ec.N), combined
        )
        return hashlib.sha256(ec.encode_point(unblinded)).digest()

    def derive_keys(
        self,
        fingerprints: Sequence[bytes],
        servers: Sequence[QuorumKeyServer],
    ) -> List[bytes]:
        """Batch wrapper over :meth:`derive_key`."""
        return [self.derive_key(fp, servers) for fp in fingerprints]


def simulate_failover(
    fingerprint: bytes,
    servers: Sequence[QuorumKeyServer],
    threshold: int,
    down: Sequence[int],
    rng: Optional[random.Random] = None,
) -> bytes:
    """Derive a key while the replicas in ``down`` are unavailable.

    Raises:
        ValueError: if fewer than ``threshold`` replicas remain.
    """
    alive = [s for s in servers if s.server_id not in set(down)]
    client = QuorumClient(threshold, rng=rng)
    return client.derive_key(fingerprint, alive)


def availability_map(
    num_servers: int, threshold: int
) -> Dict[str, int]:
    """How many replica failures the deployment tolerates."""
    if threshold < 1 or num_servers < threshold:
        raise ValueError("invalid quorum configuration")
    return {
        "replicas": num_servers,
        "threshold": threshold,
        "tolerated_failures": num_servers - threshold,
        "collusion_resistance": threshold - 1,
    }
