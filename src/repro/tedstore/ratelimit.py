"""Per-client rate limiting for key-generation requests.

The threat model assumes "the key manager rate-limits each client's key
generation requests, so as to defend against online brute-force attacks"
(§2.3, following DupLESS): a malicious client who can ask for unlimited
keys can test candidate chunks against the store. A token bucket per client
bounds the *sustained* key-generation rate while allowing bursts the size
of a normal upload batch.

The bucket is deliberately generous to legitimate traffic: a backup client
requests one key per chunk, so the budget is expressed in chunks/second.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional


class RateLimitExceeded(Exception):
    """Raised when a client exceeds its key-generation budget."""


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, up to ``burst`` stored.

    Thread-safe on its own: callers outside ``KeyGenRateLimiter``'s dict
    lock (e.g. a bucket shared across handler threads) would otherwise
    race on the refill-and-spend sequence and over-admit.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._clock = clock or time.monotonic
        self._tokens = burst
        self._last = self._clock()
        self._lock = threading.Lock()

    def _refill_locked(self, now: float) -> None:
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def try_consume(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` from the bucket; False if not enough available."""
        if tokens < 0:
            raise ValueError("cannot consume negative tokens")
        with self._lock:
            self._refill_locked(self._clock())
            if tokens > self._tokens:
                return False
            self._tokens -= tokens
            return True

    def available(self) -> float:
        """Tokens currently available. Read-only: mutates no bucket state."""
        with self._lock:
            return min(
                self.burst,
                self._tokens + (self._clock() - self._last) * self.rate,
            )


class KeyGenRateLimiter:
    """Per-client token buckets keyed by an opaque client id.

    Args:
        chunks_per_second: sustained key-generation budget per client.
        burst_chunks: instantaneous burst allowance (size one upload batch
            generously; the paper's default batch is 48,000 chunks).
        clock: injectable time source (tests use a fake clock).
    """

    def __init__(
        self,
        chunks_per_second: float = 50_000.0,
        burst_chunks: float = 96_000.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.chunks_per_second = chunks_per_second
        self.burst_chunks = burst_chunks
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self.stats = {"allowed": 0, "rejected": 0}

    def check(self, client_id: str, num_chunks: int) -> None:
        """Charge a key-generation batch against the client's budget.

        Raises:
            RateLimitExceeded: when the client's bucket runs dry — the
                online brute-force signature (many more requests than any
                legitimate upload produces).
        """
        if num_chunks < 0:
            raise ValueError("num_chunks cannot be negative")
        with self._lock:
            bucket = self._buckets.get(client_id)
            if bucket is None:
                bucket = TokenBucket(
                    self.chunks_per_second, self.burst_chunks, clock=self._clock
                )
                self._buckets[client_id] = bucket
            if bucket.try_consume(num_chunks):
                self.stats["allowed"] += num_chunks
                return
            self.stats["rejected"] += num_chunks
        raise RateLimitExceeded(
            f"client {client_id!r} exceeded the key-generation budget "
            f"({self.chunks_per_second:.0f} chunks/s, "
            f"burst {self.burst_chunks:.0f})"
        )

    def clients(self) -> int:
        """Number of clients with active buckets."""
        with self._lock:
            return len(self._buckets)
