"""Sharded key-manager front and client-side shard routing.

The KM half of ROADMAP item 2 (DESIGN.md §15). A
:class:`ShardedKeyManager` presents exactly the
:class:`~repro.tedstore.keymanager.KeyManagerService` interface — the
wire layer, the in-process transport, and the client pipeline cannot
tell them apart — but splits frequency counting across N Count-Min
sketch shards selected by the consistent-hash ring.

The design splits TED's keygen into its two halves:

* **Counting is shardable.** A short-hash vector always routes to the
  same shard, so that shard's sketch sees every occurrence of every
  identity it owns — its estimates equal a single sketch's estimates
  up to collision noise, and the *union* of shard states is checked
  byte-identical to the single-sketch baseline by the shard-parity
  differential gate (a shard's sketch is sparser, so collisions can
  only decrease; the gate proves they match exactly at test geometry).
* **Selection is not.** Eq. 3's probabilistic draw consumes one global
  RNG stream in request order, and FTED's ``t`` is one global knob
  retuned on a global request counter. Those stay on the *front*: the
  front owns the seeder, the RNG, ``t``, the tuner, and the FTED
  frequency-tracking map, and runs selection over the whole batch in
  arrival order after the shards return estimates. That is why a
  sharded deployment derives bit-identical seeds to a single KM.

Each shard gets its own durable ``km_state.py`` state directory under
``<state_root>/shards/<k>`` (log-before-ack, snapshot+delta). The
front's own durable needs are tiny — the tune trajectory — recorded in
``front.log``; everything else recovers from the shard states (requests
= sum of shard requests, tracking map = union of shard maps).

**Multi-process mode (DESIGN.md §17).** When the ring publishes a
per-shard endpoint map, the front's observers are *processes*: each
``repro serve-shard --role km`` child runs a
:class:`ShardObserverService` over its own ``shards/<k>`` store, and
the front fans sub-batches over guarded
:class:`~repro.tedstore.fleet.RemoteKmShardPool` routes. Selection is
untouched — the front still owns the RNG, ``t``, the tuner, and the
tracking map — so seeds stay bit-identical while each shard becomes
an independent failure domain. The front's restore path then replays
``front.log`` alone (tune trajectory + request floor); observer
sketches recover in their own processes.

:class:`ShardRoutingProvider` is the provider-side client hook: a
transport wrapper that splits chunk batches by ring placement so a
client can talk to per-shard provider processes (or just meter
placement against one process). Order within each shard's sub-batch
preserves arrival order, which is all the dedup engine's determinism
needs.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.ted import TedKeyManager
from repro.obs import tracing
from repro.storage.sharded import ShardRouteMeter
from repro.storage.wal import OP_PUT, WriteAheadLog
from repro.tedstore.km_state import KeyManagerStateStore, RestoreReport
from repro.tedstore.messages import (
    BatchedKeyGenRequest,
    BatchedKeyGenResponse,
    Chunks,
    GetChunks,
    KeyGenRequest,
    KeyGenResponse,
    PutChunks,
    PutChunksResponse,
    ShardObserveRequest,
    ShardObserveResponse,
)
from repro.tedstore.ring import HashRing, load_ring, store_ring
from repro.utils.varint import decode_uvarint, encode_uvarint

RING_FILENAME = "ring.json"
FRONT_LOG_FILENAME = "front.log"
SHARDS_DIRNAME = "shards"


def make_shard_observer(front: TedKeyManager) -> TedKeyManager:
    """A sketch-observer key manager matching ``front``'s geometry.

    Observers count frequencies (:meth:`TedKeyManager.estimate_batch`)
    but never select seeds or tune: ``probabilistic=False`` means no
    RNG is ever constructed or consumed, and ``batch_size=None`` means
    no self-retuning — both are the front's exclusive jobs.
    """
    observer = TedKeyManager(
        secret=front.secret,
        t=None if front.is_fted else front.t,
        blowup_factor=front.blowup_factor,
        batch_size=None,
        sketch_rows=front.sketch.rows,
        sketch_width=front.sketch.width,
        probabilistic=False,
        conservative_sketch=front.sketch.conservative,
        algorithm=front._seeder.algorithm,
    )
    observer.t = front.t
    return observer


class _KmShard:
    """One shard: an observer key manager plus its durable store."""

    def __init__(
        self,
        shard_id: int,
        key_manager: TedKeyManager,
        store: Optional[KeyManagerStateStore],
    ) -> None:
        self.shard_id = shard_id
        self.key_manager = key_manager
        self.store = store


class ShardObserverService:
    """One KM sketch-observer shard served as its own process.

    The ``repro serve-shard --role km`` payload (DESIGN.md §17): owns
    a single observer key manager plus its durable ``km_state`` store
    (the same ``shards/<k>`` directory an in-process front would use,
    so a deployment can move between in-process and fleet serving
    without migrating state). Answers ``MSG_SHARD_OBSERVE`` by
    updating the sketch and logging the sub-batch *before* the
    estimates are released — the log-before-ack contract that makes a
    front's replay of a retried batch idempotent after this process
    is killed and restarted.

    Args:
        shard_id: this shard's id in the deployment ring.
        key_manager: an observer KM (:func:`make_shard_observer`
            geometry: ``probabilistic=False``, ``batch_size=None``).
        state_dir: durable store directory; ``None`` = in-memory.
        ring_epoch: the deployment ring's epoch, echoed in PONG so
            probes catch a shard serving a stale ring.
    """

    def __init__(
        self,
        shard_id: int,
        key_manager: TedKeyManager,
        state_dir=None,
        ring_epoch: int = 0,
        snapshot_every: int = 64,
        sync_every: int = 1,
    ) -> None:
        self.shard_id = int(shard_id)
        self.key_manager = key_manager
        self._epoch = int(ring_epoch)
        self._lock = threading.Lock()
        self._last_sequence: Dict[str, int] = {}
        self._store: Optional[KeyManagerStateStore] = None
        self.restore_report = RestoreReport()
        if state_dir is not None:
            self._store = KeyManagerStateStore(
                Path(state_dir),
                snapshot_every=snapshot_every,
                sync_every=sync_every,
            )
            self.restore_report = self._store.restore_into(key_manager)
            self._last_sequence.update(self.restore_report.last_sequence)

    def ring_epoch(self) -> int:
        return self._epoch

    def handle_observe(
        self, request: ShardObserveRequest, peer: str = "local"
    ) -> ShardObserveResponse:
        """Observe one sub-batch; durable before the reply is released."""
        with self._lock:
            estimates = self.key_manager.estimate_batch(
                request.hash_vectors
            )
            self._last_sequence[request.client_id] = request.sequence
            if self._store is not None:
                self._store.log_batch(
                    request.client_id,
                    request.sequence,
                    request.hash_vectors,
                    key_manager=self.key_manager,
                    last_sequence=self._last_sequence,
                )
        return ShardObserveResponse(estimates=estimates)

    def stats(self) -> List[Tuple[str, int]]:
        km = self.key_manager
        return [
            ("requests", km.stats.requests),
            ("shard_id", self.shard_id),
            ("ring_epoch", self._epoch),
        ]

    def flush(self) -> None:
        with self._lock:
            if self._store is not None:
                self._store.snapshot(self.key_manager, self._last_sequence)

    def close(self) -> None:
        with self._lock:
            if self._store is not None:
                self._store.snapshot(self.key_manager, self._last_sequence)
                self._store.close()
                self._store = None


class ShardedKeyManager:
    """Ring-routed key-manager front, wire-compatible with the single KM.

    Drop-in for :class:`~repro.tedstore.keymanager.KeyManagerService`:
    ``serve_key_manager`` and :class:`~repro.tedstore.inprocess.\
LocalKeyManager` duck-type against ``handle_keygen`` /
    ``handle_keygen_batched`` / ``stats`` / ``close``.

    Args:
        key_manager: the front key manager — owns the seeder/RNG,
            ``t``, the tuner, and the FTED tracking map. Its own sketch
            is never updated (the shards count).
        ring: placement; optional when ``state_root`` already holds a
            persisted ``ring.json``.
        rate_limiter: optional, same contract as the single service.
        state_root: directory for durable state (``ring.json``,
            ``front.log``, ``shards/<k>/``); ``None`` = in-memory.
        shard_pool: a :class:`~repro.tedstore.fleet.RemoteKmShardPool`
            (or duck-type) for multi-process mode. When ``None`` and
            the ring publishes endpoints, one is built automatically
            from ``fleet_options`` — endpoints in the ring mean the
            observers live in their own processes (DESIGN.md §17).
        fleet_options: kwargs for the auto-built pool (retry policy,
            breaker tuning, heartbeat interval, timeouts).

    Example:
        >>> front = TedKeyManager(secret=b"kappa", t=5)
        >>> service = ShardedKeyManager(front, HashRing.build(3))
        >>> len(service.handle_keygen(KeyGenRequest([[1, 2]])).seeds)
        1
    """

    def __init__(
        self,
        key_manager: TedKeyManager,
        ring: Optional[HashRing] = None,
        rate_limiter=None,
        state_root=None,
        snapshot_every: int = 64,
        sync_every: int = 1,
        shard_pool=None,
        fleet_options: Optional[Dict] = None,
    ) -> None:
        self.key_manager = key_manager
        self.rate_limiter = rate_limiter
        self._lock = threading.Lock()
        self._last_sequence: Dict[str, int] = {}
        self._state_root = Path(state_root) if state_root else None
        self._front_log: Optional[WriteAheadLog] = None

        if self._state_root is not None:
            self._state_root.mkdir(parents=True, exist_ok=True)
            from repro.tedstore import reshard as reshard_mod

            if reshard_mod.pending_reshard(self._state_root):
                raise RuntimeError(
                    "unfinished reshard in KM state dir "
                    f"{self._state_root}; run `repro reshard` to complete "
                    "the migration before serving"
                )
            ring_path = self._state_root / RING_FILENAME
            if ring_path.exists():
                persisted = load_ring(ring_path)
                if ring is not None and persisted != ring:
                    raise ValueError(
                        "ring config mismatch: state dir holds "
                        f"{persisted!r}; run `repro reshard` to change "
                        "shard membership"
                    )
                ring = persisted
            elif ring is not None:
                store_ring(ring_path, ring)
        if ring is None:
            raise ValueError("a HashRing (or persisted ring.json) is required")
        self.ring = ring

        self._shards: Dict[int, _KmShard] = {}
        self._pool = shard_pool
        if self._pool is None and ring.endpoints:
            from repro.tedstore.fleet import RemoteKmShardPool

            self._pool = RemoteKmShardPool(ring, **(fleet_options or {}))
        self._meter = ShardRouteMeter("km", ring.shards)
        if self._pool is not None:
            self.restore_report = self._restore_remote()
        else:
            for shard_id in ring.shards:
                store = None
                if self._state_root is not None:
                    store = KeyManagerStateStore(
                        self._state_root / SHARDS_DIRNAME / str(shard_id),
                        snapshot_every=snapshot_every,
                        sync_every=sync_every,
                    )
                self._shards[shard_id] = _KmShard(
                    shard_id, make_shard_observer(key_manager), store
                )
            self.restore_report = self._restore()

    # -- recovery ----------------------------------------------------------

    def _restore(self) -> RestoreReport:
        """Rebuild front + shard state from the per-shard stores.

        Shard stores recover independently (snapshot + delta replay);
        the front re-derives its global state from them: requests = sum
        of shard requests, position-in-batch = requests mod batch size
        (tunes land exactly on batch boundaries), tracking map = union
        of shard maps (an identity lives on exactly one shard). ``t``
        and the tune count replay from ``front.log`` — the only state
        that is the front's alone.
        """
        report = RestoreReport()
        front = self.key_manager
        for shard_id in self.ring.shards:
            shard = self._shards[shard_id]
            if shard.store is None:
                continue
            sub = shard.store.restore_into(shard.key_manager)
            report.snapshot_loaded = report.snapshot_loaded or (
                sub.snapshot_loaded
            )
            report.deltas_replayed += sub.deltas_replayed
            for client_id, sequence in sub.last_sequence.items():
                if sequence > report.last_sequence.get(client_id, -1):
                    report.last_sequence[client_id] = sequence
        self._last_sequence.update(report.last_sequence)

        if self._state_root is not None:
            front_log_path = self._state_root / FRONT_LOG_FILENAME
            if front.is_fted and front_log_path.exists():
                last_t = None
                tunes = 0
                for _, key, value in WriteAheadLog.replay(front_log_path):
                    if key == b"tune":
                        last_t, _ = decode_uvarint(value, 0)
                        tunes += 1
                if last_t is not None:
                    front.t = last_t
                    front.stats.batches_tuned = tunes
            self._front_log = WriteAheadLog(front_log_path, scope="km.front")

        total_requests = sum(
            self._shards[s].key_manager.stats.requests
            for s in self.ring.shards
        )
        if total_requests:
            front.stats.requests = total_requests
            if front.batch_size is not None:
                front._requests_in_batch = total_requests % front.batch_size
        if front.is_fted:
            merged: Dict[Tuple[int, ...], int] = {}
            for shard_id in self.ring.shards:
                merged.update(
                    self._shards[shard_id].key_manager._freq_by_identity
                )
            if merged:
                front._freq_by_identity = merged
        for shard_id in self.ring.shards:
            self._shards[shard_id].key_manager.t = front.t
        return report

    def _restore_remote(self) -> RestoreReport:
        """Front-only restore for multi-process mode.

        Observer sketches recover inside their own processes (the §12
        km_state path); the front replays just ``front.log``: ``t``,
        the tune count, and the request floor logged with each tune.
        Tunes land exactly on batch boundaries, so the floor restores
        the position-in-batch too. The FTED tracking map restarts
        empty — identities observed before the restart rejoin the map
        as they recur, which can only *under*-count one tune window's
        frequencies relative to a never-restarted front (the next
        window converges); the acceptable degradation is documented
        in DESIGN.md §17.
        """
        report = RestoreReport()
        front = self.key_manager
        if self._state_root is not None:
            front_log_path = self._state_root / FRONT_LOG_FILENAME
            if front_log_path.exists():
                last_t = None
                last_requests = 0
                tunes = 0
                for _, key, value in WriteAheadLog.replay(front_log_path):
                    if key == b"tune":
                        last_t, offset = decode_uvarint(value, 0)
                        last_requests, _ = decode_uvarint(value, offset)
                        tunes += 1
                if last_t is not None and front.is_fted:
                    front.t = last_t
                    front.stats.batches_tuned = tunes
                if last_requests:
                    front.stats.requests = last_requests
                    if front.batch_size is not None:
                        front._requests_in_batch = (
                            last_requests % front.batch_size
                        )
                report.deltas_replayed = tunes
            self._front_log = WriteAheadLog(front_log_path, scope="km.front")
        return report

    # -- service interface -------------------------------------------------

    def ring_epoch(self) -> int:
        """The deployment ring epoch (echoed in PONG heartbeats)."""
        return self.ring.epoch

    def handle_keygen(
        self,
        request: KeyGenRequest,
        client_id: str = "local",
        sequence: int = 0,
    ) -> KeyGenResponse:
        if self.rate_limiter is not None:
            self.rate_limiter.check(client_id, len(request.hash_vectors))
        with tracing.get_tracer().span(
            "km.sharded_keygen",
            attributes={
                "batch": len(request.hash_vectors),
                "shards": len(self.ring),
            },
        ):
            with self._lock:
                vectors = request.hash_vectors
                owners = [
                    self.ring.shard_for_hashes(vector) for vector in vectors
                ]
                estimates = self._observe(client_id, sequence, vectors, owners)
                seeds = self._select(vectors, owners, estimates)
                return KeyGenResponse(
                    seeds=seeds, current_t=self.key_manager.t
                )

    def handle_keygen_batched(
        self, request: BatchedKeyGenRequest, client_id: str = "local"
    ) -> BatchedKeyGenResponse:
        """Sequenced batches, same ordering contract as the single KM.

        The sequence check happens once at the front — sub-batches fan
        out to shards only after the stream position is validated, and
        the reply reassembles every shard's estimates back into arrival
        order, so the client pipeline's contract (DESIGN.md §10) is
        untouched by sharding.
        """
        with self._lock:
            last = self._last_sequence.get(client_id)
            if request.sequence != 0 and last is not None:
                if request.sequence < last:
                    raise ValueError(
                        f"stale keygen batch: sequence {request.sequence} "
                        f"after {last} (stream reordered)"
                    )
            self._last_sequence[client_id] = request.sequence
        response = self.handle_keygen(
            KeyGenRequest(hash_vectors=request.hash_vectors),
            client_id=client_id,
            sequence=request.sequence,
        )
        return BatchedKeyGenResponse(
            sequence=request.sequence,
            seeds=response.seeds,
            current_t=response.current_t,
        )

    # -- the two phases ----------------------------------------------------

    def _observe(
        self,
        client_id: str,
        sequence: int,
        vectors: List[List[int]],
        owners: List[int],
    ) -> List[int]:
        """Fan the batch out to shard sketches; gather estimates.

        Sub-batches preserve arrival order, and every occurrence of an
        identity goes to the same shard, so per-identity update order —
        the only order a Count-Min sketch is sensitive to — matches the
        single-sketch run exactly. Durable shards log before the
        response is released (the km_state ack contract).
        """
        groups: Dict[int, List[int]] = {}
        for position, owner in enumerate(owners):
            groups.setdefault(owner, []).append(position)
        estimates = [0] * len(vectors)
        for shard_id in sorted(groups):
            positions = groups[shard_id]
            sub_batch = [vectors[p] for p in positions]
            self._meter.record(shard_id, len(positions))
            if self._pool is not None:
                # Multi-process: the observer process updates + logs its
                # durable sketch before replying (same ack contract). A
                # dead observer raises ShardUnavailableError here; the
                # client's retried batch re-observes at the healthy
                # shards — over-counting, the fail-safe direction, and
                # the same stance as retried wire batches (DESIGN.md §8).
                sub_estimates = self._pool.observe(
                    shard_id, client_id, sequence, sub_batch
                )
            else:
                shard = self._shards[shard_id]
                sub_estimates = shard.key_manager.estimate_batch(sub_batch)
                if shard.store is not None:
                    shard.store.log_batch(
                        client_id,
                        sequence,
                        sub_batch,
                        key_manager=shard.key_manager,
                        last_sequence=self._last_sequence,
                    )
            for position, estimate in zip(positions, sub_estimates):
                estimates[position] = estimate
        return estimates

    def _select(
        self,
        vectors: List[List[int]],
        owners: List[int],
        estimates: List[int],
    ) -> List[bytes]:
        """Eq. 3 selection over the whole batch, in arrival order.

        Single RNG stream, single ``t``, single tracking map — the
        exact per-request interleaving of a single key manager,
        including FTED retunes landing mid-batch.
        """
        front = self.key_manager
        seeds: List[bytes] = []
        tuned = False
        # Selections since the last tune: a mid-batch retune clears the
        # shard maps (they mirror the front map at rest), so identities
        # selected after the boundary are re-tracked into their owners
        # below, restoring front-map == union-of-shard-maps.
        since_tune: List[Tuple[int, Tuple[int, ...], int]] = []
        for vector, owner, frequency in zip(vectors, owners, estimates):
            identity = tuple(vector)
            if front.is_fted:
                front._freq_by_identity[identity] = frequency
            seeds.append(front._seeder.select_seed(vector, frequency, front.t))
            front.stats.requests += 1
            since_tune.append((owner, identity, frequency))
            if front.batch_size is not None:
                front._requests_in_batch += 1
                if front._requests_in_batch >= front.batch_size:
                    self._tune_locked()
                    front._requests_in_batch = 0
                    tuned = True
                    since_tune = []
        if tuned and self._pool is None:
            if front.is_fted:
                for owner, identity, frequency in since_tune:
                    self._shards[owner].key_manager._freq_by_identity[
                        identity
                    ] = frequency
            self._snapshot_shards()
        return seeds

    def _tune_locked(self) -> None:
        """FTED batch-boundary retune, mirroring ``_retune_from_tracked``.

        The new ``t`` is logged to ``front.log`` before the shard maps
        clear; a crash between the two replays stale map entries into
        the next tune — frequency over-counting, the fail-safe
        direction (same stance as km_state replay of retried batches).
        """
        front = self.key_manager
        frequencies = list(front._freq_by_identity.values())
        if frequencies:
            front.tune_from_frequencies(frequencies)
        front._freq_by_identity.clear()
        if self._front_log is not None:
            self._front_log.append(
                OP_PUT,
                b"tune",
                bytes(encode_uvarint(front.t))
                + bytes(encode_uvarint(front.stats.requests)),
            )
            self._front_log.sync()
        # Remote observers never see t (estimates don't use it) and own
        # their tracking maps; only in-process shard mirrors need sync.
        for shard_id in self.ring.shards if self._pool is None else ():
            shard = self._shards[shard_id]
            shard.key_manager.t = front.t
            shard.key_manager._freq_by_identity.clear()

    def _snapshot_shards(self) -> None:
        for shard_id in self.ring.shards:
            shard = self._shards[shard_id]
            if shard.store is not None:
                shard.store.snapshot(shard.key_manager, self._last_sequence)

    # -- reporting / lifecycle ---------------------------------------------

    def shard_key_managers(self) -> Dict[int, TedKeyManager]:
        """The shard observers, keyed by shard id (tests, parity gate)."""
        if self._pool is not None:
            raise RuntimeError(
                "shard observers live in their own processes; query them "
                "over the wire (stats / PING)"
            )
        return {
            shard_id: self._shards[shard_id].key_manager
            for shard_id in self.ring.shards
        }

    def shard_health(self) -> Dict[int, str]:
        """Breaker state per shard (multi-process mode; else all closed)."""
        if self._pool is not None:
            return self._pool.shard_health()
        return {shard_id: "closed" for shard_id in self.ring.shards}

    def routed_counts(self) -> Dict[int, int]:
        return self._meter.counts

    def stats(self) -> List[Tuple[str, int]]:
        km = self.key_manager
        pairs = [
            ("requests", km.stats.requests),
            ("batches_tuned", km.stats.batches_tuned),
            ("current_t", km.t),
            ("shards", len(self.ring)),
        ]
        if self._pool is not None:
            for shard_id, state in sorted(self.shard_health().items()):
                pairs.append(
                    (f"shard_{shard_id}_healthy", int(state == "closed"))
                )
        return pairs

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.close()
            for shard_id in self.ring.shards:
                shard = self._shards.get(shard_id)
                if shard is not None and shard.store is not None:
                    shard.store.snapshot(
                        shard.key_manager, self._last_sequence
                    )
                    shard.store.close()
            if self._front_log is not None:
                self._front_log.close()
                self._front_log = None


class ShardRoutingProvider:
    """Client-side transport wrapper routing chunk batches by ring.

    Wraps any provider transport (:class:`~repro.tedstore.inprocess.\
LocalProvider`, :class:`~repro.tedstore.network.RemoteProvider`) and
    splits ``put_chunks``/``get_chunks`` into per-shard sub-batches in
    shard-id order, each preserving arrival order; ``get_chunks``
    results are scattered back into request order. Everything else
    (recipes, stats, close) passes through.
    """

    def __init__(self, transport, ring: HashRing) -> None:
        self._transport = transport
        self.ring = ring
        self._meter = ShardRouteMeter("client", ring.shards)

    def ring_epoch(self) -> int:
        return self.ring.epoch

    def put_chunks(self, request: PutChunks) -> PutChunksResponse:
        groups: Dict[int, List[Tuple[bytes, bytes]]] = {}
        for fingerprint, data in request.chunks:
            shard = self.ring.shard_for_key(fingerprint)
            groups.setdefault(shard, []).append((fingerprint, data))
        stored = duplicates = 0
        for shard in sorted(groups):
            self._meter.record(shard, len(groups[shard]))
            response = self._transport.put_chunks(
                PutChunks(chunks=groups[shard])
            )
            stored += response.stored
            duplicates += response.duplicates
        return PutChunksResponse(stored=stored, duplicates=duplicates)

    def get_chunks(self, request: GetChunks) -> Chunks:
        groups: Dict[int, List[int]] = {}
        for position, fingerprint in enumerate(request.fingerprints):
            shard = self.ring.shard_for_key(fingerprint)
            groups.setdefault(shard, []).append(position)
        results: List[bytes] = [b""] * len(request.fingerprints)
        for shard in sorted(groups):
            positions = groups[shard]
            self._meter.record(shard, len(positions))
            response = self._transport.get_chunks(
                GetChunks(
                    fingerprints=[
                        request.fingerprints[p] for p in positions
                    ]
                )
            )
            for position, chunk in zip(positions, response.chunks):
                results[position] = chunk
        return Chunks(chunks=results)

    def routed_counts(self) -> Dict[int, int]:
        return self._meter.counts

    def __getattr__(self, name: str):
        return getattr(self._transport, name)


__all__ = [
    "FRONT_LOG_FILENAME",
    "RING_FILENAME",
    "SHARDS_DIRNAME",
    "ShardObserverService",
    "ShardRoutingProvider",
    "ShardedKeyManager",
    "make_shard_observer",
]
