"""TEDStore wire protocol: message framing and serialization.

Every message is framed as ``[length u32 BE][type u8][payload]`` where
length covers type + payload. Payloads are built from varints and
length-prefixed byte strings only — no pickle, no external formats — so the
protocol is compact, deterministic, and safe to parse from untrusted peers.

The protocol batches aggressively (key-generation requests, chunk uploads,
chunk downloads), matching TEDStore's optimization of combining small data
units into single transmissions (paper §4).

**Trace context (DESIGN.md §9).** A frame may carry an optional trace
context so one client operation can be followed across the key manager and
the provider. Presence is signalled by the high bit of the type byte
(:data:`MSG_FLAG_TRACE`); a flagged frame reads as::

    [length u32 BE][type u8 | 0x80][ctx_len uvarint][ctx bytes][payload]

The context bytes are opaque here (see :mod:`repro.obs.tracing` for their
format). Version tolerance: new readers accept unflagged frames from old
peers unchanged, and a new client talking to an old peer — which rejects
the flagged type byte with ``MSG_ERROR "unexpected message"`` — downgrades
to untraced frames on that connection (:mod:`repro.tedstore.network`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.utils.varint import decode_uvarint, encode_uvarint

_LEN = struct.Struct(">I")
_F64 = struct.Struct(">d")

MSG_KEYGEN_REQUEST = 1
MSG_KEYGEN_RESPONSE = 2
MSG_PUT_CHUNKS = 3
MSG_PUT_CHUNKS_RESPONSE = 4
MSG_PUT_RECIPES = 5
MSG_OK = 6
MSG_GET_RECIPES = 7
MSG_RECIPES = 8
MSG_GET_CHUNKS = 9
MSG_CHUNKS = 10
MSG_ERROR = 11
MSG_STATS_REQUEST = 12
MSG_STATS_RESPONSE = 13
# Load-shedding reply (same payload as MSG_ERROR): the server refused to
# admit the request — max-inflight guard tripped or shutdown is draining.
# Unlike MSG_ERROR it is always safe to retry: the request was never
# dispatched, so no state changed.
MSG_BUSY = 14
# Sequenced keygen batch (pipelined client path, DESIGN.md §10): same
# payload as MSG_KEYGEN_REQUEST/RESPONSE plus a stream sequence number so
# the key manager can enforce in-order batch delivery — the frequency
# state the sketch accumulates is order-sensitive across batches.
MSG_KEYGEN_BATCH_REQUEST = 15
MSG_KEYGEN_BATCH_RESPONSE = 16
# Tenant handshake (multi-tenant provider, DESIGN.md §13): sent once per
# connection before any other request; binds the connection to a tenant
# namespace. Version tolerance works like the trace-context flag: an old
# server rejects the unknown type with ``MSG_ERROR "unexpected message"``
# and the client downgrades to the anonymous default-tenant mode, while a
# connection that never sends HELLO is served as the default tenant.
MSG_HELLO = 17
MSG_HELLO_OK = 18
# Typed not-found reply: unknown file names and fingerprints are client
# errors, not server faults — ``MSG_ERROR`` conflated the two (and leaked
# ``KeyError`` repr quotes). Old servers still answer with the legacy
# ``MSG_ERROR "not found: ..."`` form, which new clients keep decoding.
MSG_NOT_FOUND = 19
# Health heartbeat (DESIGN.md §17). PING carries no payload; PONG names
# the responder's role and shard and echoes its ring epoch so probes
# double as a cheap staleness check (a shard answering with a *lower*
# epoch than the client's ring is serving a stale config).
MSG_PING = 20
MSG_PONG = 21
# KM sketch-observer shard protocol (DESIGN.md §17): the front fans each
# keygen batch's per-shard sub-batch to its observer process, which
# updates + logs its durable Count-Min shard and returns the frequency
# estimates the front's seed selection needs. Carries the client stream
# identity so observer-side replay of a retried batch stays idempotent.
MSG_SHARD_OBSERVE = 22
MSG_SHARD_ESTIMATES = 23

#: Human-readable message-type names (span labels, error messages).
MESSAGE_NAMES = {
    MSG_KEYGEN_REQUEST: "keygen",
    MSG_KEYGEN_RESPONSE: "keygen_response",
    MSG_PUT_CHUNKS: "put_chunks",
    MSG_PUT_CHUNKS_RESPONSE: "put_chunks_response",
    MSG_PUT_RECIPES: "put_recipes",
    MSG_OK: "ok",
    MSG_GET_RECIPES: "get_recipes",
    MSG_RECIPES: "recipes",
    MSG_GET_CHUNKS: "get_chunks",
    MSG_CHUNKS: "chunks",
    MSG_ERROR: "error",
    MSG_STATS_REQUEST: "stats_request",
    MSG_STATS_RESPONSE: "stats_response",
    MSG_BUSY: "busy",
    MSG_KEYGEN_BATCH_REQUEST: "keygen_batch",
    MSG_KEYGEN_BATCH_RESPONSE: "keygen_batch_response",
    MSG_HELLO: "hello",
    MSG_HELLO_OK: "hello_ok",
    MSG_NOT_FOUND: "not_found",
    MSG_PING: "ping",
    MSG_PONG: "pong",
    MSG_SHARD_OBSERVE: "shard_observe",
    MSG_SHARD_ESTIMATES: "shard_estimates",
}

#: High bit of the type byte: the frame carries a trace-context section.
MSG_FLAG_TRACE = 0x80

#: Trace contexts are small (tens of bytes); bound them defensively.
MAX_TRACE_CONTEXT_BYTES = 256

MAX_MESSAGE_BYTES = 256 << 20  # guard against absurd/corrupt frames


class ProtocolError(Exception):
    """Raised on malformed frames or payloads."""


def message_name(message_type: int) -> str:
    """Name of a message type (flag bits stripped), for spans and logs."""
    return MESSAGE_NAMES.get(message_type & ~MSG_FLAG_TRACE, f"type{message_type}")


def frame(
    message_type: int,
    payload: bytes,
    trace_context: Optional[bytes] = None,
) -> bytes:
    """Wrap a payload in the wire framing.

    Args:
        trace_context: opaque trace-context bytes to piggyback on the
            frame; sets :data:`MSG_FLAG_TRACE` on the type byte.
    """
    if trace_context:
        if len(trace_context) > MAX_TRACE_CONTEXT_BYTES:
            raise ProtocolError("trace context too large")
        body = (
            bytes([message_type | MSG_FLAG_TRACE])
            + encode_uvarint(len(trace_context))
            + trace_context
            + payload
        )
    else:
        body = bytes([message_type]) + payload
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError("message exceeds the frame size limit")
    return _LEN.pack(len(body)) + body


def read_frame_ex(recv_exact) -> Tuple[int, bytes, Optional[bytes]]:
    """Read one frame via a ``recv_exact(n) -> bytes`` callable.

    Returns:
        ``(message_type, payload, trace_context)`` — the flag bit is
        stripped from the type and ``trace_context`` is ``None`` on
        unflagged (old-format) frames.

    Raises:
        ProtocolError: on oversized or truncated frames.
    """
    header = recv_exact(_LEN.size)
    (length,) = _LEN.unpack(header)
    if length == 0 or length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"invalid frame length {length}")
    body = recv_exact(length)
    message_type = body[0]
    if not message_type & MSG_FLAG_TRACE:
        return message_type, body[1:], None
    try:
        ctx_len, offset = decode_uvarint(body, 1)
    except (ValueError, IndexError) as exc:
        raise ProtocolError("malformed trace-context length") from exc
    if ctx_len > MAX_TRACE_CONTEXT_BYTES or offset + ctx_len > len(body):
        raise ProtocolError("truncated trace context")
    context = bytes(body[offset : offset + ctx_len])
    return message_type & ~MSG_FLAG_TRACE, body[offset + ctx_len :], context


def read_frame(recv_exact) -> Tuple[int, bytes]:
    """Back-compat reader: :func:`read_frame_ex` minus the trace context."""
    message_type, payload, _ = read_frame_ex(recv_exact)
    return message_type, payload


class _Writer:
    """Payload builder."""

    def __init__(self) -> None:
        self._out = bytearray()

    def varint(self, value: int) -> "_Writer":
        self._out.extend(encode_uvarint(value))
        return self

    def blob(self, data: bytes) -> "_Writer":
        self._out.extend(encode_uvarint(len(data)))
        self._out.extend(data)
        return self

    def raw(self, data: bytes) -> "_Writer":
        """Append bytes with no length prefix (fixed-width fields)."""
        self._out.extend(data)
        return self

    def text(self, value: str) -> "_Writer":
        return self.blob(value.encode("utf-8"))

    def done(self) -> bytes:
        return bytes(self._out)


class _Reader:
    """Payload parser with bounds checking."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def varint(self) -> int:
        try:
            value, self._pos = decode_uvarint(self._data, self._pos)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
        return value

    def blob(self) -> bytes:
        length = self.varint()
        end = self._pos + length
        if end > len(self._data):
            raise ProtocolError("truncated payload blob")
        value = self._data[self._pos : end]
        self._pos = end
        return value

    def take(self, length: int) -> bytes:
        """Read exactly ``length`` raw bytes (fixed-width fields)."""
        end = self._pos + length
        if end > len(self._data):
            raise ProtocolError("truncated fixed-width field")
        value = self._data[self._pos : end]
        self._pos = end
        return value

    def text(self) -> str:
        return self.blob().decode("utf-8")

    def expect_end(self) -> None:
        if self._pos != len(self._data):
            raise ProtocolError("trailing bytes in payload")


# -- key generation -----------------------------------------------------------


@dataclass
class KeyGenRequest:
    """A batch of per-chunk short-hash vectors."""

    hash_vectors: List[List[int]] = field(default_factory=list)

    def encode(self) -> bytes:
        w = _Writer().varint(len(self.hash_vectors))
        for vector in self.hash_vectors:
            w.varint(len(vector))
            for h in vector:
                w.varint(h)
        return w.done()

    @classmethod
    def decode(cls, payload: bytes) -> "KeyGenRequest":
        r = _Reader(payload)
        count = r.varint()
        vectors = []
        for _ in range(count):
            rows = r.varint()
            vectors.append([r.varint() for _ in range(rows)])
        r.expect_end()
        return cls(hash_vectors=vectors)


@dataclass
class KeyGenResponse:
    """Key seeds for a batch, plus the key manager's current ``t``."""

    seeds: List[bytes] = field(default_factory=list)
    current_t: int = 1

    def encode(self) -> bytes:
        w = _Writer().varint(len(self.seeds))
        for seed in self.seeds:
            w.blob(seed)
        w.varint(self.current_t)
        return w.done()

    @classmethod
    def decode(cls, payload: bytes) -> "KeyGenResponse":
        r = _Reader(payload)
        count = r.varint()
        seeds = [r.blob() for _ in range(count)]
        t = r.varint()
        r.expect_end()
        return cls(seeds=seeds, current_t=t)


@dataclass
class BatchedKeyGenRequest:
    """A sequenced keygen batch from the pipelined client path.

    The ``sequence`` number identifies this batch's position in the
    client's keygen stream (0, 1, 2, ... per upload). The key manager
    rejects regressions — a batch arriving after a later one has already
    been served — because sketch frequencies accumulate in arrival order;
    retries of the *same* sequence are accepted (replay only re-updates
    the sketch, the fail-safe direction). Sequence 0 starts a new stream.
    """

    sequence: int = 0
    hash_vectors: List[List[int]] = field(default_factory=list)

    def encode(self) -> bytes:
        w = _Writer().varint(self.sequence)
        w.varint(len(self.hash_vectors))
        for vector in self.hash_vectors:
            w.varint(len(vector))
            for h in vector:
                w.varint(h)
        return w.done()

    @classmethod
    def decode(cls, payload: bytes) -> "BatchedKeyGenRequest":
        r = _Reader(payload)
        sequence = r.varint()
        count = r.varint()
        vectors = []
        for _ in range(count):
            rows = r.varint()
            vectors.append([r.varint() for _ in range(rows)])
        r.expect_end()
        return cls(sequence=sequence, hash_vectors=vectors)


@dataclass
class BatchedKeyGenResponse:
    """Seeds for a sequenced batch; echoes the request's sequence number.

    The echoed sequence lets the client detect a desynchronized stream
    (a reply paired with the wrong request) as a :class:`ProtocolError`
    instead of silently deriving keys from the wrong seeds.
    """

    sequence: int = 0
    seeds: List[bytes] = field(default_factory=list)
    current_t: int = 1

    def encode(self) -> bytes:
        w = _Writer().varint(self.sequence).varint(len(self.seeds))
        for seed in self.seeds:
            w.blob(seed)
        w.varint(self.current_t)
        return w.done()

    @classmethod
    def decode(cls, payload: bytes) -> "BatchedKeyGenResponse":
        r = _Reader(payload)
        sequence = r.varint()
        count = r.varint()
        seeds = [r.blob() for _ in range(count)]
        t = r.varint()
        r.expect_end()
        return cls(sequence=sequence, seeds=seeds, current_t=t)


# -- chunk upload/download ---------------------------------------------------


@dataclass
class PutChunks:
    """A batch of (fingerprint, ciphertext chunk) pairs to store."""

    chunks: List[Tuple[bytes, bytes]] = field(default_factory=list)

    def encode(self) -> bytes:
        w = _Writer().varint(len(self.chunks))
        for fingerprint, data in self.chunks:
            w.blob(fingerprint).blob(data)
        return w.done()

    @classmethod
    def decode(cls, payload: bytes) -> "PutChunks":
        r = _Reader(payload)
        count = r.varint()
        chunks = [(r.blob(), r.blob()) for _ in range(count)]
        r.expect_end()
        return cls(chunks=chunks)


@dataclass
class PutChunksResponse:
    """Dedup outcome of a chunk batch."""

    stored: int = 0
    duplicates: int = 0

    def encode(self) -> bytes:
        return _Writer().varint(self.stored).varint(self.duplicates).done()

    @classmethod
    def decode(cls, payload: bytes) -> "PutChunksResponse":
        r = _Reader(payload)
        stored = r.varint()
        duplicates = r.varint()
        r.expect_end()
        return cls(stored=stored, duplicates=duplicates)


@dataclass
class GetChunks:
    """Fingerprints of chunks to fetch (download path)."""

    fingerprints: List[bytes] = field(default_factory=list)

    def encode(self) -> bytes:
        w = _Writer().varint(len(self.fingerprints))
        for fingerprint in self.fingerprints:
            w.blob(fingerprint)
        return w.done()

    @classmethod
    def decode(cls, payload: bytes) -> "GetChunks":
        r = _Reader(payload)
        count = r.varint()
        fps = [r.blob() for _ in range(count)]
        r.expect_end()
        return cls(fingerprints=fps)


@dataclass
class Chunks:
    """Chunk payloads, in request order."""

    chunks: List[bytes] = field(default_factory=list)

    def encode(self) -> bytes:
        w = _Writer().varint(len(self.chunks))
        for data in self.chunks:
            w.blob(data)
        return w.done()

    @classmethod
    def decode(cls, payload: bytes) -> "Chunks":
        r = _Reader(payload)
        count = r.varint()
        chunks = [r.blob() for _ in range(count)]
        r.expect_end()
        return cls(chunks=chunks)


# -- recipes --------------------------------------------------------------------


@dataclass
class PutRecipes:
    """Sealed file + key recipes for an uploaded file."""

    file_name: str = ""
    sealed_file_recipe: bytes = b""
    sealed_key_recipe: bytes = b""

    def encode(self) -> bytes:
        return (
            _Writer()
            .text(self.file_name)
            .blob(self.sealed_file_recipe)
            .blob(self.sealed_key_recipe)
            .done()
        )

    @classmethod
    def decode(cls, payload: bytes) -> "PutRecipes":
        r = _Reader(payload)
        name = r.text()
        file_recipe = r.blob()
        key_recipe = r.blob()
        r.expect_end()
        return cls(name, file_recipe, key_recipe)


@dataclass
class GetRecipes:
    """Request the sealed recipes for a file."""

    file_name: str = ""

    def encode(self) -> bytes:
        return _Writer().text(self.file_name).done()

    @classmethod
    def decode(cls, payload: bytes) -> "GetRecipes":
        r = _Reader(payload)
        name = r.text()
        r.expect_end()
        return cls(file_name=name)


# -- tenant handshake ---------------------------------------------------------


@dataclass
class Hello:
    """Bind this connection to a tenant namespace (DESIGN.md §13).

    Sent once per connection, before any other request. ``auth_token``
    is checked against the provider's configured per-tenant tokens (an
    empty token is valid for tenants with no token configured).
    """

    tenant: str = ""
    auth_token: bytes = b""

    def encode(self) -> bytes:
        return _Writer().text(self.tenant).blob(self.auth_token).done()

    @classmethod
    def decode(cls, payload: bytes) -> "Hello":
        r = _Reader(payload)
        tenant = r.text()
        token = r.blob()
        r.expect_end()
        return cls(tenant=tenant, auth_token=token)


@dataclass
class HelloOk:
    """Handshake acknowledgement: echoes the tenant, states the policy.

    ``cross_user_dedup`` tells the client whether its uploads may
    deduplicate against other tenants' chunks — the confidentiality
    trade-off the server operator chose (DESIGN.md §13).
    """

    tenant: str = ""
    cross_user_dedup: bool = False

    def encode(self) -> bytes:
        return (
            _Writer()
            .text(self.tenant)
            .varint(1 if self.cross_user_dedup else 0)
            .done()
        )

    @classmethod
    def decode(cls, payload: bytes) -> "HelloOk":
        r = _Reader(payload)
        tenant = r.text()
        flag = r.varint()
        r.expect_end()
        return cls(tenant=tenant, cross_user_dedup=bool(flag))


@dataclass
class Pong:
    """Heartbeat reply: who answered and which ring epoch it serves.

    ``shard`` is ``-1`` for unsharded services (the HELLO-era single
    provider/KM), so a probe can tell "wrong process on this port"
    from "shard came back".
    """

    role: str = ""
    shard: int = -1
    epoch: int = 0

    def encode(self) -> bytes:
        # shard is offset by one so -1 (unsharded) fits in a uvarint.
        return (
            _Writer()
            .text(self.role)
            .varint(self.shard + 1)
            .varint(self.epoch)
            .done()
        )

    @classmethod
    def decode(cls, payload: bytes) -> "Pong":
        r = _Reader(payload)
        role = r.text()
        shard = r.varint() - 1
        epoch = r.varint()
        r.expect_end()
        return cls(role=role, shard=shard, epoch=epoch)


@dataclass
class ShardObserveRequest:
    """One shard's slice of a sequenced keygen batch (front → observer).

    ``client_id``/``sequence`` name the *front's* position in the
    client's keygen stream; the observer logs them with the sub-batch
    so a replay after a crash (same identity, same vectors) re-updates
    the durable sketch idempotently, exactly like the in-process
    shard stores (DESIGN.md §15).
    """

    client_id: str = ""
    sequence: int = 0
    hash_vectors: List[List[int]] = field(default_factory=list)

    def encode(self) -> bytes:
        w = _Writer().text(self.client_id).varint(self.sequence)
        w.varint(len(self.hash_vectors))
        for vector in self.hash_vectors:
            w.varint(len(vector))
            for h in vector:
                w.varint(h)
        return w.done()

    @classmethod
    def decode(cls, payload: bytes) -> "ShardObserveRequest":
        r = _Reader(payload)
        client_id = r.text()
        sequence = r.varint()
        count = r.varint()
        vectors = []
        for _ in range(count):
            rows = r.varint()
            vectors.append([r.varint() for _ in range(rows)])
        r.expect_end()
        return cls(
            client_id=client_id, sequence=sequence, hash_vectors=vectors
        )


@dataclass
class ShardObserveResponse:
    """Per-chunk frequency estimates for one observed sub-batch."""

    estimates: List[int] = field(default_factory=list)

    def encode(self) -> bytes:
        w = _Writer().varint(len(self.estimates))
        for estimate in self.estimates:
            w.varint(estimate)
        return w.done()

    @classmethod
    def decode(cls, payload: bytes) -> "ShardObserveResponse":
        r = _Reader(payload)
        count = r.varint()
        estimates = [r.varint() for _ in range(count)]
        r.expect_end()
        return cls(estimates=estimates)


# -- typed not-found ----------------------------------------------------------

#: ``MSG_NOT_FOUND`` kinds: what class of name failed to resolve.
NOT_FOUND_FILE = 0
NOT_FOUND_CHUNK = 1


def encode_not_found(kind: int, message: str) -> bytes:
    """Payload for MSG_NOT_FOUND: a kind tag plus a human message."""
    return _Writer().varint(kind).text(message).done()


def decode_not_found(payload: bytes) -> Tuple[int, str]:
    """Inverse of :func:`encode_not_found`."""
    r = _Reader(payload)
    kind = r.varint()
    message = r.text()
    r.expect_end()
    return kind, message


# -- misc ------------------------------------------------------------------------


def encode_error(message: str) -> bytes:
    """Payload for MSG_ERROR."""
    return _Writer().text(message).done()


def decode_error(payload: bytes) -> str:
    """Inverse of :func:`encode_error`."""
    r = _Reader(payload)
    message = r.text()
    r.expect_end()
    return message


_STATS_INT = 0
_STATS_FLOAT = 1


def encode_stats(
    pairs: Sequence[Tuple[str, Union[int, float]]]
) -> bytes:
    """Payload for MSG_STATS_RESPONSE: ordered (name, value) metrics.

    Each value is tagged: non-negative integers travel as varints, and
    everything else (histogram quantiles, ratios, negative values) as an
    IEEE-754 double — so registry snapshots round-trip exactly.
    """
    w = _Writer().varint(len(pairs))
    for name, value in pairs:
        w.text(name)
        if isinstance(value, int) and not isinstance(value, bool) and value >= 0:
            w.varint(_STATS_INT).varint(value)
        else:
            w.varint(_STATS_FLOAT)
            w.raw(_F64.pack(float(value)))
    return w.done()


def decode_stats(payload: bytes) -> List[Tuple[str, Union[int, float]]]:
    """Inverse of :func:`encode_stats`.

    Integer-tagged values decode as ``int``, float-tagged as ``float``.

    Raises:
        ProtocolError: on truncated payloads or unknown value tags.
    """
    r = _Reader(payload)
    count = r.varint()
    pairs: List[Tuple[str, Union[int, float]]] = []
    for _ in range(count):
        name = r.text()
        tag = r.varint()
        if tag == _STATS_INT:
            pairs.append((name, r.varint()))
        elif tag == _STATS_FLOAT:
            (value,) = _F64.unpack(r.take(_F64.size))
            pairs.append((name, value))
        else:
            raise ProtocolError(f"unknown stats value tag {tag}")
    r.expect_end()
    return pairs
