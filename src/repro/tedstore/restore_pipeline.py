"""Pipelined, multi-worker client download/restore path (DESIGN.md §11).

The serial download loop alternates a ``GetChunks`` round trip with a
decrypt pass: the wire sits idle while the CPU decrypts, and the CPU sits
idle during every round trip — the exact mirror of the serial upload path
that :mod:`repro.tedstore.pipeline` replaced. This module overlaps the
two with a bounded-queue read pipeline:

* **prefetch** — the caller's thread walks the file recipe in the same
  ``batch_size`` slices as the serial path, requests each batch's
  ciphertexts with one ``GetChunks`` round trip, and fans decrypt jobs
  out to the workers through a depth-bounded queue. While the workers
  chew on batch *i*, the prefetcher is already waiting on batch *i+1*'s
  round trip — network latency hides behind decryption.
* **alias suppression** — repeated fingerprints within one restore (the
  norm on deduplicated data) are fetched *and* decrypted only once.
  The prefetcher tracks every ``(cipher_fp, key)`` pair dispatched this
  run; repeats become aliases whose plaintext is copied from the first
  occurrence's decrypt memo after the workers drain. Keying the memo on
  the pair — not the fingerprint alone — means aliasing can never
  change output, even if two keys ever mapped to one ciphertext.
* **decrypt workers** — ``workers`` threads decrypt first-occurrence
  jobs, verify each plaintext against the recipe size, and write
  results straight into their recipe-order slot; joining the workers is
  the re-sequencing barrier, so no resequencer thread is needed.

Every ``GetChunks`` reply is length-checked against its request — a
short reply raises ``ValueError`` instead of silently truncating the
restored file (the pre-pipeline serial path zipped the two silently).

Failure in any stage latches the shared failure box from
:mod:`repro.tedstore.pipeline`; all queue waits poll it, the caller
re-raises the first error as a :class:`PipelineError`, and a dead worker
can never deadlock the restore.

Output is byte-identical to the serial path by construction; the
differential harness proves it for MLE/BTED/FTED, metadata-dedup
layouts, and under injected faults
(``tests/integration/test_restore_differential.py``).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics as obs_metrics, tracing
from repro.tedstore.pipeline import (
    PipelineError,
    _Aborted,
    _Failure,
    _FEED_END,
    _MeteredQueue,
    _PIPELINE_CHUNKS,
    _STAGE_SECONDS,
    _WORKERS_BUSY,
)
from repro.utils.timer import StageTimer

_REGISTRY = obs_metrics.get_registry()

#: One decrypt job: (recipe index, ciphertext fingerprint, chunk key,
#: expected plaintext size).
_Job = Tuple[int, bytes, bytes, int]


def _pair(cipher_fp: bytes, key: bytes) -> bytes:
    """Memo key for one (ciphertext fingerprint, chunk key) pair."""
    return cipher_fp + b"\x00" + key


class PipelinedDownloader:
    """One pipelined restore execution (single use).

    Args:
        client: the owning :class:`~repro.tedstore.client.TedStoreClient`
            — supplies the provider transport, cipher profile, batch
            size, worker count, and pipeline depth.
    """

    def __init__(self, client) -> None:
        self.client = client
        self.workers = max(1, client.workers)
        depth = max(1, client.pipeline_depth)
        self.failure = _Failure()
        # Up to ``depth`` fetched batches may be in flight as decrypt
        # jobs (each batch fans out into at most ``workers`` jobs), so
        # memory stays proportional to depth, never file size.
        self.decrypt_q = _MeteredQueue(
            "decrypt", depth * self.workers, self.failure
        )
        # Ciphertexts fetched this run, keyed by ciphertext fingerprint;
        # filled by the prefetcher *before* any job referencing them is
        # queued, so workers read without locking.
        self._ciphertexts: Dict[bytes, bytes] = {}
        # (cipher_fp, key) -> plaintext, written by the workers; aliases
        # are resolved from it after the join barrier.
        self._memo: Dict[bytes, bytes] = {}
        self._alias_jobs: List[_Job] = []
        self._pieces: List[Optional[bytes]] = []
        self._count_lock = threading.Lock()
        # Counters (exposed for tests and the restore benchmark).
        self.fetched = 0  # unique ciphertexts fetched from the provider
        self.aliases = 0  # repeats served from the decrypt memo
        self.decrypted = 0  # ciphertexts actually decrypted

    # -- stage bodies ---------------------------------------------------------

    def _run_guarded(self, body) -> None:
        try:
            body()
        except _Aborted:
            pass
        except BaseException as exc:  # latch the first real failure
            self.failure.set(exc)

    def _prefetch(
        self,
        entries: Sequence[Tuple[bytes, int]],
        keys: Sequence[bytes],
    ) -> None:
        """Caller-thread stage: fetch batches, fan out decrypt jobs."""
        client = self.client
        timer = client.timer
        dispatched: set = set()
        for start in range(0, len(entries), client.batch_size):
            batch_entries = entries[start : start + client.batch_size]
            batch_keys = keys[start : start + client.batch_size]
            jobs: List[_Job] = []
            want: List[bytes] = []
            want_set: set = set()
            alias_count = 0
            for offset, ((fp, size), key) in enumerate(
                zip(batch_entries, batch_keys)
            ):
                index = start + offset
                pair = _pair(fp, key)
                if pair in dispatched:
                    # In-flight alias: same (fingerprint, key) dispatched
                    # earlier this restore — neither fetched nor
                    # decrypted again; resolved from the memo after the
                    # workers drain.
                    alias_count += 1
                    self._alias_jobs.append((index, fp, key, size))
                    continue
                dispatched.add(pair)
                if fp not in self._ciphertexts and fp not in want_set:
                    want_set.add(fp)
                    want.append(fp)
                jobs.append((index, fp, key, size))
            if alias_count:
                _PIPELINE_CHUNKS.labels(path="restore_alias").inc(
                    alias_count
                )
            if want:
                with timer.stage("chunk fetch"), _STAGE_SECONDS.labels(
                    stage="fetch_rtt"
                ).time():
                    chunks = client._get_chunks_checked(want)
                for fp, ciphertext in zip(want, chunks):
                    self._ciphertexts[fp] = ciphertext
                self.fetched += len(want)
                _PIPELINE_CHUNKS.labels(path="fetched").inc(len(want))
            # Fan out in contiguous slices; slot indices restore global
            # order, so workers need no coordination beyond the queue.
            if jobs:
                job_size = max(32, -(-len(jobs) // self.workers))
                for s in range(0, len(jobs), job_size):
                    self.decrypt_q.put(jobs[s : s + job_size])

    def _decrypt_worker(self, timer: StageTimer) -> None:
        """Decrypt first-occurrence jobs into their recipe-order slots."""
        profile = self.client.profile
        while True:
            job = self.decrypt_q.get()
            if job is _FEED_END:
                return
            with timer.stage("decryption"), _WORKERS_BUSY.track(), \
                    _STAGE_SECONDS.labels(stage="decrypt_job").time():
                for index, fp, key, size in job:
                    plaintext = profile.decrypt(
                        key, self._ciphertexts[fp]
                    )
                    if len(plaintext) != size:
                        raise ValueError(
                            f"chunk {fp.hex()} decrypted to "
                            f"{len(plaintext)} bytes, expected {size}"
                        )
                    self._memo[_pair(fp, key)] = plaintext
                    self._pieces[index] = plaintext
            _PIPELINE_CHUNKS.labels(path="decrypted").inc(len(job))
            with self._count_lock:
                self.decrypted += len(job)

    # -- orchestration --------------------------------------------------------

    def run(
        self,
        file_name: str,
        entries: Sequence[Tuple[bytes, int]],
        keys: Sequence[bytes],
    ) -> bytes:
        """Restore one file's plaintext (or raise on first failure).

        The caller's thread acts as the prefetch stage. ``entries`` and
        ``keys`` come from the already-unsealed file/key recipes and
        must agree on length (the client validates before calling).
        """
        self._pieces = [None] * len(entries)
        worker_timers = [StageTimer() for _ in range(self.workers)]
        threads = [
            threading.Thread(
                target=self._run_guarded,
                args=(lambda t=timer: self._decrypt_worker(t),),
                name=f"ted-pipeline-decrypt-{i}",
                daemon=True,
            )
            for i, timer in enumerate(worker_timers)
        ]
        with tracing.get_tracer().span(
            "client.restore_pipeline",
            attributes={"workers": self.workers, "file": file_name},
        ):
            for thread in threads:
                thread.start()
            try:
                self._run_guarded(
                    lambda: self._prefetch(entries, keys)
                )
            finally:
                try:
                    for _ in range(self.workers):
                        self.decrypt_q.put(_FEED_END)
                except _Aborted:
                    pass  # failure latched; workers unwind on their own
                for thread in threads:
                    thread.join()
        for timer in worker_timers:
            self.client.timer.merge(timer)
        if self.failure.exc is not None:
            raise PipelineError(
                f"pipelined download of {file_name!r} failed: "
                f"{self.failure.exc}"
            ) from self.failure.exc
        # Aliases resolve after the join barrier: every first occurrence
        # has been decrypted and memoized by now.
        for index, fp, key, size in self._alias_jobs:
            plaintext = self._memo.get(_pair(fp, key))
            if plaintext is None:
                raise RuntimeError(
                    f"restore pipeline lost the first occurrence of "
                    f"chunk {fp.hex()}"
                )
            if len(plaintext) != size:
                raise ValueError(
                    f"chunk {fp.hex()} decrypted to {len(plaintext)} "
                    f"bytes, expected {size}"
                )
            self._pieces[index] = plaintext
            self.aliases += 1
        missing = sum(1 for piece in self._pieces if piece is None)
        if missing:
            raise RuntimeError(
                f"restore pipeline lost chunks: {missing} slots empty"
            )
        return b"".join(self._pieces)  # type: ignore[arg-type]
