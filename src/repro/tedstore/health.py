"""Per-shard health layer: circuit breakers and heartbeat probing.

A multi-process deployment (DESIGN.md §17) turns each shard into an
independent failure domain. This module is the client-side armor around
each per-shard route:

* :class:`CircuitBreaker` — classic closed → open → half-open machine.
  It composes *above* :class:`~repro.tedstore.retry.RetryPolicy`: the
  retry policy absorbs transient blips within one call, and only a
  call that fails *after* its retries counts as a breaker failure.
  After ``failure_threshold`` consecutive failed calls the breaker
  opens and every further call fails fast with
  :class:`ShardUnavailableError` — no socket is touched, so a dead or
  paused shard costs microseconds instead of an ``io_timeout`` per
  batch. After ``reset_timeout`` seconds the breaker admits a single
  half-open probe; success closes it, failure re-opens it.

* :class:`ShardHealthMonitor` — a daemon thread that probes every
  shard on a cadence (callers supply the probe, typically a wire
  ``PING``). Probe outcomes feed the breakers, so a restarted shard
  rejoins within one heartbeat interval even with no client traffic
  to trip the half-open path.

Instruments (all labelled ``side`` = ``km`` | ``provider``, ``shard``):

* ``ted_shard_health`` — 1 healthy / 0 unhealthy, from the last probe
  or call outcome.
* ``ted_breaker_state`` — 0 closed / 1 half-open / 2 open.
* ``ted_shard_failover_total`` — breaker transitions, labelled
  ``event`` = ``open`` (shard left service) | ``rejoin`` (probe or
  trial call brought it back).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Iterable, Optional

from repro.obs import metrics as obs_metrics

_REGISTRY = obs_metrics.get_registry()
_SHARD_HEALTH = _REGISTRY.gauge(
    "ted_shard_health",
    "Last known shard health (1 healthy, 0 unhealthy)",
    labelnames=("side", "shard"),
)
_BREAKER_STATE = _REGISTRY.gauge(
    "ted_breaker_state",
    "Per-shard circuit breaker state (0 closed, 1 half-open, 2 open)",
    labelnames=("side", "shard"),
)
_FAILOVER = _REGISTRY.counter(
    "ted_shard_failover_total",
    "Shard failure-domain transitions (breaker opened / shard rejoined)",
    labelnames=("side", "shard", "event"),
)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class ShardUnavailableError(ConnectionError):
    """A shard's circuit breaker is open — the call was not attempted.

    Raised client-side, before any bytes hit the wire, so a dead shard
    fails a batch in microseconds instead of hanging the pipeline for
    an io-timeout. Carries enough context for callers (and operators
    reading logs) to know *which* failure domain is out.
    """

    def __init__(self, side: str, shard: int, reason: str) -> None:
        super().__init__(
            f"{side} shard {shard} unavailable: {reason}"
        )
        self.side = side
        self.shard = int(shard)
        self.reason = reason


class CircuitBreaker:
    """Closed → open → half-open breaker for one shard route.

    Args:
        side: ``km`` or ``provider`` (metric label).
        shard: shard id (metric label).
        failure_threshold: consecutive call failures that open it.
        reset_timeout: seconds an open breaker waits before admitting
            one half-open trial call.
        clock: injectable time source for deterministic tests.

    Thread-safe; the half-open state admits exactly one in-flight
    trial at a time (others fail fast until the trial resolves).
    """

    def __init__(
        self,
        side: str,
        shard: int,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout cannot be negative")
        self.side = side
        self.shard = int(shard)
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._trial_inflight = False
        self._publish(CLOSED)

    # -- state -------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._peek_locked()

    def _peek_locked(self) -> str:
        """Current state, promoting open → half-open on timeout expiry."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = HALF_OPEN
            self._trial_inflight = False
            self._publish(HALF_OPEN)
        return self._state

    def _publish(self, state: str) -> None:
        _BREAKER_STATE.labels(
            side=self.side, shard=str(self.shard)
        ).set(_STATE_CODES[state])
        _SHARD_HEALTH.labels(side=self.side, shard=str(self.shard)).set(
            1 if state == CLOSED else 0
        )

    # -- admission ---------------------------------------------------------

    def admit(self) -> None:
        """Gate one call; raises :class:`ShardUnavailableError` if open.

        In half-open, exactly one caller is admitted as the trial; the
        trial's :meth:`record_success` / :meth:`record_failure` decides
        whether the breaker closes or re-opens.
        """
        with self._lock:
            state = self._peek_locked()
            if state == CLOSED:
                return
            if state == HALF_OPEN and not self._trial_inflight:
                self._trial_inflight = True
                return
            reason = self._fail_fast_reason_locked(state)
        raise ShardUnavailableError(self.side, self.shard, reason)

    def _fail_fast_reason_locked(self, state: str) -> str:
        if state == OPEN:
            retry_in = max(
                0.0,
                self.reset_timeout - (self._clock() - self._opened_at),
            )
            return f"circuit breaker open (retry in {retry_in:.2f}s)"
        return "circuit breaker half-open (trial in flight)"

    def check(self) -> None:
        """Raise iff a call admitted *now* would fail fast; consumes nothing.

        Batch pre-admission uses this: it must prove every target shard
        admittable before any sub-batch is sent, without claiming the
        half-open trial slot the actual call (whose :meth:`admit` runs
        next) still needs — taking it here would wedge the trial
        in-flight forever and lock a recovering shard out of traffic.
        """
        with self._lock:
            state = self._peek_locked()
            if state == CLOSED:
                return
            if state == HALF_OPEN and not self._trial_inflight:
                return
            reason = self._fail_fast_reason_locked(state)
        raise ShardUnavailableError(self.side, self.shard, reason)

    def record_success(self) -> None:
        """A call (or probe) succeeded: close from any state."""
        with self._lock:
            rejoined = self._state != CLOSED
            self._state = CLOSED
            self._consecutive_failures = 0
            self._trial_inflight = False
            self._publish(CLOSED)
        if rejoined:
            _FAILOVER.labels(
                side=self.side, shard=str(self.shard), event="rejoin"
            ).inc()

    def record_failure(self) -> None:
        """A call (or probe) failed after its own retries."""
        with self._lock:
            state = self._peek_locked()
            self._consecutive_failures += 1
            opened = False
            if state == HALF_OPEN or (
                state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self._trial_inflight = False
                self._publish(OPEN)
                opened = True
        if opened:
            _FAILOVER.labels(
                side=self.side, shard=str(self.shard), event="open"
            ).inc()


class ShardHealthMonitor:
    """Background heartbeat loop feeding a set of breakers.

    Args:
        probes: ``shard id -> probe callable``; a probe returns on
            success and raises on failure. Probes should be cheap and
            bounded (a single PING with a short socket timeout) —
            they run serially per tick.
        breakers: ``shard id -> CircuitBreaker`` receiving outcomes.
        interval: seconds between probe rounds.

    The monitor is deliberately dumb: it does not own connections or
    reconnect logic, it just asks and reports. A shard that restarts
    rejoins within one interval because its probe starts succeeding
    and :meth:`CircuitBreaker.record_success` closes the breaker.
    """

    def __init__(
        self,
        probes: Dict[int, Callable[[], None]],
        breakers: Dict[int, CircuitBreaker],
        interval: float = 1.0,
    ) -> None:
        if set(probes) != set(breakers):
            raise ValueError("probes and breakers must cover the same shards")
        self._probes = dict(probes)
        self._breakers = dict(breakers)
        self.interval = float(interval)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ShardHealthMonitor":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="shard-health", daemon=True
        )
        self._thread.start()
        return self

    def run_once(self) -> Dict[int, bool]:
        """One probe round; returns ``shard -> healthy``. Test hook."""
        results: Dict[int, bool] = {}
        for shard in sorted(self._probes):
            breaker = self._breakers[shard]
            # Every shard is probed every round — an idle deployment
            # still notices a silent death, and a single blip against a
            # closed breaker cannot open it (the failure threshold
            # requires consecutive failures).
            try:
                self._probes[shard]()
            except Exception:
                breaker.record_failure()
                results[shard] = False
            else:
                breaker.record_success()
                results[shard] = True
        return results

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.run_once()
            except Exception:  # pragma: no cover - defensive
                pass  # a probe round must never kill the monitor

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)


def healthy_shards(breakers: Iterable[CircuitBreaker]) -> Dict[int, bool]:
    """Snapshot ``shard -> is the breaker closed`` for status surfaces."""
    return {b.shard: b.state == CLOSED for b in breakers}


__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "ShardHealthMonitor",
    "ShardUnavailableError",
    "healthy_shards",
]
