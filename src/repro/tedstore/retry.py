"""Retry policies for the TEDStore wire path.

A failed TCP ``call()`` leaves the connection desynchronized — a late reply
would be misread as the answer to the *next* request — so every transport
error forces a reconnect, and idempotent requests are then retried under a
:class:`RetryPolicy`: capped exponential backoff with jitter, a bounded
number of attempts, and a per-call deadline. The clock, sleep, and jitter
RNG are all injectable so tests drive the policy deterministically without
real time passing.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional


class DeadlineExceeded(TimeoutError):
    """A call (including its retries) overran its deadline."""


class RetriesExhausted(ConnectionError):
    """A call failed on every permitted attempt."""


@dataclass
class RetryPolicy:
    """How a failed idempotent call is retried.

    Args:
        max_attempts: total tries, including the first (1 = no retries).
        base_delay: backoff before the first retry, in seconds.
        multiplier: backoff growth factor per retry.
        max_delay: backoff ceiling, in seconds.
        jitter: fractional jitter applied to each delay — a delay ``d``
            becomes uniform in ``[d * (1 - jitter), d * (1 + jitter)]``.
        deadline: wall-clock budget for the whole call, retries included;
            ``None`` disables the deadline.
        clock / sleep / rng: injectable time source, sleeper, and jitter
            randomness for deterministic tests.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    deadline: Optional[float] = 30.0
    clock: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep
    rng: Optional[random.Random] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays cannot be negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")

    def backoff_delay(self, failures: int) -> float:
        """Delay before the next attempt after ``failures`` failures (>= 1)."""
        if failures < 1:
            raise ValueError("failures must be >= 1")
        delay = min(
            self.max_delay,
            self.base_delay * self.multiplier ** (failures - 1),
        )
        if self.jitter:
            r = self.rng.random() if self.rng is not None else random.random()
            delay *= 1.0 + self.jitter * (2.0 * r - 1.0)
        return max(0.0, delay)

    def start_call(self) -> "RetryState":
        """Begin tracking one logical call against this policy."""
        return RetryState(self)


class RetryState:
    """Per-call retry bookkeeping: attempt count and deadline."""

    def __init__(self, policy: RetryPolicy) -> None:
        self.policy = policy
        self.failures = 0
        self._started = policy.clock()

    def remaining(self) -> Optional[float]:
        """Seconds left before the deadline, or ``None`` if unbounded."""
        if self.policy.deadline is None:
            return None
        return self.policy.deadline - (self.policy.clock() - self._started)

    def admit_failure(self, exc: BaseException) -> float:
        """Record a failure; return the backoff delay before the retry.

        When the remaining deadline is shorter than the next backoff,
        the sleep is clamped to the remainder so the final attempt still
        happens *inside* the budget instead of the call overshooting it
        (or giving up with budget left on the table).

        Raises:
            RetriesExhausted: all attempts used.
            DeadlineExceeded: the deadline has already elapsed.
        """
        self.failures += 1
        if self.failures >= self.policy.max_attempts:
            raise RetriesExhausted(
                f"call failed after {self.failures} attempts: {exc}"
            ) from exc
        delay = self.policy.backoff_delay(self.failures)
        remaining = self.remaining()
        if remaining is not None:
            if remaining <= 0:
                raise DeadlineExceeded(
                    f"deadline of {self.policy.deadline:.3f}s exceeded "
                    f"after {self.failures} attempts: {exc}"
                ) from exc
            delay = min(delay, remaining)
        return delay

    def pause(self, delay: float) -> None:
        """Sleep through the backoff using the policy's sleeper."""
        if delay > 0:
            self.policy.sleep(delay)


def retry_call(
    fn: Callable[[], object],
    policy: RetryPolicy,
    retryable: tuple = (ConnectionError, TimeoutError, OSError),
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
):
    """Run ``fn`` under ``policy``, retrying on ``retryable`` exceptions.

    ``on_retry(failures, exc, delay)`` fires before each backoff sleep —
    transports use it to count retries and reconnect.
    """
    state = policy.start_call()
    while True:
        try:
            return fn()
        except retryable as exc:
            delay = state.admit_failure(exc)
            if on_retry is not None:
                on_retry(state.failures, exc, delay)
            state.pause(delay)
