"""Multi-process shard deployment: per-shard routes with failure domains.

DESIGN.md §17. A fleet is N ``repro serve-shard`` processes — provider
leaves over ``<root>/shards/<k>/`` and KM sketch observers over
``<km_root>/shards/<k>/`` — named by the ring's endpoint map. This
module is the client side: every shard gets its own **route**, a lazy
per-shard transport wrapped in a :class:`~repro.tedstore.health.\
CircuitBreaker` and fed by a heartbeat monitor, so one dead shard is
one open breaker, not a hung pipeline.

Semantics under failure (graceful degradation):

* Operations touching only healthy shards proceed normally.
* An operation routed at an open breaker fails **fast** with
  :class:`~repro.tedstore.health.ShardUnavailableError` — for
  multi-shard batches the admission check runs for *every* target
  shard before any bytes are sent, so a batch that cannot fully land
  does not scatter sub-batches at healthy shards first.
* A mid-flight failure (breaker was closed, shard died under the
  call) surfaces the same typed error after the per-shard retry
  policy is exhausted. Per-shard acks keep such a batch shard-local:
  the sub-batches that did land are idempotent puts a retry replays
  byte-identically (the provider dedups, the observer's durable log
  replays by batch id), which the differential chaos gate pins.
* A restarted shard recovers its state through the §12 crash-recovery
  path and rejoins on the first successful probe (or trial call).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.storage.dedup import RingEpochRegressionError
from repro.storage.sharded import ShardRouteMeter
from repro.tedstore import messages as m
from repro.tedstore.health import (
    CircuitBreaker,
    ShardHealthMonitor,
    ShardUnavailableError,
)
from repro.tedstore.network import (
    RemoteProvider,
    RemoteShardObserver,
    parse_endpoint,
    probe_endpoint,
)
from repro.tedstore.provider import DEFAULT_TENANT
from repro.tedstore.retry import RetryPolicy
from repro.tedstore.ring import HashRing

#: Wire failures that count against a shard's breaker. RuntimeError
#: (a served MSG_ERROR) and KeyError/FileNotFoundError (typed misses)
#: do NOT: the shard answered, so it is healthy — wrong is not down.
_ROUTE_FAILURES = (ConnectionError, TimeoutError, OSError, m.ProtocolError)


class ShardRoute:
    """One shard's guarded, lazily-connected transport.

    The transport is built on first use (and rebuilt after any wire
    failure), so a fleet client can be constructed while some shards
    are still starting — their breakers simply open until the first
    successful call or probe.
    """

    def __init__(
        self,
        side: str,
        shard_id: int,
        endpoint: str,
        factory: Callable[[Tuple[str, int]], object],
        breaker: CircuitBreaker,
        probe_timeout: float = 2.0,
    ) -> None:
        self.side = side
        self.shard_id = int(shard_id)
        self.endpoint = endpoint
        self.address = parse_endpoint(endpoint)
        self._factory = factory
        self.breaker = breaker
        self._probe_timeout = probe_timeout
        self._transport: Optional[object] = None
        self._lock = threading.Lock()

    def _get_transport(self):
        with self._lock:
            if self._transport is None:
                self._transport = self._factory(self.address)
            return self._transport

    def _drop_transport(self) -> None:
        with self._lock:
            transport, self._transport = self._transport, None
        if transport is not None:
            try:
                transport.close()
            except Exception:
                pass  # already broken; nothing to salvage

    def admit(self) -> None:
        """Fail fast if this shard's breaker is open.

        Non-consuming: batch pre-admission must not claim the half-open
        trial slot, or the slot would be wedged and the sub-batch that
        follows (whose :meth:`call` admits for real) would fail fast —
        locking a recovering shard out of exactly the traffic that
        would close its breaker.
        """
        self.breaker.check()

    def call(self, fn: Callable[[object], object]):
        """Run ``fn(transport)`` under the breaker.

        Wire failures (after the transport's own retry policy) open
        the path toward the breaker threshold and re-raise as
        :class:`ShardUnavailableError`; served errors pass through
        untouched (an answering shard is a healthy shard).
        """
        self.breaker.admit()
        try:
            result = fn(self._get_transport())
        except _ROUTE_FAILURES as exc:
            self.breaker.record_failure()
            self._drop_transport()
            raise ShardUnavailableError(
                self.side, self.shard_id, f"{type(exc).__name__}: {exc}"
            ) from exc
        self.breaker.record_success()
        return result

    def probe(self) -> m.Pong:
        """Heartbeat probe on a dedicated short-lived socket."""
        return probe_endpoint(self.address, timeout=self._probe_timeout)

    def close(self) -> None:
        self._drop_transport()


def build_routes(
    side: str,
    ring: HashRing,
    factory: Callable[[Tuple[str, int]], object],
    *,
    breaker_failures: int = 3,
    breaker_reset: float = 5.0,
    probe_timeout: float = 2.0,
    clock=None,
) -> Dict[int, ShardRoute]:
    """A guarded route per ring shard; requires a full endpoint map."""
    missing = [s for s in ring.shards if ring.endpoint_for(s) is None]
    if missing:
        raise ValueError(
            f"ring publishes no endpoint for shards {missing}; a "
            "multi-process deployment needs every shard mapped"
        )
    routes: Dict[int, ShardRoute] = {}
    for shard_id in ring.shards:
        kwargs = {}
        if clock is not None:
            kwargs["clock"] = clock
        breaker = CircuitBreaker(
            side,
            shard_id,
            failure_threshold=breaker_failures,
            reset_timeout=breaker_reset,
            **kwargs,
        )
        routes[shard_id] = ShardRoute(
            side,
            shard_id,
            ring.endpoint_for(shard_id),
            factory,
            breaker,
            probe_timeout=probe_timeout,
        )
    return routes


def start_monitor(
    routes: Dict[int, ShardRoute], interval: float
) -> Optional[ShardHealthMonitor]:
    """Start a heartbeat monitor over ``routes`` (``interval <= 0`` = off)."""
    if interval <= 0:
        return None
    monitor = ShardHealthMonitor(
        probes={s: r.probe for s, r in routes.items()},
        breakers={s: r.breaker for s, r in routes.items()},
        interval=interval,
    )
    return monitor.start()


class MultiShardProvider:
    """Provider transport over per-shard processes (DESIGN.md §17).

    Drop-in for :class:`~repro.tedstore.network.RemoteProvider` /
    :class:`~repro.tedstore.sharding.ShardRoutingProvider` from the
    client pipeline's point of view: same ``put_chunks`` /
    ``get_chunks`` / recipe / ``ring_epoch`` surface. Chunks route by
    cipher-fingerprint ring placement to the shard's own provider
    process; recipes route by file name over the same ring, so a
    file's recipes live in exactly one failure domain and survive the
    loss of every other shard.

    Args:
        ring: placement **with** a full endpoint map.
        tenant / auth_token: per-connection HELLO binding, handed to
            every shard's transport.
        retry_policy: per-shard transport retry policy (absorbs blips
            *within* one call; the breaker counts whole-call failures).
        data_connections: per-shard data-connection pool size.
        breaker_failures / breaker_reset: circuit-breaker tuning.
        heartbeat_interval: seconds between health probes; ``0``
            disables the monitor thread (tests drive probes manually).
        io_timeout / connect_timeout: per-shard socket budgets — the
            worst-case client stall on a silently-paused shard is one
            ``io_timeout`` per retry attempt until the breaker opens.
    """

    def __init__(
        self,
        ring: HashRing,
        *,
        tenant: str = DEFAULT_TENANT,
        auth_token: bytes = b"",
        retry_policy: Optional[RetryPolicy] = None,
        data_connections: int = 0,
        breaker_failures: int = 3,
        breaker_reset: float = 5.0,
        heartbeat_interval: float = 0.0,
        probe_timeout: float = 2.0,
        io_timeout: float = 60.0,
        connect_timeout: float = 10.0,
        propagate_trace: bool = True,
        transport_factory: Optional[Callable] = None,
        clock=None,
    ) -> None:
        self.ring = ring
        self.tenant = tenant or DEFAULT_TENANT

        def factory(address: Tuple[str, int]):
            return RemoteProvider(
                address,
                retry_policy=retry_policy,
                propagate_trace=propagate_trace,
                data_connections=data_connections,
                tenant=self.tenant,
                auth_token=auth_token,
                connect_timeout=connect_timeout,
                io_timeout=io_timeout,
            )

        self._routes = build_routes(
            "provider",
            ring,
            transport_factory or factory,
            breaker_failures=breaker_failures,
            breaker_reset=breaker_reset,
            probe_timeout=probe_timeout,
            clock=clock,
        )
        self._meter = ShardRouteMeter("client", ring.shards)
        self._monitor = start_monitor(self._routes, heartbeat_interval)

    # -- placement helpers -------------------------------------------------

    def _recipe_shard(self, file_name: str) -> int:
        # Recipes ride the same ring under a distinct key prefix so a
        # file's recipe placement is deterministic but uncorrelated
        # with any single chunk's placement.
        return self.ring.shard_for_key(b"recipe:" + file_name.encode("utf-8"))

    def ring_epoch(self) -> int:
        return self.ring.epoch

    def check_peer_epoch(self, pong: m.Pong) -> None:
        """Reject a shard serving an older ring than this client's.

        Raises :class:`~repro.storage.dedup.RingEpochRegressionError`
        — typed, and deliberately *not* a cache invalidation: the
        stale peer is wrong, not this client's view.
        """
        if pong.epoch < self.ring.epoch:
            raise RingEpochRegressionError(pong.epoch, self.ring.epoch)

    # -- provider surface --------------------------------------------------

    def put_chunks(self, request: m.PutChunks) -> m.PutChunksResponse:
        groups: Dict[int, List[Tuple[bytes, bytes]]] = {}
        for fingerprint, data in request.chunks:
            shard = self.ring.shard_for_key(fingerprint)
            groups.setdefault(shard, []).append((fingerprint, data))
        # Admission first, sends second: a batch that cannot fully land
        # (any target breaker open) fails before ANY sub-batch is sent,
        # so fail-fast never manufactures partial cross-shard state.
        for shard in sorted(groups):
            self._routes[shard].admit()
        stored = duplicates = 0
        for shard in sorted(groups):
            sub = groups[shard]
            self._meter.record(shard, len(sub))
            response = self._routes[shard].call(
                lambda t, sub=sub: t.put_chunks(m.PutChunks(chunks=sub))
            )
            stored += response.stored
            duplicates += response.duplicates
        return m.PutChunksResponse(stored=stored, duplicates=duplicates)

    def get_chunks(self, request: m.GetChunks) -> m.Chunks:
        groups: Dict[int, List[int]] = {}
        for position, fingerprint in enumerate(request.fingerprints):
            shard = self.ring.shard_for_key(fingerprint)
            groups.setdefault(shard, []).append(position)
        for shard in sorted(groups):
            self._routes[shard].admit()
        results: List[bytes] = [b""] * len(request.fingerprints)
        for shard in sorted(groups):
            positions = groups[shard]
            self._meter.record(shard, len(positions))
            response = self._routes[shard].call(
                lambda t, fps=[
                    request.fingerprints[p] for p in positions
                ]: t.get_chunks(m.GetChunks(fingerprints=fps))
            )
            for position, chunk in zip(positions, response.chunks):
                results[position] = chunk
        return m.Chunks(chunks=results)

    def put_recipes(self, request: m.PutRecipes) -> None:
        shard = self._recipe_shard(request.file_name)
        self._routes[shard].call(lambda t: t.put_recipes(request))

    def get_recipes(self, request: m.GetRecipes) -> m.PutRecipes:
        shard = self._recipe_shard(request.file_name)
        return self._routes[shard].call(lambda t: t.get_recipes(request))

    # -- health / reporting ------------------------------------------------

    def ping_all(self) -> Dict[int, m.Pong]:
        """Probe every shard once; raises nothing, skips the dead."""
        pongs: Dict[int, m.Pong] = {}
        for shard, route in sorted(self._routes.items()):
            try:
                pongs[shard] = route.probe()
            except Exception:
                continue
        return pongs

    def shard_health(self) -> Dict[int, str]:
        """``shard id -> breaker state`` for status surfaces."""
        return {
            shard: route.breaker.state
            for shard, route in sorted(self._routes.items())
        }

    def routes(self) -> Dict[int, ShardRoute]:
        return dict(self._routes)

    def routed_counts(self) -> Dict[int, int]:
        return self._meter.counts

    def stats(self) -> List[Tuple[str, int]]:
        """Summed numeric stats over reachable shards, plus health."""
        totals: Dict[str, float] = {}
        reachable = 0
        for shard in sorted(self._routes):
            route = self._routes[shard]
            try:
                pairs = route.call(lambda t: t.stats())
            except ShardUnavailableError:
                continue
            reachable += 1
            for name, value in pairs:
                if isinstance(value, (int, float)):
                    totals[name] = totals.get(name, 0) + value
        pairs = [
            (name, int(v) if float(v).is_integer() else v)
            for name, v in sorted(totals.items())
        ]
        pairs.append(("fleet_shards", len(self._routes)))
        pairs.append(("fleet_shards_reachable", reachable))
        return pairs

    def wire_stats(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for route in self._routes.values():
            transport = route._transport
            if transport is None:
                continue
            for name, value in getattr(
                transport, "wire_stats", dict
            )().items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def close(self) -> None:
        if self._monitor is not None:
            self._monitor.stop()
            self._monitor = None
        for route in self._routes.values():
            route.close()


class RemoteKmShardPool:
    """Guarded routes to KM sketch-observer processes (front side).

    Built by :class:`~repro.tedstore.sharding.ShardedKeyManager` when
    its ring publishes endpoints. ``observe`` is the only hot call;
    failures surface as :class:`ShardUnavailableError` so a keygen
    batch over a dead observer fails loudly at the front instead of
    hanging the client pipeline.
    """

    def __init__(
        self,
        ring: HashRing,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_failures: int = 3,
        breaker_reset: float = 5.0,
        heartbeat_interval: float = 0.0,
        probe_timeout: float = 2.0,
        io_timeout: float = 60.0,
        connect_timeout: float = 10.0,
        propagate_trace: bool = True,
        transport_factory: Optional[Callable] = None,
        clock=None,
    ) -> None:
        def factory(address: Tuple[str, int]):
            return RemoteShardObserver(
                address,
                retry_policy=retry_policy,
                propagate_trace=propagate_trace,
                connect_timeout=connect_timeout,
                io_timeout=io_timeout,
            )

        self.ring = ring
        self._routes = build_routes(
            "km",
            ring,
            transport_factory or factory,
            breaker_failures=breaker_failures,
            breaker_reset=breaker_reset,
            probe_timeout=probe_timeout,
            clock=clock,
        )
        self._monitor = start_monitor(self._routes, heartbeat_interval)

    def observe(
        self,
        shard_id: int,
        client_id: str,
        sequence: int,
        hash_vectors: List[List[int]],
    ) -> List[int]:
        request = m.ShardObserveRequest(
            client_id=client_id,
            sequence=sequence,
            hash_vectors=hash_vectors,
        )
        response = self._routes[shard_id].call(
            lambda t: t.observe(request)
        )
        if len(response.estimates) != len(hash_vectors):
            raise m.ProtocolError(
                f"observer shard {shard_id} returned "
                f"{len(response.estimates)} estimates for "
                f"{len(hash_vectors)} vectors"
            )
        return response.estimates

    def shard_stats(self, shard_id: int) -> List[Tuple[str, int]]:
        return self._routes[shard_id].call(lambda t: t.stats())

    def shard_health(self) -> Dict[int, str]:
        return {
            shard: route.breaker.state
            for shard, route in sorted(self._routes.items())
        }

    def routes(self) -> Dict[int, ShardRoute]:
        return dict(self._routes)

    def close(self) -> None:
        if self._monitor is not None:
            self._monitor.stop()
            self._monitor = None
        for route in self._routes.values():
            route.close()


__all__ = [
    "MultiShardProvider",
    "RemoteKmShardPool",
    "ShardRoute",
    "build_routes",
    "start_monitor",
]
