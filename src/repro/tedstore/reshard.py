"""Shard add/remove with WAL-logged, crash-safe state migration.

``repro reshard`` changes ring membership for a provider storage root
and/or a sharded-KM state root. The migration runs against a quiesced
deployment (stop the servers first — RUNBOOK "Resharding"); both
servers refuse to start while a migration is incomplete
(:func:`pending_reshard`), so there is no window where old and new
placement serve traffic at once.

Every migration is driven by a ``reshard.log`` write-ahead log of
**phase records** — ``begin`` (the full old/new ring plan), then one
record per completed barrier — and every phase is idempotent, so a
kill at any point resumes by re-running the unrecorded phases with the
same plan. The named barriers (and their ``storage/crash.py`` points):

provider (in-place chunk movement):
  1. *snapshot* — seal every source shard's open container
     (``reshard.provider.snapshot``);
  2. *copy/delta drain* — walk each source index in sorted fingerprint
     order, storing chunks whose new owner differs into the target
     shard (idempotent: dedup skips chunks already copied;
     ``reshard.provider.copy`` fires per moved chunk), then a second
     verification sweep (``reshard.provider.drain``);
  3. *cutover* — atomically replace ``ring.json`` with the epoch+1
     ring (``reshard.provider.cutover`` plus the ``ring.config.*``
     torn-write points);
  4. *old-shard GC* — drop moved fingerprints from source indexes and
     delete removed shards' directories (``reshard.provider.gc``).

key manager (staged state rebuild, reusing ``km_state.py``):
  1. *snapshot* — fold each source shard's delta log into its snapshot
     via restore+snapshot (``reshard.km.snapshot``), then verify the
     drain (``reshard.km.drain``);
  2. *stage* — build every new shard's state as a pure function of the
     folded sources under ``shards.next/`` (``reshard.km.stage``):
     frequency-map entries move exactly per the new ring; sketches
     merge by elementwise counter sum, which keeps every estimate an
     upper bound of the true frequency — Count-Min's no-underestimate
     guarantee survives migration, so post-reshard key decisions err
     toward treating chunks as *more* frequent (the fail-safe,
     confidentiality-preserving direction);
  3. *cutover* — write the new ``ring.json`` (``reshard.km.cutover``);
  4. *GC* — swap ``shards.next`` into place and remove the old state
     (``reshard.km.gc``).

A crash anywhere re-converges: re-running ``repro reshard`` with the
same target completes the recorded plan, and the resharding crash
matrix (tests/integration/test_reshard_crash_matrix.py) kills at every
barrier and asserts the recovered state equals the clean-migration
result.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.ted import TedKeyManager
from repro.obs import metrics as obs_metrics
from repro.storage import crash
from repro.storage.dedup import DedupEngine
from repro.storage.sharded import SHARDS_DIRNAME
from repro.storage.wal import OP_PUT, WriteAheadLog
from repro.tedstore import km_state as km_state_mod
from repro.tedstore.km_state import KeyManagerStateStore
from repro.tedstore.ring import (
    DEFAULT_VNODES,
    HashRing,
    load_ring,
    store_ring,
)
from repro.utils.varint import decode_uvarint

RESHARD_LOG = "reshard.log"
RING_FILENAME = "ring.json"
STAGING_DIRNAME = "shards.next"
RETIRED_DIRNAME = "shards.old"

_REGISTRY = obs_metrics.get_registry()
_MIGRATION_PROGRESS = _REGISTRY.gauge(
    "ted_shard_migration_progress",
    "Reshard progress, 0.0 (begun) to 1.0 (complete)",
    labelnames=("side",),
)
_MIGRATED_KEYS = _REGISTRY.counter(
    "ted_shard_migrated_keys_total",
    "Keys moved to a new owning shard by reshard",
    labelnames=("side",),
)


class ReshardError(RuntimeError):
    """A migration cannot proceed (bad plan, conflicting in-progress run)."""


# -- reshard log --------------------------------------------------------------


def _read_log(path: Path) -> Tuple[Set[str], Optional[Dict]]:
    """Completed phase names plus the recorded plan, if any."""
    phases: Set[str] = set()
    plan: Optional[Dict] = None
    if not path.exists():
        return phases, plan
    for op, key, value in WriteAheadLog.replay(path):
        if op != OP_PUT or key != b"phase":
            continue
        record = json.loads(value.decode("utf-8"))
        phases.add(record["phase"])
        if record["phase"] == "begin":
            plan = record
    return phases, plan


def pending_reshard(root) -> bool:
    """True when ``root`` has a begun-but-unfinished migration.

    Servers call this at startup and refuse to serve until the operator
    re-runs ``repro reshard`` to completion.
    """
    phases, _ = _read_log(Path(root) / RESHARD_LOG)
    return bool(phases) and "done" not in phases


class _PhaseLog:
    """The migration's phase WAL: append-once records, synced each."""

    def __init__(self, root: Path, side: str) -> None:
        self.path = root / RESHARD_LOG
        self.side = side
        self.phases, self.plan = _read_log(self.path)
        self._wal = WriteAheadLog(self.path, scope=f"reshard.{side}.log")

    def record(self, phase: str, **extra) -> None:
        if phase in self.phases:
            return
        payload = dict(extra)
        payload["phase"] = phase
        self._wal.append(
            OP_PUT, b"phase", json.dumps(payload, sort_keys=True).encode()
        )
        self._wal.sync()
        self.phases.add(phase)

    def finish(self) -> None:
        self.record("done")
        self._wal.truncate()
        self._wal.close()

    def close(self) -> None:
        self._wal.close()


def _resolve_plan(
    log: _PhaseLog,
    old_ring: Optional[HashRing],
    shards: int,
    ring_seed: Optional[int],
    vnodes: Optional[int],
) -> Tuple[Optional[HashRing], HashRing]:
    """The (old, new) rings this run migrates between.

    An in-progress log pins the plan: resuming with a different target
    is refused rather than silently blended.
    """
    if log.plan is not None:
        planned_old = (
            HashRing.from_dict(log.plan["old"])
            if log.plan.get("old")
            else None
        )
        planned_new = HashRing.from_dict(log.plan["new"])
        if len(planned_new) != shards:
            raise ReshardError(
                f"a reshard to {len(planned_new)} shards is already in "
                f"progress; re-run with --shards {len(planned_new)} to "
                "complete it"
            )
        return planned_old, planned_new
    if shards < 1:
        raise ReshardError("shard count must be at least 1")
    if old_ring is None:
        new_ring = HashRing(
            range(shards),
            vnodes=vnodes if vnodes is not None else DEFAULT_VNODES,
            seed=ring_seed if ring_seed is not None else 0,
            epoch=1,
        )
        return None, new_ring
    if ring_seed is not None and ring_seed != old_ring.seed:
        raise ReshardError(
            f"ring seed is fixed at {old_ring.seed} after creation"
        )
    if vnodes is not None and vnodes != old_ring.vnodes:
        raise ReshardError(
            f"vnodes is fixed at {old_ring.vnodes} after creation"
        )
    if shards == len(old_ring):
        raise ReshardError(f"already at {shards} shards")
    new_ring = HashRing(
        range(shards),
        vnodes=old_ring.vnodes,
        seed=old_ring.seed,
        epoch=old_ring.epoch + 1,
    )
    return old_ring, new_ring


# -- provider ----------------------------------------------------------------


def _engine_data_roots(root: Path) -> List[Path]:
    """Root + tenant directories that hold dedup-engine state.

    With cross-user dedup off, each tenant has a private engine under
    ``tenants/<id>/`` that migrates the same way; recipe-only tenant
    dirs (cross-user dedup on) are skipped.
    """
    candidates = [root]
    tenants = root / "tenants"
    if tenants.is_dir():
        candidates.extend(sorted(p for p in tenants.iterdir() if p.is_dir()))
    return [
        p
        for p in candidates
        if any(
            (p / name).is_dir()
            for name in ("containers", "index", SHARDS_DIRNAME)
        )
    ]


def _provider_sources(
    data_root: Path, old_ring: Optional[HashRing]
) -> List[Tuple[Optional[int], Path]]:
    if old_ring is None:
        return [(None, data_root)]
    return [
        (shard, data_root / SHARDS_DIRNAME / str(shard))
        for shard in old_ring.shards
        if (data_root / SHARDS_DIRNAME / str(shard)).is_dir()
    ]


def _provider_sweep(
    data_root: Path,
    old_ring: Optional[HashRing],
    new_ring: HashRing,
    container_bytes: int,
) -> int:
    """One idempotent copy pass; returns chunks newly copied."""
    engines: Dict[Path, DedupEngine] = {}

    def engine_at(path: Path) -> DedupEngine:
        if path not in engines:
            engines[path] = DedupEngine(
                path, container_bytes=container_bytes
            )
        return engines[path]

    for shard in new_ring.shards:
        engine_at(data_root / SHARDS_DIRNAME / str(shard))
    moved = 0
    for src_shard, src_path in _provider_sources(data_root, old_ring):
        source = engine_at(src_path)
        for fingerprint in sorted(
            fp for fp, _ in source.index.items()
        ):
            dest_shard = new_ring.shard_for_key(fingerprint)
            if dest_shard == src_shard:
                continue
            dest = engine_at(data_root / SHARDS_DIRNAME / str(dest_shard))
            if not dest.contains(fingerprint):
                crash.crash_point("reshard.provider.copy")
                dest.store(fingerprint, source.load(fingerprint))
                moved += 1
                _MIGRATED_KEYS.labels(side="provider").inc()
    for engine in engines.values():
        engine.flush()
        engine.close()
    return moved


def _provider_gc(
    data_root: Path,
    old_ring: Optional[HashRing],
    new_ring: HashRing,
    container_bytes: int,
) -> None:
    for src_shard, src_path in _provider_sources(data_root, old_ring):
        crash.crash_point("reshard.provider.gc")
        if src_shard is None:
            # Legacy single-engine layout: everything moved into
            # shards/<k>; drop the root engine's containers and index.
            for name in ("containers", "index"):
                target = data_root / name
                if target.is_dir():
                    shutil.rmtree(target)
            continue
        if src_shard not in new_ring.shards:
            shutil.rmtree(src_path)
            continue
        engine = DedupEngine(src_path, container_bytes=container_bytes)
        for fingerprint in sorted(fp for fp, _ in engine.index.items()):
            if new_ring.shard_for_key(fingerprint) != src_shard:
                engine.index.delete(fingerprint)
        engine.flush()
        engine.close()


def reshard_provider(
    root,
    shards: int,
    ring_seed: Optional[int] = None,
    vnodes: Optional[int] = None,
    container_bytes: int = 8 << 20,
) -> Dict[str, object]:
    """Migrate a (stopped) provider storage root to ``shards`` shards."""
    root = Path(root)
    if not root.is_dir():
        raise ReshardError(f"no provider storage at {root}")
    log = _PhaseLog(root, "provider")
    try:
        ring_path = root / RING_FILENAME
        disk_ring = load_ring(ring_path) if ring_path.exists() else None
        old_ring, new_ring = _resolve_plan(
            log, disk_ring, shards, ring_seed, vnodes
        )
        gauge = _MIGRATION_PROGRESS.labels(side="provider")
        log.record(
            "begin",
            old=old_ring.to_dict() if old_ring else None,
            new=new_ring.to_dict(),
        )
        gauge.set(0.0)
        data_roots = _engine_data_roots(root)

        if "snapshot" not in log.phases:
            for data_root in data_roots:
                for _, src_path in _provider_sources(data_root, old_ring):
                    engine = DedupEngine(
                        src_path, container_bytes=container_bytes
                    )
                    engine.flush()
                    engine.close()
            crash.crash_point("reshard.provider.snapshot")
            log.record("snapshot")
        gauge.set(0.2)

        moved = 0
        if "copied" not in log.phases:
            for data_root in data_roots:
                moved += _provider_sweep(
                    data_root, old_ring, new_ring, container_bytes
                )
            log.record("copied")
        gauge.set(0.6)

        if "drained" not in log.phases:
            for data_root in data_roots:
                _provider_sweep(
                    data_root, old_ring, new_ring, container_bytes
                )
            crash.crash_point("reshard.provider.drain")
            log.record("drained")
        gauge.set(0.7)

        if "cutover" not in log.phases:
            crash.crash_point("reshard.provider.cutover")
            store_ring(ring_path, new_ring)
            log.record("cutover")
        gauge.set(0.8)

        if "gc" not in log.phases:
            for data_root in data_roots:
                _provider_gc(
                    data_root, old_ring, new_ring, container_bytes
                )
            log.record("gc")
        gauge.set(1.0)
        log.finish()
        return {
            "side": "provider",
            "root": str(root),
            "shards": list(new_ring.shards),
            "epoch": new_ring.epoch,
            "moved_chunks": moved,
        }
    finally:
        log.close()


# -- key manager -------------------------------------------------------------


def _peek_geometry(snapshot_path: Path) -> Optional[Tuple[int, int]]:
    """(rows, width) from an intact snapshot header, else None."""
    if not snapshot_path.exists():
        return None
    blob = snapshot_path.read_bytes()
    if not KeyManagerStateStore._snapshot_intact(blob):
        return None
    payload = blob[len(km_state_mod._MAGIC) + 4 :]
    rows, pos = decode_uvarint(payload, 0)
    width, _ = decode_uvarint(payload, pos)
    return rows, width


def _migration_observer(
    rows: int, width: int, conservative: bool
) -> TedKeyManager:
    """A state-shaped key manager for loading shard state during reshard.

    FTED-shaped (``blowup_factor`` set, ``batch_size=None``) so delta
    replay tracks frequency-map entries; for BTED/MLE deployments the
    extra tracked entries are inert — nothing reads the map — and cost
    a few bytes in the staged snapshots.
    """
    return TedKeyManager(
        secret=b"reshard",
        blowup_factor=1.05,
        batch_size=None,
        sketch_rows=rows,
        sketch_width=width,
        probabilistic=False,
        conservative_sketch=conservative,
    )


def _km_sources(
    state_root: Path, old_ring: Optional[HashRing]
) -> List[Tuple[Optional[int], Path]]:
    if old_ring is None:
        return [(None, state_root)]
    return [
        (shard, state_root / SHARDS_DIRNAME / str(shard))
        for shard in old_ring.shards
        if (state_root / SHARDS_DIRNAME / str(shard)).is_dir()
    ]


def reshard_km(
    state_root,
    shards: int,
    ring_seed: Optional[int] = None,
    vnodes: Optional[int] = None,
    conservative_sketch: bool = False,
    snapshot_every: int = 64,
    sync_every: int = 1,
) -> Dict[str, object]:
    """Migrate a (stopped) KM state root to ``shards`` shards.

    Sources may be a sharded layout (``shards/<k>/``) or a legacy
    single-KM ``--state-dir`` (snapshot + delta at the root); the
    result is always the sharded layout plus ``ring.json``.
    """
    state_root = Path(state_root)
    if not state_root.is_dir():
        raise ReshardError(f"no KM state at {state_root}")
    log = _PhaseLog(state_root, "km")
    try:
        ring_path = state_root / RING_FILENAME
        disk_ring = load_ring(ring_path) if ring_path.exists() else None
        old_ring, new_ring = _resolve_plan(
            log, disk_ring, shards, ring_seed, vnodes
        )
        sources = _km_sources(state_root, old_ring)

        # Geometry (sketch rows × width) is only recorded in snapshot
        # headers, not in delta records. Delta-only state — a KM that
        # died before its first snapshot cadence or clean stop — cannot
        # be folded, and staging empty shards over it would silently
        # drop acked batches. Refuse before the phase log records
        # anything, so nothing blocks a later serve/reshard.
        geometry = None
        for _, src_path in sources:
            peeked = _peek_geometry(src_path / "snapshot.bin")
            if peeked is not None:
                geometry = peeked
                break
        if geometry is None:
            dirty = [
                src_path
                for _, src_path in sources
                if (src_path / "delta.log").exists()
                and (src_path / "delta.log").stat().st_size > 0
            ]
            if dirty:
                raise ReshardError(
                    f"KM state at {dirty[0]} has delta-log records but "
                    "no intact snapshot (unclean shutdown?); start and "
                    "cleanly stop the key manager to fold the log, "
                    "then re-run reshard"
                )
        gauge = _MIGRATION_PROGRESS.labels(side="km")
        log.record(
            "begin",
            old=old_ring.to_dict() if old_ring else None,
            new=new_ring.to_dict(),
        )
        gauge.set(0.0)
        loaded: Dict[Optional[int], TedKeyManager] = {}
        merged_last_seq: Dict[str, int] = {}
        if geometry is not None:
            rows, width = geometry
            for src_shard, src_path in sources:
                observer = _migration_observer(
                    rows, width, conservative_sketch
                )
                store = KeyManagerStateStore(src_path)
                report = store.restore_into(observer)
                for client_id, sequence in report.last_sequence.items():
                    if sequence > merged_last_seq.get(client_id, -1):
                        merged_last_seq[client_id] = sequence
                loaded[src_shard] = observer
                if "snapshot" not in log.phases:
                    crash.crash_point("reshard.km.snapshot")
                    store.snapshot(observer, merged_last_seq)
                store.close()
        log.record("snapshot")
        gauge.set(0.3)

        if "drained" not in log.phases:
            crash.crash_point("reshard.km.drain")
            log.record("drained")
        gauge.set(0.4)

        staging = state_root / STAGING_DIRNAME
        if "staged" not in log.phases:
            if staging.exists():
                shutil.rmtree(staging)  # torn previous attempt
            if loaded:
                staged = _stage_km_shards(
                    old_ring, new_ring, loaded, conservative_sketch
                )
                for new_shard, observer in staged.items():
                    crash.crash_point("reshard.km.stage")
                    store = KeyManagerStateStore(
                        staging / str(new_shard),
                        snapshot_every=snapshot_every,
                        sync_every=sync_every,
                    )
                    store.snapshot(observer, merged_last_seq)
                    store.close()
            else:
                staging.mkdir(parents=True, exist_ok=True)
            log.record("staged")
        gauge.set(0.7)

        if "cutover" not in log.phases:
            crash.crash_point("reshard.km.cutover")
            store_ring(ring_path, new_ring)
            log.record("cutover")
        gauge.set(0.8)

        if "gc" not in log.phases:
            crash.crash_point("reshard.km.gc")
            shards_dir = state_root / SHARDS_DIRNAME
            retired = state_root / RETIRED_DIRNAME
            if staging.exists():
                if shards_dir.exists():
                    if retired.exists():
                        shutil.rmtree(retired)
                    shards_dir.rename(retired)
                staging.rename(shards_dir)
            if retired.exists():
                shutil.rmtree(retired)
            if old_ring is None:
                # Legacy single-KM layout: its folded state now lives
                # in the shards; drop the root-level store files.
                for name in ("snapshot.bin", "delta.log"):
                    target = state_root / name
                    if target.exists():
                        target.unlink()
            log.record("gc")
        gauge.set(1.0)
        log.finish()
        return {
            "side": "km",
            "root": str(state_root),
            "shards": list(new_ring.shards),
            "epoch": new_ring.epoch,
            "sources": len(sources),
        }
    finally:
        log.close()


def _stage_km_shards(
    old_ring: Optional[HashRing],
    new_ring: HashRing,
    loaded: Dict[Optional[int], TedKeyManager],
    conservative_sketch: bool,
) -> Dict[int, TedKeyManager]:
    """Every new shard's state as a pure function of the folded sources.

    Determinism is the crash-safety argument: staging always produces
    the same bytes from the same sources, so a kill anywhere before
    cutover re-runs staging from scratch and converges. Sketch merging
    sums counters elementwise (:meth:`CountMinSketch.merge`-style), so
    estimates stay upper bounds; frequency-map entries move exactly —
    each identity to its one new owner; request totals are conserved
    (sum over shards is the front's global request counter after
    restart) by crediting orphaned counts to the lowest new shard.
    """
    any_source = next(iter(loaded.values()))
    rows, width = any_source.sketch.rows, any_source.sketch.width
    t = max(source.t for source in loaded.values())
    old_ids = set(loaded)
    staged: Dict[int, TedKeyManager] = {}
    lowest = min(new_ring.shards)
    for new_shard in new_ring.shards:
        observer = _migration_observer(rows, width, conservative_sketch)
        observer.t = t
        base = loaded.get(new_shard) if old_ring is not None else None
        if base is not None:
            observer.sketch._counters = base.sketch._counters.copy()
            observer.sketch.total = base.sketch.total
            observer.stats.requests = base.stats.requests
        staged[new_shard] = observer
    if old_ring is None:
        # Legacy bootstrap: every new shard inherits the single sketch
        # (a safe upper bound for whatever identities it now owns); the
        # request total stays on one shard so the sum is conserved.
        source = loaded[None]
        for new_shard, observer in staged.items():
            observer.sketch._counters = source.sketch._counters.copy()
            observer.sketch.total = source.sketch.total
        staged[lowest].stats.requests = source.stats.requests
    else:
        added = [s for s in new_ring.shards if s not in old_ids]
        removed = [s for s in old_ids if s not in new_ring.shards]
        for new_shard in added:
            observer = staged[new_shard]
            for source in loaded.values():
                observer.sketch._counters += source.sketch._counters
                observer.sketch.total += source.sketch.total
        for gone in removed:
            source = loaded[gone]
            for new_shard in new_ring.shards:
                observer = staged[new_shard]
                observer.sketch._counters += source.sketch._counters
                observer.sketch.total += source.sketch.total
            staged[lowest].stats.requests += source.stats.requests
    # Frequency-map entries route exactly: one identity, one new owner.
    for source in loaded.values():
        for identity, frequency in source._freq_by_identity.items():
            owner = new_ring.shard_for_hashes(identity)
            staged[owner]._freq_by_identity[identity] = frequency
            _MIGRATED_KEYS.labels(side="km").inc()
    return staged


# -- orchestration ------------------------------------------------------------


def run_reshard(
    shards: int,
    storage=None,
    km_state=None,
    ring_seed: Optional[int] = None,
    vnodes: Optional[int] = None,
    container_bytes: int = 8 << 20,
) -> List[Dict[str, object]]:
    """CLI entry: reshard the provider root and/or the KM state root."""
    if storage is None and km_state is None:
        raise ReshardError("nothing to reshard: give --storage or --km-state")
    results = []
    if storage is not None:
        results.append(
            reshard_provider(
                storage,
                shards,
                ring_seed=ring_seed,
                vnodes=vnodes,
                container_bytes=container_bytes,
            )
        )
    if km_state is not None:
        results.append(
            reshard_km(
                km_state, shards, ring_seed=ring_seed, vnodes=vnodes
            )
        )
    return results


__all__ = [
    "RESHARD_LOG",
    "ReshardError",
    "pending_reshard",
    "reshard_km",
    "reshard_provider",
    "run_reshard",
]
