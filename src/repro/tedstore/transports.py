"""Transport interfaces between TEDStore entities.

The client speaks to the key manager and the provider through these small
interfaces, so the same client code runs over direct in-process calls
(:mod:`repro.tedstore.inprocess`) or real TCP (:mod:`repro.tedstore.network`).
"""

from __future__ import annotations

from typing import List, Protocol, Tuple

from repro.tedstore.messages import (
    Chunks,
    GetChunks,
    GetRecipes,
    KeyGenRequest,
    KeyGenResponse,
    PutChunks,
    PutChunksResponse,
    PutRecipes,
)


class KeyManagerTransport(Protocol):
    """Client's view of the key manager.

    ``keygen`` must be safe to retry: transports may replay a batch after
    a transport failure, and a replayed batch only re-updates the sketch
    (over-estimation is the fail-safe direction — it can only raise ``t``).
    """

    def keygen(self, request: KeyGenRequest) -> KeyGenResponse:
        """Submit a batch of short-hash vectors; receive key seeds."""
        ...

    def stats(self) -> List[Tuple[str, int]]:
        """Fetch key-manager counters (plus wire counters over TCP)."""
        ...


class ProviderTransport(Protocol):
    """Client's view of the storage provider."""

    def put_chunks(self, request: PutChunks) -> PutChunksResponse:
        """Upload a batch of (fingerprint, ciphertext) pairs."""
        ...

    def get_chunks(self, request: GetChunks) -> Chunks:
        """Download chunks by fingerprint."""
        ...

    def put_recipes(self, request: PutRecipes) -> None:
        """Upload a file's sealed recipes."""
        ...

    def get_recipes(self, request: GetRecipes) -> PutRecipes:
        """Download a file's sealed recipes."""
        ...

    def stats(self) -> List[Tuple[str, int]]:
        """Fetch provider counters."""
        ...
