"""Transport interfaces between TEDStore entities.

The client speaks to the key manager and the provider through these small
interfaces, so the same client code runs over direct in-process calls
(:mod:`repro.tedstore.inprocess`) or real TCP (:mod:`repro.tedstore.network`).
"""

from __future__ import annotations

from typing import List, Protocol, Tuple

from repro.tedstore.messages import (
    BatchedKeyGenRequest,
    BatchedKeyGenResponse,
    Chunks,
    GetChunks,
    GetRecipes,
    KeyGenRequest,
    KeyGenResponse,
    PutChunks,
    PutChunksResponse,
    PutRecipes,
)


class KeyManagerTransport(Protocol):
    """Client's view of the key manager.

    ``keygen`` must be safe to retry: transports may replay a batch after
    a transport failure, and a replayed batch only re-updates the sketch
    (over-estimation is the fail-safe direction — it can only raise ``t``).

    **Ordering contract (DESIGN.md §10).** Batches submitted through one
    transport instance reach the key manager in submission order, one in
    flight at a time — over TCP the per-connection request/response loop
    enforces this; the in-process transport holds an equivalent
    per-transport lock. The pipelined client relies on this: sketch
    frequency state and probabilistic seed selection are both sensitive
    to the order in which chunks arrive at the key manager.
    """

    def keygen(self, request: KeyGenRequest) -> KeyGenResponse:
        """Submit a batch of short-hash vectors; receive key seeds."""
        ...

    def keygen_batched(
        self, request: BatchedKeyGenRequest
    ) -> BatchedKeyGenResponse:
        """Submit a *sequenced* batch; the reply echoes the sequence."""
        ...

    def stats(self) -> List[Tuple[str, int]]:
        """Fetch key-manager counters (plus wire counters over TCP)."""
        ...


class ProviderTransport(Protocol):
    """Client's view of the storage provider."""

    def put_chunks(self, request: PutChunks) -> PutChunksResponse:
        """Upload a batch of (fingerprint, ciphertext) pairs."""
        ...

    def get_chunks(self, request: GetChunks) -> Chunks:
        """Download chunks by fingerprint."""
        ...

    def put_recipes(self, request: PutRecipes) -> None:
        """Upload a file's sealed recipes."""
        ...

    def get_recipes(self, request: GetRecipes) -> PutRecipes:
        """Download a file's sealed recipes."""
        ...

    def stats(self) -> List[Tuple[str, int]]:
        """Fetch provider counters."""
        ...
