"""TEDStore storage-provider service.

The provider owns the deduplicated storage backend: ciphertext chunks are
deduplicated by fingerprint (provider-side dedup, §2.2), packed into
containers, and indexed by the LSM fingerprint index. Sealed file/key
recipes are stored as opaque blobs keyed by file name — the provider never
deduplicates or inspects metadata (§2.2).

Thread-safe: one lock serializes the dedup engine and the recipe store, so
multiple client connections can upload concurrently (Experiment B.3).
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Optional

from repro.obs import tracing
from repro.storage.dedup import DedupEngine, record_dedup_store
from repro.storage.kvstore import KVStore
from repro.storage.scrub import BackgroundScrubber
from repro.tedstore.messages import (
    Chunks,
    GetChunks,
    GetRecipes,
    PutChunks,
    PutChunksResponse,
    PutRecipes,
)
from repro.utils.varint import decode_uvarint, encode_uvarint


def _encode_recipes(file_recipe: bytes, key_recipe: bytes) -> bytes:
    return encode_uvarint(len(file_recipe)) + file_recipe + key_recipe


def _decode_recipes(blob: bytes):
    length, pos = decode_uvarint(blob, 0)
    return blob[pos : pos + length], blob[pos + length :]


class ProviderService:
    """Thread-safe deduplicating storage service.

    Args:
        directory: provider storage root.
        container_bytes: container capacity (paper default 8 MB).
        in_memory: keep chunks in a dict instead of the on-disk engine —
            Experiments B.1–B.3 remove disk I/O to measure compute limits.
        scrub_interval: run the background scrubber (read-only per-chunk
            verification; DESIGN.md §12) every this many seconds; ``None``
            disables it. Requires the on-disk engine.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        container_bytes: int = 8 << 20,
        in_memory: bool = False,
        engine: Optional[DedupEngine] = None,
        lookahead_window: Optional[int] = None,
        scrub_interval: Optional[float] = None,
    ) -> None:
        self._lock = threading.Lock()
        self.in_memory = in_memory
        # Look-ahead restore scheduling (off by default — the paper's
        # prototype restores naively, which is what produces Figure 9's
        # declining download curve; see the B.5 ablation).
        self.lookahead_window = lookahead_window
        self._recipes = {}
        self._recipe_store: Optional[KVStore] = None
        if in_memory:
            self._memory_chunks = {}
            self.engine = None
            self._logical_chunks = 0
            self._duplicate_chunks = 0
        elif engine is not None:
            self.engine = engine
        else:
            if directory is None:
                raise ValueError(
                    "directory is required unless in_memory or engine given"
                )
            self.engine = DedupEngine(
                Path(directory), container_bytes=container_bytes
            )
            # Recipes are durable alongside the chunks: a provider restart
            # must still resolve every previously-acked file name, or the
            # chunks it kept are unreachable (DESIGN.md §12).
            self._recipe_store = KVStore(Path(directory) / "recipes")
            for name, blob in self._recipe_store.items():
                self._recipes[name.decode("utf-8")] = _decode_recipes(blob)
        self.scrubber: Optional[BackgroundScrubber] = None
        if scrub_interval is not None:
            if self.engine is None:
                raise ValueError("scrubbing requires the on-disk engine")
            self.scrubber = BackgroundScrubber(
                self.engine, interval_seconds=scrub_interval
            )
            self.scrubber.start()

    # -- chunk path ----------------------------------------------------------

    def handle_put_chunks(self, request: PutChunks) -> PutChunksResponse:
        """Store a batch of ciphertext chunks with inline deduplication."""
        stored = 0
        duplicates = 0
        with tracing.get_tracer().span(
            "provider.put_chunks", attributes={"chunks": len(request.chunks)}
        ), self._lock:
            if self.in_memory:
                for fingerprint, data in request.chunks:
                    self._logical_chunks += 1
                    if fingerprint in self._memory_chunks:
                        duplicates += 1
                        self._duplicate_chunks += 1
                        record_dedup_store(len(data), unique=False)
                    else:
                        self._memory_chunks[fingerprint] = data
                        stored += 1
                        record_dedup_store(len(data), unique=True)
            else:
                for fingerprint, data in request.chunks:
                    if self.engine.store(fingerprint, data):
                        stored += 1
                    else:
                        duplicates += 1
        return PutChunksResponse(stored=stored, duplicates=duplicates)

    def handle_get_chunks(self, request: GetChunks) -> Chunks:
        """Fetch chunks by fingerprint, in request order.

        Raises:
            KeyError: if any fingerprint is unknown.
        """
        with tracing.get_tracer().span(
            "provider.get_chunks",
            attributes={"chunks": len(request.fingerprints)},
        ), self._lock:
            if self.in_memory:
                return Chunks(
                    chunks=[
                        self._memory_chunks[fp] for fp in request.fingerprints
                    ]
                )
            return Chunks(
                chunks=self.engine.load_many(
                    request.fingerprints,
                    lookahead_window=self.lookahead_window,
                )
            )

    # -- recipe path -------------------------------------------------------------

    def handle_put_recipes(self, request: PutRecipes) -> None:
        """Store sealed recipes verbatim (no metadata dedup, §2.2).

        Directory-backed providers write through to the durable recipe
        store before acknowledging.
        """
        with self._lock:
            self._recipes[request.file_name] = (
                request.sealed_file_recipe,
                request.sealed_key_recipe,
            )
            if self._recipe_store is not None:
                self._recipe_store.put(
                    request.file_name.encode("utf-8"),
                    _encode_recipes(
                        request.sealed_file_recipe,
                        request.sealed_key_recipe,
                    ),
                )

    def handle_get_recipes(self, request: GetRecipes) -> PutRecipes:
        """Fetch a file's sealed recipes.

        Raises:
            KeyError: unknown file.
        """
        with self._lock:
            file_recipe, key_recipe = self._recipes[request.file_name]
        return PutRecipes(
            file_name=request.file_name,
            sealed_file_recipe=file_recipe,
            sealed_key_recipe=key_recipe,
        )

    # -- bookkeeping ----------------------------------------------------------------

    def flush(self) -> None:
        """Seal containers and flush the indexes (no-op in memory mode)."""
        with self._lock:
            if self.engine is not None:
                self.engine.flush()
            if self._recipe_store is not None:
                self._recipe_store.flush()

    def close(self) -> None:
        """Stop the scrubber and flush/release all storage."""
        if self.scrubber is not None:
            self.scrubber.stop()
        with self._lock:
            if self._recipe_store is not None:
                self._recipe_store.close()
            if self.engine is not None:
                self.engine.close()

    def stats(self):
        """Counters for the evaluation harness."""
        with self._lock:
            if self.in_memory:
                return [
                    ("logical_chunks", self._logical_chunks),
                    ("unique_chunks", len(self._memory_chunks)),
                    ("duplicate_chunks", self._duplicate_chunks),
                    ("files", len(self._recipes)),
                ]
            stats = self.engine.stats
            return [
                ("logical_chunks", stats.logical_chunks),
                ("unique_chunks", stats.unique_chunks),
                ("logical_bytes", stats.logical_bytes),
                ("unique_bytes", stats.unique_bytes),
                ("files", len(self._recipes)),
                ("containers", self.engine.containers.container_count()),
            ]
