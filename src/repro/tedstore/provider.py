"""TEDStore storage-provider service (multi-tenant, DESIGN.md §13).

The provider owns the deduplicated storage backend: ciphertext chunks are
deduplicated by fingerprint (provider-side dedup, §2.2), packed into
containers, and indexed by the LSM fingerprint index. Sealed file/key
recipes are stored as opaque blobs keyed by (tenant, file name) — the
provider never deduplicates or inspects metadata (§2.2).

**Multi-tenancy.** Every request is served in a tenant namespace (the wire
layer binds a connection to a tenant via the ``HELLO`` handshake; untagged
connections are the :data:`DEFAULT_TENANT`). Recipes, quota accounting,
and per-tenant counters are always isolated per tenant; what *chunks* share
is the operator's choice:

* ``cross_user_dedup=True`` — one fingerprint index and container pool is
  shared by every tenant, maximizing storage savings at the cost of the
  cross-tenant chunk-existence channel (frequency-analysis leakage,
  PAPERS.md). Recipes and keys stay per-tenant (REED's boundary).
* ``cross_user_dedup=False`` — each tenant gets its own dedup engine
  (containers + index) under ``tenants/<id>/``, so one tenant's uploads
  never deduplicate against another's and per-tenant stored state is
  independent of tenant interleaving (the differential isolation gate).

**Concurrency.** There is no global provider lock. Each tenant has its own
lock covering its recipes, quota accounting, and (when partitioned) its
private engine; the shared engine is wrapped in
:class:`~repro.storage.dedup.ConcurrentDedupEngine`, whose striped
per-fingerprint locks let distinct tenants store and dedup-check chunks
concurrently.

**Quotas.** ``quota_bytes`` (logical bytes offered) and ``quota_files``
are enforced per tenant *before* any storage mutation: an over-quota batch
is rejected whole with :class:`QuotaExceededError` (``MSG_ERROR`` on the
wire) and leaves counters, containers, and the index untouched.
"""

from __future__ import annotations

import hmac
import re
import sys
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.storage.dedup import (
    ConcurrentDedupEngine,
    DedupEngine,
    record_dedup_store,
)
from repro.storage.kvstore import KVStore
from repro.storage.scrub import BackgroundScrubber
from repro.storage.sharded import ShardedDedupEngine
from repro.tedstore.ring import HashRing, load_ring, store_ring
from repro.tedstore.messages import (
    Chunks,
    GetChunks,
    GetRecipes,
    PutChunks,
    PutChunksResponse,
    PutRecipes,
)
from repro.utils.varint import decode_uvarint, encode_uvarint

#: Namespace served to connections that never sent a ``HELLO`` (old
#: clients, single-tenant deployments). Its storage lives at the root of
#: the provider directory, so pre-multi-tenant layouts keep working.
DEFAULT_TENANT = "default"

#: Tenant ids become directory names; keep them path-safe and bounded.
_TENANT_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_REGISTRY = obs_metrics.get_registry()
_TENANT_CHUNKS = _REGISTRY.counter(
    "ted_provider_tenant_chunks_total",
    "Chunks offered per tenant, by dedup outcome",
    labelnames=("tenant", "outcome"),
)
_TENANT_BYTES = _REGISTRY.counter(
    "ted_provider_tenant_logical_bytes_total",
    "Logical bytes offered per tenant",
    labelnames=("tenant",),
)
_QUOTA_REJECTIONS = _REGISTRY.counter(
    "ted_provider_quota_rejections_total",
    "Requests rejected by per-tenant quota enforcement",
    labelnames=("tenant", "resource"),
)
_RECIPE_QUARANTINED = _REGISTRY.counter(
    "ted_provider_recipe_quarantined_total",
    "Durable recipe blobs that failed to decode at startup",
)
_TENANT_GAUGE = _REGISTRY.gauge(
    "ted_provider_tenants", "Tenant namespaces currently materialized"
)


class QuotaExceededError(RuntimeError):
    """A request would push a tenant past its quota; nothing was stored."""


class AuthenticationError(PermissionError):
    """HELLO presented a missing or wrong auth token for its tenant."""


def _encode_recipes(file_recipe: bytes, key_recipe: bytes) -> bytes:
    return encode_uvarint(len(file_recipe)) + file_recipe + key_recipe


def _decode_recipes(blob: bytes) -> Tuple[bytes, bytes]:
    """Split a stored recipe blob into (file recipe, key recipe).

    Raises:
        ValueError: truncated or corrupt blob — the uvarint length must
            lie within the blob, or the split would silently produce
            wrong recipes.
    """
    length, pos = decode_uvarint(blob, 0)
    if pos + length > len(blob):
        raise ValueError(
            f"corrupt recipe blob: file-recipe length {length} exceeds "
            f"remaining {len(blob) - pos} bytes"
        )
    return blob[pos : pos + length], blob[pos + length :]


class _TenantState:
    """One tenant's namespace: recipes, quota accounting, private engine."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.lock = threading.Lock()
        self.recipes: Dict[str, Tuple[bytes, bytes]] = {}
        self.recipe_store: Optional[KVStore] = None
        #: Recipe keys whose durable blobs failed to decode at startup.
        self.quarantined_recipes: List[str] = []
        # Private engine (cross-user dedup off) or None (shared engine).
        self.engine: Optional[DedupEngine] = None
        # In-memory mode, cross-user dedup off: private chunk dict.
        self.memory_chunks: Optional[Dict[bytes, bytes]] = None
        # Per-tenant accounting (logical view of this tenant's offers).
        self.logical_chunks = 0
        self.logical_bytes = 0
        self.stored_chunks = 0
        self.duplicate_chunks = 0


class ProviderService:
    """Multi-tenant deduplicating storage service.

    Args:
        directory: provider storage root. The default tenant stores at
            the root (legacy layout); named tenants under ``tenants/<id>``.
        container_bytes: container capacity (paper default 8 MB).
        in_memory: keep chunks in dicts instead of the on-disk engine —
            Experiments B.1–B.3 remove disk I/O to measure compute limits.
        engine: inject a pre-built engine as the shared/default engine.
        cross_user_dedup: share the fingerprint index and containers
            across tenants (True, the storage-efficient default) or give
            each tenant a private engine (False, the isolated mode).
        quota_bytes: per-tenant logical-byte quota (None = unlimited).
        quota_files: per-tenant file-count quota (None = unlimited).
        auth_tokens: optional ``{tenant: token}`` map; a tenant listed
            here must present its token in HELLO. Unlisted tenants are
            admitted without a token.
        lookahead_window: restore look-ahead scheduling (off by default —
            the paper's prototype restores naively, which is what produces
            Figure 9's declining download curve; see the B.5 ablation).
        scrub_interval: run the background scrubber (read-only per-chunk
            verification; DESIGN.md §12) every this many seconds over the
            default/shared engine; ``None`` disables it. Requires the
            on-disk engine.
        shards: split the on-disk engine into this many ring-routed
            shards under ``shards/<k>/`` (DESIGN.md §15). ``1`` keeps
            the legacy single-engine layout byte-compatible. A
            persisted ``ring.json`` at the storage root is
            authoritative: changing shard membership goes through
            ``repro reshard``, not this flag.
        ring_seed: placement seed when bootstrapping a fresh sharded
            store; ignored once ``ring.json`` exists.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        container_bytes: int = 8 << 20,
        in_memory: bool = False,
        engine: Optional[DedupEngine] = None,
        lookahead_window: Optional[int] = None,
        scrub_interval: Optional[float] = None,
        cross_user_dedup: bool = True,
        quota_bytes: Optional[int] = None,
        quota_files: Optional[int] = None,
        auth_tokens: Optional[Dict[str, bytes]] = None,
        dedup_stripes: int = 64,
        shards: int = 1,
        ring_seed: int = 0,
    ) -> None:
        if quota_bytes is not None and quota_bytes < 0:
            raise ValueError("quota_bytes cannot be negative")
        if quota_files is not None and quota_files < 0:
            raise ValueError("quota_files cannot be negative")
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.in_memory = in_memory
        self.cross_user_dedup = cross_user_dedup
        self.quota_bytes = quota_bytes
        self.quota_files = quota_files
        self.auth_tokens = dict(auth_tokens or {})
        self.lookahead_window = lookahead_window
        self.container_bytes = container_bytes
        self._directory = Path(directory) if directory is not None else None
        self._dedup_stripes = dedup_stripes
        self._closed = False
        # Guards tenant-map mutation and close(); never held while a
        # tenant lock is held (order: admin -> tenant -> engine locks).
        self._admin_lock = threading.Lock()
        self._tenants: Dict[str, _TenantState] = {}

        self._memory_chunks: Optional[Dict[bytes, bytes]] = None
        self._memory_lock = threading.Lock()
        self._shared = None  # thread-safe facade over self.engine
        # Ring resolution (DESIGN.md §15): a persisted ring.json is the
        # source of truth — the CLI flag only bootstraps a fresh store,
        # and membership changes go through `repro reshard`. A fresh
        # N=1 store writes no ring.json, keeping today's on-disk layout
        # byte-compatible.
        self.ring: Optional[HashRing] = None
        if not in_memory and engine is None and self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
            from repro.tedstore.reshard import pending_reshard

            if pending_reshard(self._directory):
                raise RuntimeError(
                    f"unfinished reshard in {self._directory}; run "
                    "`repro reshard` to complete the migration before "
                    "serving"
                )
            ring_path = self._directory / "ring.json"
            if ring_path.exists():
                self.ring = load_ring(ring_path)
                if shards > 1 and len(self.ring) != shards:
                    raise ValueError(
                        f"storage is sharded {len(self.ring)} ways; run "
                        f"`repro reshard --shards {shards}` to change "
                        "membership"
                    )
            elif shards > 1:
                self.ring = HashRing.build(shards, seed=ring_seed)
                store_ring(ring_path, self.ring)
        elif shards > 1:
            raise ValueError(
                "sharding requires the on-disk engine (a storage directory)"
            )
        if in_memory:
            self.engine = None
            if cross_user_dedup:
                self._memory_chunks = {}
        else:
            if engine is not None:
                self.engine = engine
            elif self.ring is not None:
                self.engine = ShardedDedupEngine(
                    self._directory,
                    self.ring,
                    container_bytes=container_bytes,
                    concurrent=cross_user_dedup,
                    stripes=dedup_stripes,
                )
            else:
                if directory is None:
                    raise ValueError(
                        "directory is required unless in_memory or engine "
                        "given"
                    )
                self.engine = DedupEngine(
                    self._directory, container_bytes=container_bytes
                )
            if cross_user_dedup:
                if isinstance(self.engine, ShardedDedupEngine):
                    # Already thread-safe: each shard wraps its leaf in
                    # striped locks, and the ring keeps any fingerprint
                    # on exactly one shard.
                    self._shared = self.engine
                else:
                    self._shared = ConcurrentDedupEngine(
                        self.engine, stripes=dedup_stripes
                    )
        # Materialize the default tenant eagerly: it owns the legacy
        # root-layout recipes, which must be durable-loaded before the
        # first request (a provider restart must still resolve every
        # previously-acked file name, DESIGN.md §12).
        self._tenant(DEFAULT_TENANT)

        self.scrubber: Optional[BackgroundScrubber] = None
        if scrub_interval is not None:
            if self.engine is None:
                raise ValueError("scrubbing requires the on-disk engine")
            self.scrubber = BackgroundScrubber(
                self.engine, interval_seconds=scrub_interval
            )
            self.scrubber.start()

    # -- tenant management ----------------------------------------------------

    @staticmethod
    def validate_tenant(tenant: str) -> str:
        """Check a tenant id is path-safe; returns it unchanged.

        Raises:
            ValueError: empty, over-long, or non [A-Za-z0-9._-] ids (they
                become directory names, so traversal must be impossible).
        """
        if not _TENANT_ID.match(tenant):
            raise ValueError(f"invalid tenant id: {tenant!r}")
        return tenant

    def authenticate(self, tenant: str, token: bytes) -> None:
        """Admit (or reject) a HELLO for ``tenant``.

        Raises:
            ValueError: malformed tenant id.
            AuthenticationError: the tenant has a configured token and
                the presented one does not match (constant-time compare).
        """
        self.validate_tenant(tenant)
        expected = self.auth_tokens.get(tenant)
        if expected is not None and not hmac.compare_digest(expected, token):
            raise AuthenticationError(
                f"authentication failed for tenant {tenant}"
            )

    def _tenant_root(self, tenant: str) -> Path:
        assert self._directory is not None
        if tenant == DEFAULT_TENANT:
            return self._directory
        return self._directory / "tenants" / tenant

    def _tenant(self, tenant: str) -> _TenantState:
        """Fetch-or-create a tenant namespace (thread-safe, lazy)."""
        state = self._tenants.get(tenant)
        if state is not None:
            return state
        self.validate_tenant(tenant)
        with self._admin_lock:
            state = self._tenants.get(tenant)
            if state is not None:
                return state
            if self._closed:
                raise RuntimeError("provider is closed")
            state = _TenantState(tenant)
            if self.in_memory:
                if not self.cross_user_dedup:
                    state.memory_chunks = {}
            else:
                if not self.cross_user_dedup:
                    if tenant == DEFAULT_TENANT:
                        # The default tenant owns the legacy root-layout
                        # engine; partitioning only namespaces the rest.
                        state.engine = self.engine
                    elif self._directory is not None:
                        if self.ring is not None:
                            # Private engines shard under the same ring:
                            # tenants/<id>/shards/<k>, one global ring.json.
                            state.engine = ShardedDedupEngine(
                                self._tenant_root(tenant),
                                self.ring,
                                container_bytes=self.container_bytes,
                            )
                        else:
                            state.engine = DedupEngine(
                                self._tenant_root(tenant),
                                container_bytes=self.container_bytes,
                            )
                    else:
                        # An injected single engine cannot be partitioned.
                        raise ValueError(
                            "per-tenant dedup engines "
                            "(cross_user_dedup=False) require a storage "
                            "directory"
                        )
                if self._directory is not None:
                    # Recipes are durable alongside the chunks: a provider
                    # restart must still resolve every previously-acked
                    # file name, or the chunks it kept are unreachable
                    # (DESIGN.md §12).
                    state.recipe_store = KVStore(
                        self._tenant_root(tenant) / "recipes"
                    )
                    self._load_recipes(state)
            self._tenants[tenant] = state
            _TENANT_GAUGE.set(len(self._tenants))
            return state

    def _load_recipes(self, state: _TenantState) -> None:
        """Load a tenant's durable recipes, loudly quarantining corruption.

        A blob that fails :func:`_decode_recipes` (truncated length,
        undecodable name) is skipped and recorded — serving silently
        wrong recipes would corrupt every restore of that file.
        """
        assert state.recipe_store is not None
        for name, blob in state.recipe_store.items():
            try:
                decoded_name = name.decode("utf-8")
                state.recipes[decoded_name] = _decode_recipes(blob)
            except (ValueError, UnicodeDecodeError) as exc:
                key = name.decode("utf-8", "replace")
                state.quarantined_recipes.append(key)
                _RECIPE_QUARANTINED.inc()
                print(
                    f"provider: quarantined corrupt recipe blob "
                    f"{key!r} (tenant {state.name}): {exc}",
                    file=sys.stderr,
                )

    # -- quota enforcement ----------------------------------------------------

    def _check_bytes_quota(
        self, state: _TenantState, incoming_bytes: int
    ) -> None:
        """Reject (whole batch, pre-mutation) if logical bytes would exceed."""
        if (
            self.quota_bytes is not None
            and state.logical_bytes + incoming_bytes > self.quota_bytes
        ):
            _QUOTA_REJECTIONS.labels(
                tenant=state.name, resource="bytes"
            ).inc()
            raise QuotaExceededError(
                f"quota exceeded: tenant {state.name} logical bytes "
                f"{state.logical_bytes} + {incoming_bytes} over limit "
                f"{self.quota_bytes}"
            )

    def _check_files_quota(self, state: _TenantState, file_name: str) -> None:
        """Reject a *new* file's recipes once the file-count quota is hit."""
        if (
            self.quota_files is not None
            and file_name not in state.recipes
            and len(state.recipes) >= self.quota_files
        ):
            _QUOTA_REJECTIONS.labels(
                tenant=state.name, resource="files"
            ).inc()
            raise QuotaExceededError(
                f"quota exceeded: tenant {state.name} at file limit "
                f"{self.quota_files}"
            )

    # -- chunk path ----------------------------------------------------------

    def handle_put_chunks(
        self, request: PutChunks, tenant: str = DEFAULT_TENANT
    ) -> PutChunksResponse:
        """Store a batch of ciphertext chunks with inline deduplication.

        Raises:
            QuotaExceededError: the batch would push the tenant past its
                byte quota; rejected before any mutation.
        """
        state = self._tenant(tenant)
        batch_bytes = sum(len(data) for _, data in request.chunks)
        stored = 0
        duplicates = 0
        with tracing.get_tracer().span(
            "provider.put_chunks",
            attributes={"chunks": len(request.chunks), "tenant": tenant},
        ), state.lock:
            self._check_bytes_quota(state, batch_bytes)
            if self.in_memory:
                stored, duplicates = self._put_chunks_memory(state, request)
            elif state.engine is not None:
                # Partitioned mode: the tenant lock serializes this
                # tenant's connections over its private engine.
                for fingerprint, data in request.chunks:
                    if state.engine.store(fingerprint, data):
                        stored += 1
                    else:
                        duplicates += 1
            else:
                # Shared mode: the concurrent engine's striped locks let
                # other tenants proceed in parallel with this batch.
                assert self._shared is not None
                for fingerprint, data in request.chunks:
                    if self._shared.store(fingerprint, data):
                        stored += 1
                    else:
                        duplicates += 1
            state.logical_chunks += len(request.chunks)
            state.logical_bytes += batch_bytes
            state.stored_chunks += stored
            state.duplicate_chunks += duplicates
        _TENANT_CHUNKS.labels(tenant=tenant, outcome="stored").inc(stored)
        _TENANT_CHUNKS.labels(tenant=tenant, outcome="duplicate").inc(
            duplicates
        )
        _TENANT_BYTES.labels(tenant=tenant).inc(batch_bytes)
        return PutChunksResponse(stored=stored, duplicates=duplicates)

    def _put_chunks_memory(
        self, state: _TenantState, request: PutChunks
    ) -> Tuple[int, int]:
        stored = 0
        duplicates = 0
        if state.memory_chunks is not None:
            chunks = state.memory_chunks
            lock = None  # tenant lock already held; dict is private
        else:
            assert self._memory_chunks is not None
            chunks = self._memory_chunks
            lock = self._memory_lock
        for fingerprint, data in request.chunks:
            if lock is not None:
                lock.acquire()
            try:
                if fingerprint in chunks:
                    duplicates += 1
                    record_dedup_store(len(data), unique=False)
                else:
                    chunks[fingerprint] = data
                    stored += 1
                    record_dedup_store(len(data), unique=True)
            finally:
                if lock is not None:
                    lock.release()
        return stored, duplicates

    def handle_get_chunks(
        self, request: GetChunks, tenant: str = DEFAULT_TENANT
    ) -> Chunks:
        """Fetch chunks by fingerprint, in request order.

        With cross-user dedup off, lookups resolve only against the
        tenant's own namespace — another tenant's fingerprints are
        unknown here by construction.

        Raises:
            KeyError: if any fingerprint is unknown.
        """
        state = self._tenant(tenant)
        with tracing.get_tracer().span(
            "provider.get_chunks",
            attributes={
                "chunks": len(request.fingerprints),
                "tenant": tenant,
            },
        ):
            if self.in_memory:
                if state.memory_chunks is not None:
                    with state.lock:
                        return Chunks(
                            chunks=[
                                state.memory_chunks[fp]
                                for fp in request.fingerprints
                            ]
                        )
                assert self._memory_chunks is not None
                with self._memory_lock:
                    return Chunks(
                        chunks=[
                            self._memory_chunks[fp]
                            for fp in request.fingerprints
                        ]
                    )
            if state.engine is not None:
                with state.lock:
                    return Chunks(
                        chunks=state.engine.load_many(
                            request.fingerprints,
                            lookahead_window=self.lookahead_window,
                        )
                    )
            assert self._shared is not None
            return Chunks(
                chunks=self._shared.load_many(
                    request.fingerprints,
                    lookahead_window=self.lookahead_window,
                )
            )

    # -- recipe path -------------------------------------------------------------

    def handle_put_recipes(
        self, request: PutRecipes, tenant: str = DEFAULT_TENANT
    ) -> None:
        """Store sealed recipes verbatim (no metadata dedup, §2.2).

        Directory-backed providers write through to the tenant's durable
        recipe store before acknowledging.

        Raises:
            QuotaExceededError: a new file would exceed the tenant's
                file-count quota; rejected before any mutation.
        """
        state = self._tenant(tenant)
        with state.lock:
            self._check_files_quota(state, request.file_name)
            state.recipes[request.file_name] = (
                request.sealed_file_recipe,
                request.sealed_key_recipe,
            )
            if state.recipe_store is not None:
                state.recipe_store.put(
                    request.file_name.encode("utf-8"),
                    _encode_recipes(
                        request.sealed_file_recipe,
                        request.sealed_key_recipe,
                    ),
                )

    def handle_get_recipes(
        self, request: GetRecipes, tenant: str = DEFAULT_TENANT
    ) -> PutRecipes:
        """Fetch a file's sealed recipes from the tenant's namespace.

        Raises:
            FileNotFoundError: unknown file *in this tenant's namespace* —
                another tenant's files are invisible here, whatever the
                cross-user dedup setting.
        """
        state = self._tenant(tenant)
        with state.lock:
            entry = state.recipes.get(request.file_name)
        if entry is None:
            raise FileNotFoundError(
                f"no such file for tenant {tenant}: {request.file_name}"
            )
        file_recipe, key_recipe = entry
        return PutRecipes(
            file_name=request.file_name,
            sealed_file_recipe=file_recipe,
            sealed_key_recipe=key_recipe,
        )

    # -- bookkeeping ----------------------------------------------------------------

    def _tenant_snapshot(self) -> List[_TenantState]:
        with self._admin_lock:
            return list(self._tenants.values())

    def _engines(self) -> List[DedupEngine]:
        """Every distinct *leaf* engine (root/shared + per-tenant).

        Sharded engines flatten to their per-shard leaves so accounting
        and scrub sweeps see every container pool and index exactly once.
        """
        engines: List[DedupEngine] = []

        def add(engine) -> None:
            leaves = getattr(engine, "shard_engines", None)
            for leaf in leaves if leaves is not None else [engine]:
                if all(leaf is not existing for existing in engines):
                    engines.append(leaf)

        if self.engine is not None:
            add(self.engine)
        for state in self._tenant_snapshot():
            if state.engine is not None:
                add(state.engine)
        return engines

    def ring_epoch(self) -> int:
        """The placement epoch (0 for unsharded stores).

        Clients consult this before uploads: a cache populated under an
        older epoch must not short-circuit PUTs after a reshard
        (DESIGN.md §15; :meth:`FingerprintCache.advance_epoch`).
        """
        return self.ring.epoch if self.ring is not None else 0

    def flush(self) -> None:
        """Seal containers and flush indexes/recipes across all tenants."""
        for state in self._tenant_snapshot():
            with state.lock:
                if (
                    state.engine is not None
                    and state.engine is not self.engine
                ):
                    state.engine.flush()
                if state.recipe_store is not None:
                    state.recipe_store.flush()
        if self._shared is not None:
            self._shared.flush()
        elif self.engine is not None:
            self.engine.flush()

    def close(self) -> None:
        """Stop the scrubber and flush/release all storage.

        Re-entrant: the second and later calls are no-ops. The scrubber
        is always stopped first (it reads the engines being closed), and
        every tenant's stores are closed even if one of them raises —
        the first error propagates after the sweep finishes.
        """
        with self._admin_lock:
            if self._closed:
                return
            self._closed = True
            states = list(self._tenants.values())
        try:
            if self.scrubber is not None:
                self.scrubber.stop()
        finally:
            first_error: Optional[BaseException] = None
            closers = []
            for state in states:
                if state.recipe_store is not None:
                    closers.append(state.recipe_store.close)
                if (
                    state.engine is not None
                    and state.engine is not self.engine
                ):
                    closers.append(state.engine.close)
            if self.engine is not None:
                closers.append(self.engine.close)
            for closer in closers:
                try:
                    closer()
                except BaseException as exc:  # keep sweeping, raise later
                    if first_error is None:
                        first_error = exc
            if first_error is not None:
                raise first_error

    def tenant_stats(
        self, tenant: str = DEFAULT_TENANT
    ) -> List[Tuple[str, int]]:
        """One tenant's logical counters (quota accounting view)."""
        state = self._tenant(tenant)
        with state.lock:
            return [
                ("logical_chunks", state.logical_chunks),
                ("logical_bytes", state.logical_bytes),
                ("stored_chunks", state.stored_chunks),
                ("duplicate_chunks", state.duplicate_chunks),
                ("files", len(state.recipes)),
                ("quarantined_recipes", len(state.quarantined_recipes)),
            ]

    def tenants(self) -> List[str]:
        """Materialized tenant ids (stable order for tests/tools)."""
        with self._admin_lock:
            return sorted(self._tenants)

    def stats(self):
        """Counters for the evaluation harness (aggregated over tenants)."""
        states = self._tenant_snapshot()
        files = 0
        for state in states:
            with state.lock:
                files += len(state.recipes)
        if self.in_memory:
            logical = sum(s.logical_chunks for s in states)
            duplicates = sum(s.duplicate_chunks for s in states)
            if self._memory_chunks is not None:
                with self._memory_lock:
                    unique = len(self._memory_chunks)
            else:
                unique = 0
                for state in states:
                    if state.memory_chunks is not None:
                        unique += len(state.memory_chunks)
            return [
                ("logical_chunks", logical),
                ("unique_chunks", unique),
                ("duplicate_chunks", duplicates),
                ("files", files),
                ("tenants", len(states)),
            ]
        engines = self._engines()
        totals = {
            "logical_chunks": 0,
            "unique_chunks": 0,
            "logical_bytes": 0,
            "unique_bytes": 0,
            "containers": 0,
        }
        for engine in engines:
            stats = engine.stats
            totals["logical_chunks"] += stats.logical_chunks
            totals["unique_chunks"] += stats.unique_chunks
            totals["logical_bytes"] += stats.logical_bytes
            totals["unique_bytes"] += stats.unique_bytes
            totals["containers"] += engine.containers.container_count()
        pairs = [
            ("logical_chunks", totals["logical_chunks"]),
            ("unique_chunks", totals["unique_chunks"]),
            ("logical_bytes", totals["logical_bytes"]),
            ("unique_bytes", totals["unique_bytes"]),
            ("files", files),
            ("containers", totals["containers"]),
            ("tenants", len(states)),
        ]
        if self.ring is not None:
            pairs.append(("shards", len(self.ring)))
            pairs.append(("ring_epoch", self.ring.epoch))
        return pairs
