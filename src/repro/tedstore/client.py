"""TEDStore client: chunk, fingerprint, hash, key-gen, encrypt, upload.

The client implements the full upload/download pipeline of Figure 1:

1. **Chunking** — content-defined chunking of the file data (§4).
2. **Fingerprinting** — cryptographic hash of each plaintext chunk.
3. **Hashing** — one MurmurHash3 per chunk, split into ``r`` short hashes.
4. **Key seeding** — short hashes go to the key manager in batches
   (default 48,000 per batch, §3.5); seeds come back.
5. **Key derivation** — ``K = H(seed || P)`` (Eq. 4), client-side.
6. **Encryption** — deterministic symmetric encryption of each chunk.
7. **Write** — ciphertext chunks (keyed by *ciphertext* fingerprint) are
   uploaded in batches; the provider deduplicates.

The client also builds the file recipe (ciphertext fingerprints + sizes)
and the key recipe (per-chunk keys), seals both under its master key, and
uploads them (§2.2). Every step is attributed to a
:class:`~repro.utils.timer.StageTimer` using the paper's step names so
Experiments B.1/B.4 can report the same breakdown tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.chunking.cdc import ChunkerParams, ContentDefinedChunker
from repro.core.keygen import derive_key
from repro.crypto.cipher import SECURE, CipherProfile
from repro.crypto.hashes import digest
from repro.crypto.murmur3 import short_hashes
from repro.obs import metrics as obs_metrics, tracing
from repro.storage.dedup import FingerprintCache
from repro.storage.recipe import FileRecipe, KeyRecipe, seal, unseal
from repro.tedstore.messages import (
    GetChunks,
    GetRecipes,
    KeyGenRequest,
    PutChunks,
    PutRecipes,
)
from repro.tedstore.transports import KeyManagerTransport, ProviderTransport
from repro.utils.timer import StageTimer

DEFAULT_BATCH_SIZE = 48_000

_REGISTRY = obs_metrics.get_registry()
_CLIENT_OPS = _REGISTRY.counter(
    "ted_client_operations_total",
    "Completed client file operations",
    labelnames=("op",),
)
_CLIENT_BYTES = _REGISTRY.counter(
    "ted_client_bytes_total",
    "Logical bytes moved by the client",
    labelnames=("op",),
)
_CLIENT_CHUNKS = _REGISTRY.counter(
    "ted_client_chunks_total",
    "Chunks moved by the client",
    labelnames=("op",),
)


@dataclass
class UploadResult:
    """Outcome of one file upload.

    ``duplicate_chunks`` counts every chunk that did not create new
    physical storage, whether the provider detected the duplicate or the
    client's fingerprint cache short-circuited the upload entirely;
    ``cache_hits`` is the subset resolved client-side, so
    ``stored_chunks + duplicate_chunks == chunk_count`` holds on every
    path (serial, pipelined, cached).
    """

    file_name: str
    logical_bytes: int
    chunk_count: int
    stored_chunks: int
    duplicate_chunks: int
    cache_hits: int = 0


class TedStoreClient:
    """One TEDStore client (one user of the organization).

    Args:
        key_manager: transport to the key manager.
        provider: transport to the provider.
        master_key: per-client master key protecting recipes.
        profile: cipher/hash profile ("secure", "fast", or "shactr").
        sketch_rows / sketch_width: must match the key manager's sketch
            geometry — the client computes the short hashes (§3.3).
        batch_size: chunks per key-generation round trip (§3.5).
        chunker: content-defined chunker (paper defaults 4/8/16 KB).
        timer: optional stage timer; a fresh one is created if omitted.
        workers: encrypt worker threads. With ``workers > 1`` (or a
            fingerprint cache) uploads run through the pipelined path
            (:mod:`repro.tedstore.pipeline`), which is bit-identical to
            the serial path by construction (DESIGN.md §10).
        pipeline_depth: bounded-queue depth between pipeline stages —
            the backpressure knob capping in-flight sub-batches.
        fingerprint_cache: optional client-side
            :class:`~repro.storage.dedup.FingerprintCache`; hits skip
            encryption and upload for chunks already at the provider.
        crypto_workers: if > 0, encrypt jobs run in a pool of this many
            OS processes instead of in the worker threads, sidestepping
            the GIL for CPU-bound profiles. Implies the pipelined path;
            byte-identical output since the re-sequencing uploader
            restores chunk order and encryption is a pure function of
            (profile, key, chunk) (DESIGN.md §16).
    """

    def __init__(
        self,
        key_manager: KeyManagerTransport,
        provider: ProviderTransport,
        master_key: bytes = b"\x01" * 32,
        profile: CipherProfile = SECURE,
        sketch_rows: int = 4,
        sketch_width: int = 2**21,
        batch_size: int = DEFAULT_BATCH_SIZE,
        chunker: Optional[ContentDefinedChunker] = None,
        timer: Optional[StageTimer] = None,
        metadata_dedup: bool = False,
        metadata_entries_per_chunk: int = 128,
        workers: int = 1,
        pipeline_depth: int = 4,
        fingerprint_cache: Optional["FingerprintCache"] = None,
        crypto_workers: int = 0,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be at least 1")
        if crypto_workers < 0:
            raise ValueError("crypto_workers must be non-negative")
        self.key_manager = key_manager
        self.provider = provider
        self.master_key = master_key
        self.profile = profile
        self.sketch_rows = sketch_rows
        self.sketch_width = sketch_width
        self.batch_size = batch_size
        self.chunker = chunker or ContentDefinedChunker(ChunkerParams())
        self.timer = timer or StageTimer()
        # Metadata deduplication (Metadedup-style, DESIGN.md §6): recipes
        # are split into content-keyed metadata chunks that ride the normal
        # chunk path and deduplicate across snapshots; only a compact meta
        # recipe stays sealed per file.
        self.metadata_dedup = metadata_dedup
        self.metadata_entries_per_chunk = metadata_entries_per_chunk
        self.workers = workers
        self.pipeline_depth = pipeline_depth
        self.fingerprint_cache = fingerprint_cache
        self.crypto_workers = crypto_workers

    @property
    def pipelined(self) -> bool:
        """Whether transfers take the pipelined paths (DESIGN.md §§10–11).

        Uploads go through :mod:`repro.tedstore.pipeline`, downloads
        through :mod:`repro.tedstore.restore_pipeline`; both are
        byte-identical to their serial counterparts by construction.
        """
        return (
            self.workers > 1
            or self.crypto_workers > 0
            or self.fingerprint_cache is not None
        )

    # -- upload ---------------------------------------------------------------

    def upload(self, file_name: str, data: bytes) -> UploadResult:
        """Chunk and upload a file's raw bytes.

        On the pipelined path the chunker output streams straight into
        the pipeline's feed stage, so chunking overlaps keygen, encrypt,
        and upload instead of completing before they start.
        """
        if self.pipelined:
            return self._upload_chunks(file_name, self._chunk_stream(data))
        with self.timer.stage("chunking"):
            chunks = list(self.chunker.chunk(data))
        return self._upload_chunks(file_name, chunks)

    def _chunk_stream(self, data: bytes) -> Iterable[bytes]:
        """Chunk lazily, attributing time to the chunking stage."""
        iterator = iter(self.chunker.chunk(data))
        while True:
            with self.timer.stage("chunking"):
                try:
                    chunk = next(iterator)
                except StopIteration:
                    return
            yield chunk

    def upload_chunks(
        self, file_name: str, chunks: Sequence[bytes]
    ) -> UploadResult:
        """Upload pre-chunked data (the trace-replay path, §5.3.2)."""
        return self._upload_chunks(file_name, chunks)

    def _upload_chunks(
        self, file_name: str, chunks: Iterable[bytes]
    ) -> UploadResult:
        try:
            count = len(chunks)  # type: ignore[arg-type]
        except TypeError:
            count = -1  # streaming feed: total unknown until chunked
        with tracing.get_tracer().span(
            "client.upload",
            attributes={"file": file_name, "chunks": count},
        ):
            if self.pipelined:
                result = self._upload_chunks_pipelined(file_name, chunks)
            else:
                result = self._upload_chunks_inner(file_name, chunks)
        _CLIENT_OPS.labels(op="upload").inc()
        _CLIENT_BYTES.labels(op="upload").inc(result.logical_bytes)
        _CLIENT_CHUNKS.labels(op="upload").inc(result.chunk_count)
        return result

    def _upload_chunks_pipelined(
        self, file_name: str, chunks: Iterable[bytes]
    ) -> UploadResult:
        from repro.tedstore.pipeline import PipelinedUploader

        if self.fingerprint_cache is not None:
            # A reshard moves fingerprint ownership between provider
            # shards; cached "duplicate" verdicts from the old placement
            # must not suppress uploads under the new one. The provider
            # advertises its ring epoch; any advance drops the cache.
            ring_epoch = getattr(self.provider, "ring_epoch", None)
            if callable(ring_epoch):
                self.fingerprint_cache.advance_epoch(ring_epoch())
        uploader = PipelinedUploader(self)
        uploader.run(file_name, chunks)
        with self.timer.stage("write"):
            self._put_recipes(
                file_name, uploader.file_recipe, uploader.key_recipe
            )
        return UploadResult(
            file_name=file_name,
            logical_bytes=uploader.logical_bytes,
            chunk_count=uploader.chunk_count,
            stored_chunks=uploader.stored,
            duplicate_chunks=uploader.duplicates,
            cache_hits=uploader.cache_hits,
        )

    def _upload_chunks_inner(
        self, file_name: str, chunks: Sequence[bytes]
    ) -> UploadResult:
        algorithm = self.profile.hash_algorithm
        file_recipe = FileRecipe(file_name=file_name)
        key_recipe = KeyRecipe()
        stored = 0
        duplicates = 0
        logical = 0

        for start in range(0, len(chunks), self.batch_size):
            batch = chunks[start : start + self.batch_size]

            with self.timer.stage("fingerprinting"):
                fingerprints = [digest(c, algorithm) for c in batch]

            # Short hashes are computed over the chunk *fingerprint* rather
            # than the raw chunk: the client has just computed the
            # fingerprint anyway, the counter mapping is statistically
            # identical, and it keeps the MurmurHash pass off the
            # full-data path (the C++ prototype murmurs whole chunks
            # because Murmur is nearly free there; in Python it is not).
            with self.timer.stage("hashing"):
                hash_vectors = [
                    short_hashes(fp, self.sketch_rows, self.sketch_width)
                    for fp in fingerprints
                ]

            with self.timer.stage("key seeding"):
                response = self.key_manager.keygen(
                    KeyGenRequest(hash_vectors=hash_vectors)
                )
            if len(response.seeds) != len(batch):
                raise RuntimeError(
                    "key manager returned a mismatched seed batch"
                )

            with self.timer.stage("key derivation"):
                keys = [
                    derive_key(seed, fp, algorithm)
                    for seed, fp in zip(response.seeds, fingerprints)
                ]

            with self.timer.stage("encryption"):
                ciphertexts = [
                    self.profile.encrypt(key, chunk)
                    for key, chunk in zip(keys, batch)
                ]
                cipher_fps = [
                    digest(ct, algorithm) for ct in ciphertexts
                ]

            with self.timer.stage("write"):
                result = self.provider.put_chunks(
                    PutChunks(chunks=list(zip(cipher_fps, ciphertexts)))
                )
            stored += result.stored
            duplicates += result.duplicates

            for chunk, cipher_fp, key in zip(batch, cipher_fps, keys):
                file_recipe.add(cipher_fp, len(chunk))
                key_recipe.add(key)
                logical += len(chunk)

        with self.timer.stage("write"):
            self._put_recipes(file_name, file_recipe, key_recipe)
        return UploadResult(
            file_name=file_name,
            logical_bytes=logical,
            chunk_count=len(chunks),
            stored_chunks=stored,
            duplicate_chunks=duplicates,
        )

    def _put_recipes(
        self,
        file_name: str,
        file_recipe: FileRecipe,
        key_recipe: KeyRecipe,
    ) -> None:
        """Seal and upload recipes (shared by serial and pipelined paths)."""
        if self.metadata_dedup:
            from repro.storage.metadedup import pack_metadata_chunks

            meta_chunks, meta_plain = pack_metadata_chunks(
                file_recipe,
                key_recipe,
                self.metadata_entries_per_chunk,
            )
            if meta_chunks:
                self.provider.put_chunks(PutChunks(chunks=meta_chunks))
            # An empty sealed key recipe marks the metadata-dedup
            # layout; the file slot carries the sealed meta recipe.
            self.provider.put_recipes(
                PutRecipes(
                    file_name=file_name,
                    sealed_file_recipe=seal(self.master_key, meta_plain),
                    sealed_key_recipe=b"",
                )
            )
        else:
            self.provider.put_recipes(
                PutRecipes(
                    file_name=file_name,
                    sealed_file_recipe=seal(
                        self.master_key, file_recipe.serialize()
                    ),
                    sealed_key_recipe=seal(
                        self.master_key, key_recipe.serialize()
                    ),
                )
            )

    # -- observability ----------------------------------------------------------

    def transport_stats(self) -> dict:
        """Counters from both transports, keyed by entity.

        Over TCP this includes the wire-robustness counters — client-side
        ``client_retries`` / ``client_reconnects`` / ``client_timeouts``
        and the server-side ``server_*`` guards — so tests and operators
        can see recoveries that the request/response API papers over.

        Transports without their own ``stats()`` (e.g. in-process local
        transports) fall back to a snapshot of the process-global metrics
        registry, tagged with the transport class name — never a silent
        empty dict, so misconfigured wiring stays visible.
        """
        stats = {}
        for name, transport in (
            ("key_manager", self.key_manager),
            ("provider", self.provider),
        ):
            getter = getattr(transport, "stats", None)
            if getter is not None:
                entry = dict(getter())
            else:
                entry = dict(_REGISTRY.snapshot_pairs())
            entry["transport"] = type(transport).__name__
            stats[name] = entry
        return stats

    # -- download ----------------------------------------------------------------

    def download(self, file_name: str) -> bytes:
        """Fetch, decrypt, and reassemble a file.

        Raises:
            FileNotFoundError: no such file in this tenant's namespace
                (typed ``MSG_NOT_FOUND`` reply over the wire; never
                retried).
            KeyError: a recipe names a chunk the provider does not hold.
            ValueError: recipe authentication failure (wrong master key or
                tampering), or a chunk that decrypts to the wrong size.
        """
        with tracing.get_tracer().span(
            "client.download", attributes={"file": file_name}
        ):
            if self.pipelined:
                data = self._download_pipelined(file_name)
            else:
                data = self._download_inner(file_name)
        _CLIENT_OPS.labels(op="download").inc()
        _CLIENT_BYTES.labels(op="download").inc(len(data))
        return data

    def _get_chunks_checked(
        self, fingerprints: Sequence[bytes]
    ) -> List[bytes]:
        """One ``GetChunks`` round trip, reply length verified.

        A short reply would otherwise be silently swallowed by ``zip``
        downstream, truncating the restored file with no error.
        """
        chunks = self.provider.get_chunks(
            GetChunks(fingerprints=list(fingerprints))
        ).chunks
        if len(chunks) != len(fingerprints):
            raise ValueError(
                f"provider returned {len(chunks)} chunks for a request "
                f"of {len(fingerprints)}"
            )
        return chunks

    def _fetch_recipes(
        self, file_name: str
    ) -> Tuple[FileRecipe, KeyRecipe]:
        """Fetch and unseal a file's recipes (either storage layout)."""
        recipes = self.provider.get_recipes(
            GetRecipes(file_name=file_name)
        )
        if not recipes.sealed_key_recipe:
            # Metadata-dedup layout: the file slot holds a meta recipe
            # whose metadata chunks live on the normal chunk path.
            from repro.storage.metadedup import unpack_metadata_chunks

            meta_plain = unseal(
                self.master_key, recipes.sealed_file_recipe
            )
            file_recipe, key_recipe = unpack_metadata_chunks(
                meta_plain, fetch=self._get_chunks_checked
            )
        else:
            file_recipe = FileRecipe.deserialize(
                unseal(self.master_key, recipes.sealed_file_recipe)
            )
            key_recipe = KeyRecipe.deserialize(
                unseal(self.master_key, recipes.sealed_key_recipe)
            )
        if len(file_recipe.entries) != len(key_recipe.keys):
            raise ValueError(
                "file and key recipes disagree on chunk count"
            )
        return file_recipe, key_recipe

    def _download_pipelined(self, file_name: str) -> bytes:
        from repro.tedstore.restore_pipeline import PipelinedDownloader

        with self.timer.stage("recipe fetch"):
            file_recipe, key_recipe = self._fetch_recipes(file_name)
        downloader = PipelinedDownloader(self)
        data = downloader.run(
            file_name, file_recipe.entries, key_recipe.keys
        )
        _CLIENT_CHUNKS.labels(op="download").inc(
            len(file_recipe.entries)
        )
        return data

    def _download_inner(self, file_name: str) -> bytes:
        with self.timer.stage("recipe fetch"):
            file_recipe, key_recipe = self._fetch_recipes(file_name)

        pieces: List[bytes] = []
        entries = file_recipe.entries
        keys = key_recipe.keys
        for start in range(0, len(entries), self.batch_size):
            batch_entries = entries[start : start + self.batch_size]
            batch_keys = keys[start : start + self.batch_size]
            with self.timer.stage("chunk fetch"):
                chunks = self._get_chunks_checked(
                    [fp for fp, _ in batch_entries]
                )
            _CLIENT_CHUNKS.labels(op="download").inc(len(chunks))
            with self.timer.stage("decryption"):
                for (fp, size), key, ciphertext in zip(
                    batch_entries, batch_keys, chunks
                ):
                    plaintext = self.profile.decrypt(key, ciphertext)
                    if len(plaintext) != size:
                        raise ValueError(
                            f"chunk {fp.hex()} decrypted to {len(plaintext)} "
                            f"bytes, expected {size}"
                        )
                    pieces.append(plaintext)
        return b"".join(pieces)

    # -- key generation only (Experiment B.2) -------------------------------------

    def generate_keys_only(
        self, chunks: Iterable[bytes]
    ) -> List[Tuple[bytes, bytes]]:
        """Run only the key-generation pipeline: hash → seed → derive.

        Returns per-chunk ``(fingerprint, key)`` pairs. This isolates the
        steps Experiment B.2 measures (hashing + key seeding + key
        derivation) from chunk encryption and upload.
        """
        algorithm = self.profile.hash_algorithm
        chunk_list = list(chunks)
        output: List[Tuple[bytes, bytes]] = []
        for start in range(0, len(chunk_list), self.batch_size):
            batch = chunk_list[start : start + self.batch_size]
            fingerprints = [digest(c, algorithm) for c in batch]
            hash_vectors = [
                short_hashes(fp, self.sketch_rows, self.sketch_width)
                for fp in fingerprints
            ]
            response = self.key_manager.keygen(
                KeyGenRequest(hash_vectors=hash_vectors)
            )
            output.extend(
                (fp, derive_key(seed, fp, algorithm))
                for seed, fp in zip(response.seeds, fingerprints)
            )
        return output
