"""TEDStore: the networked encrypted-deduplication prototype (paper §4)."""

from repro.tedstore.client import TedStoreClient, UploadResult
from repro.tedstore.faults import (
    FaultPlan,
    FaultyKeyManager,
    FaultyProvider,
    FaultyQuorumServer,
    InjectedFault,
)
from repro.tedstore.inprocess import LocalKeyManager, LocalProvider
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.network import (
    RemoteKeyManager,
    RemoteProvider,
    ServerBusy,
    ServerHandle,
    serve_key_manager,
    serve_provider,
)
from repro.tedstore.provider import ProviderService
from repro.tedstore.quorum import (
    QuorumClient,
    QuorumKeyServer,
    deal_quorum,
)
from repro.tedstore.ratelimit import KeyGenRateLimiter, RateLimitExceeded
from repro.tedstore.reshard import (
    ReshardError,
    reshard_km,
    reshard_provider,
    run_reshard,
)
from repro.tedstore.retry import (
    DeadlineExceeded,
    RetriesExhausted,
    RetryPolicy,
    retry_call,
)
from repro.tedstore.ring import HashRing, load_ring, store_ring
from repro.tedstore.sharding import ShardedKeyManager, ShardRoutingProvider

__all__ = [
    "QuorumClient",
    "QuorumKeyServer",
    "deal_quorum",
    "KeyGenRateLimiter",
    "RateLimitExceeded",
    "TedStoreClient",
    "UploadResult",
    "LocalKeyManager",
    "LocalProvider",
    "KeyManagerService",
    "RemoteKeyManager",
    "RemoteProvider",
    "ServerBusy",
    "ServerHandle",
    "serve_key_manager",
    "serve_provider",
    "ProviderService",
    "FaultPlan",
    "FaultyKeyManager",
    "FaultyProvider",
    "FaultyQuorumServer",
    "InjectedFault",
    "DeadlineExceeded",
    "RetriesExhausted",
    "RetryPolicy",
    "retry_call",
    "HashRing",
    "load_ring",
    "store_ring",
    "ShardedKeyManager",
    "ShardRoutingProvider",
    "ReshardError",
    "reshard_km",
    "reshard_provider",
    "run_reshard",
]
