"""Consistent-hash ring for sharding the key manager and provider.

Both sides of TEDStore shard by fingerprint range (ROADMAP item 2): the
key manager routes each chunk's short-hash vector, the provider routes
each cipher fingerprint. Because a given identity always hashes to the
same point on the ring, it always lands on the same shard — which is
the whole correctness argument for sharded TED (DESIGN.md §15): every
per-shard Count-Min sketch sees *all* occurrences of every identity it
owns, so per-shard frequency estimates are exactly what a single
sketch would have produced for that identity (Eqs. 2–4 unchanged).

The ring is classic seeded-virtual-node consistent hashing:

* every shard contributes ``vnodes`` points, each the first 8 bytes of
  ``sha256("ring:<seed>:<shard>:<vnode>")`` — deterministic across
  processes and machines, so clients and servers built from the same
  ``(seed, vnodes, shards)`` config agree on placement without talking;
* a key routes to the shard owning the first point at or after the
  key's own hash (wrapping at the top);
* adding a shard only moves keys onto the new shard; removing one only
  scatters that shard's keys — the monotonicity that makes
  ``repro reshard`` migrations proportional to ``1/N`` of the data.

The ring config is plain JSON (``ring.json`` at the storage / KM state
root), written atomically through the crash-injection shim so a torn
write can never leave a half-ring behind. ``epoch`` increments on every
membership change; caches keyed by placement (the client
:class:`~repro.storage.dedup.FingerprintCache`) invalidate on epoch
advance (DESIGN.md §15).

For multi-process deployments (DESIGN.md §17) the ring optionally
carries a per-shard **endpoint map** (``shard id -> "host:port"``).
Endpoints describe *where* a shard is served, never *what* it owns:
they are excluded from placement equality and from the serialized form
when empty, so endpoint-less rings stay byte-identical to the PR 8
format and an in-process deployment can adopt a ring written by a
fleet (or vice versa) without a placement mismatch.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.storage import crash

DEFAULT_VNODES = 64

_RING_VERSION = 1


def _vnode_point(seed: int, shard: int, vnode: int) -> int:
    digest = hashlib.sha256(
        b"ring:%d:%d:%d" % (seed, shard, vnode)
    ).digest()
    return int.from_bytes(digest[:8], "big")


def _key_point(key: bytes) -> int:
    return int.from_bytes(hashlib.sha256(b"key:" + key).digest()[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring over integer shard ids.

    Args:
        shards: the member shard ids (conventionally ``0..N-1``).
        vnodes: virtual nodes per shard; more vnodes → better balance.
        seed: placement seed — rings with different seeds place keys
            differently, rings with the same config place identically.
        epoch: membership generation, bumped by :meth:`add_shard` /
            :meth:`remove_shard` (and hence by ``repro reshard``).
        endpoints: optional ``shard id -> "host:port"`` map naming where
            each shard is served (multi-process deployments). Advisory
            topology only — never part of placement or equality.

    Example:
        >>> ring = HashRing.build(3)
        >>> ring.shard_for_key(b"fingerprint") in (0, 1, 2)
        True
    """

    def __init__(
        self,
        shards: Sequence[int],
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0,
        epoch: int = 0,
        endpoints: Optional[Dict[int, str]] = None,
    ) -> None:
        if not shards:
            raise ValueError("a ring needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ValueError("duplicate shard ids in ring")
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.shards: Tuple[int, ...] = tuple(sorted(int(s) for s in shards))
        self.vnodes = int(vnodes)
        self.seed = int(seed)
        self.epoch = int(epoch)
        self.endpoints: Dict[int, str] = {
            int(k): str(v) for k, v in (endpoints or {}).items()
        }
        unknown = set(self.endpoints) - set(self.shards)
        if unknown:
            raise ValueError(
                f"endpoints name shards not in the ring: {sorted(unknown)}"
            )
        # Sorted (point, shard) pairs; ties broken by shard id so the
        # ring is a pure function of its config.
        points: List[Tuple[int, int]] = []
        for shard in self.shards:
            for vnode in range(self.vnodes):
                points.append((_vnode_point(self.seed, shard, vnode), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    @classmethod
    def build(
        cls, count: int, vnodes: int = DEFAULT_VNODES, seed: int = 0
    ) -> "HashRing":
        """A fresh epoch-0 ring over shards ``0..count-1``."""
        if count < 1:
            raise ValueError("shard count must be at least 1")
        return cls(range(count), vnodes=vnodes, seed=seed)

    # -- placement ---------------------------------------------------------

    def shard_for_key(self, key: bytes) -> int:
        """Owning shard for a byte key (a cipher fingerprint)."""
        index = bisect.bisect_left(self._points, _key_point(key))
        if index == len(self._points):  # wrap past the top of the ring
            index = 0
        return self._owners[index]

    def shard_for_hashes(self, short_hashes: Sequence[int]) -> int:
        """Owning shard for a chunk's short-hash vector (the KM side).

        The KM never sees fingerprints, only the ``r`` short hashes per
        chunk — the canonical encoding below is the identity the ring
        hashes, so the same vector always routes to the same shard.
        """
        return self.shard_for_key(
            ":".join(str(int(h)) for h in short_hashes).encode("ascii")
        )

    # -- endpoints ---------------------------------------------------------

    def endpoint_for(self, shard: int) -> Optional[str]:
        """The ``host:port`` serving ``shard``, if one is published."""
        return self.endpoints.get(int(shard))

    def with_endpoints(self, endpoints: Dict[int, str]) -> "HashRing":
        """The same placement (same epoch) with a new endpoint map."""
        return HashRing(
            self.shards,
            vnodes=self.vnodes,
            seed=self.seed,
            epoch=self.epoch,
            endpoints=endpoints,
        )

    # -- membership --------------------------------------------------------

    def add_shard(self, shard: Optional[int] = None) -> "HashRing":
        """A new ring with one more shard and ``epoch + 1``."""
        if shard is None:
            shard = max(self.shards) + 1
        if shard in self.shards:
            raise ValueError(f"shard {shard} already in ring")
        return HashRing(
            self.shards + (int(shard),),
            vnodes=self.vnodes,
            seed=self.seed,
            epoch=self.epoch + 1,
            endpoints=self.endpoints,
        )

    def remove_shard(self, shard: int) -> "HashRing":
        """A new ring without ``shard`` and ``epoch + 1``."""
        if shard not in self.shards:
            raise ValueError(f"shard {shard} not in ring")
        if len(self.shards) == 1:
            raise ValueError("cannot remove the last shard")
        return HashRing(
            tuple(s for s in self.shards if s != shard),
            vnodes=self.vnodes,
            seed=self.seed,
            epoch=self.epoch + 1,
            endpoints={
                k: v for k, v in self.endpoints.items() if k != shard
            },
        )

    # -- config ------------------------------------------------------------

    def placement_dict(self) -> Dict[str, object]:
        """The placement-defining config (endpoints excluded)."""
        return {
            "version": _RING_VERSION,
            "seed": self.seed,
            "vnodes": self.vnodes,
            "epoch": self.epoch,
            "shards": list(self.shards),
        }

    def to_dict(self) -> Dict[str, object]:
        data = self.placement_dict()
        if self.endpoints:
            # Omitted when empty so endpoint-less rings serialize
            # byte-identically to the pre-endpoint (PR 8) format.
            data["endpoints"] = {
                str(k): v for k, v in sorted(self.endpoints.items())
            }
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HashRing":
        version = data.get("version")
        if version != _RING_VERSION:
            raise ValueError(f"unsupported ring config version: {version!r}")
        endpoints = {
            int(k): str(v)
            for k, v in (data.get("endpoints") or {}).items()  # type: ignore[union-attr]
        }
        return cls(
            data["shards"],  # type: ignore[arg-type]
            vnodes=int(data["vnodes"]),  # type: ignore[arg-type]
            seed=int(data["seed"]),  # type: ignore[arg-type]
            epoch=int(data["epoch"]),  # type: ignore[arg-type]
            endpoints=endpoints,
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "HashRing":
        return cls.from_dict(json.loads(text))

    def __eq__(self, other: object) -> bool:
        # Placement equality only: two rings that agree on who owns what
        # are "the same ring" even if one also knows where shards live.
        return (
            isinstance(other, HashRing)
            and self.placement_dict() == other.placement_dict()
        )

    def __len__(self) -> int:
        return len(self.shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HashRing(shards={self.shards}, vnodes={self.vnodes}, "
            f"seed={self.seed}, epoch={self.epoch})"
        )


def store_ring(path, ring: HashRing) -> None:
    """Atomically persist ``ring`` as JSON (torn-write safe)."""
    crash.atomic_write_bytes(
        Path(path), ring.to_json().encode("utf-8") + b"\n", scope="ring.config"
    )


def load_ring(path) -> HashRing:
    """Load a ring config previously written by :func:`store_ring`."""
    return HashRing.from_json(Path(path).read_text("utf-8"))


__all__ = [
    "DEFAULT_VNODES",
    "HashRing",
    "load_ring",
    "store_ring",
]
