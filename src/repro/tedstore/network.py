"""TCP deployment of TEDStore: threaded servers and client stubs.

One server per entity (key manager, provider), each accepting persistent
connections from any number of clients; every connection is served by its
own thread, mirroring the paper's multi-threaded prototype (§4). The wire
format is :mod:`repro.tedstore.messages`. Servers bind to an ephemeral port
by default so tests and benchmarks can run many instances concurrently.

Robustness (DESIGN.md §8):

* **Client** — a failed ``call()`` leaves the stream desynchronized (a late
  reply would be misread as the answer to the next request), so any
  transport error closes the socket; idempotent requests then reconnect and
  retry under a configurable :class:`~repro.tedstore.retry.RetryPolicy`.
  ``MSG_BUSY`` replies are retried without reconnecting — the stream is
  still in sync, the server just shed load.
* **Server** — per-connection idle timeouts release handler threads pinned
  by stalled peers, a max-inflight guard sheds load with ``MSG_BUSY``
  instead of queueing unboundedly, and shutdown drains in-flight requests
  before closing connections.
* **Observability** (DESIGN.md §9) — both sides count retries, reconnects,
  timeouts, and busy rejections on the metrics registry; the wire ``stats``
  message serves the legacy counter names plus a full registry snapshot.
  Requests carry an optional trace context (high bit of the type byte), so
  a client upload is one coherent trace across the key manager and the
  provider; connections to old peers that reject the flagged type byte
  downgrade to untraced frames transparently.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Dict, List, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.tedstore import messages as m
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.provider import DEFAULT_TENANT, ProviderService
from repro.tedstore.retry import RetryPolicy

DEFAULT_IDLE_TIMEOUT = 300.0

_REGISTRY = obs_metrics.get_registry()
# Legacy wire-counter names map 1:1 onto these registry instruments; the
# per-server/per-connection dicts remain the source for the legacy stats
# keys, while the registry aggregates across all connections of a process.
_SERVER_WIRE = _REGISTRY.counter(
    "ted_wire_server_events_total",
    "Server-side wire events (connections, timeouts, rejections)",
    labelnames=("entity", "event"),
)
_SERVER_REQUEST_SECONDS = _REGISTRY.histogram(
    "ted_wire_server_request_seconds",
    "Server-side request dispatch latency",
    labelnames=("entity",),
)
_CLIENT_WIRE = _REGISTRY.counter(
    "ted_wire_client_events_total",
    "Client-side wire events (calls, retries, reconnects, timeouts, busy, "
    "trace downgrades)",
    labelnames=("entity", "event"),
)
_CLIENT_CALL_SECONDS = _REGISTRY.histogram(
    "ted_wire_client_call_seconds",
    "Client-side request/response latency including retries",
    labelnames=("entity",),
)


class ServerBusy(ConnectionError):
    """The server shed this request (max-inflight guard or draining)."""


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ConnectionError."""
    parts = []
    remaining = n
    while remaining:
        piece = sock.recv(min(remaining, 1 << 20))
        if not piece:
            raise ConnectionError("peer closed the connection")
        parts.append(piece)
        remaining -= len(piece)
    return b"".join(parts)


class _Server(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        server_address: Tuple[str, int],
        handler_class,
        idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
        max_inflight: Optional[int] = None,
        entity: str = "server",
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        super().__init__(server_address, handler_class)
        self.idle_timeout = idle_timeout
        self.max_inflight = max_inflight
        self.entity = entity
        self.draining = False
        self._inflight = 0
        self._state = threading.Condition()
        self._active_sockets: set = set()
        self.wire_counters: Dict[str, int] = {
            "connections": 0,
            "idle_timeouts": 0,
            "busy_rejections": 0,
            "forced_disconnects": 0,
        }

    def _mirror(self, name: str, amount: int = 1) -> None:
        """Registry copy of a wire-counter increment."""
        _SERVER_WIRE.labels(entity=self.entity, event=name).inc(amount)

    # -- connection / request accounting --------------------------------------

    def register_connection(self, sock: socket.socket) -> None:
        with self._state:
            self._active_sockets.add(sock)
            self.wire_counters["connections"] += 1
        self._mirror("connections")

    def unregister_connection(self, sock: socket.socket) -> None:
        with self._state:
            self._active_sockets.discard(sock)

    def count(self, name: str) -> None:
        with self._state:
            self.wire_counters[name] += 1
        self._mirror(name)

    def try_begin_request(self) -> bool:
        """Claim an in-flight slot; False means reply ``MSG_BUSY``."""
        with self._state:
            if self.draining:
                return False
            if (
                self.max_inflight is not None
                and self._inflight >= self.max_inflight
            ):
                self.wire_counters["busy_rejections"] += 1
                self._mirror("busy_rejections")
                return False
            self._inflight += 1
            return True

    def end_request(self) -> None:
        with self._state:
            self._inflight -= 1
            self._state.notify_all()

    def drain(self, timeout: float) -> bool:
        """Stop admitting requests; wait for in-flight ones to finish."""
        with self._state:
            self.draining = True
            return self._state.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )

    def close_active_connections(self) -> None:
        with self._state:
            victims = list(self._active_sockets)
            self._active_sockets.clear()
            self.wire_counters["forced_disconnects"] += len(victims)
        if victims:
            self._mirror("forced_disconnects", len(victims))
        for sock in victims:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def stats_pairs(self) -> List[Tuple[str, int]]:
        """Server wire counters as stats-message pairs."""
        with self._state:
            return [
                (f"server_{name}", value)
                for name, value in self.wire_counters.items()
            ]


class _ServiceHandler(socketserver.BaseRequestHandler):
    """Per-connection loop: read frame, dispatch, reply."""

    def handle(self) -> None:
        sock = self.request
        server: _Server = self.server  # type: ignore[assignment]
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if server.idle_timeout is not None:
            # A stalled peer must not pin this handler thread forever.
            sock.settimeout(server.idle_timeout)
        dispatch = server.dispatch  # type: ignore[attr-defined]
        # Rate-limiting identity is the peer host (not host:port): a
        # brute-forcing client must not reset its budget by reconnecting.
        peer = str(self.client_address[0])
        # Per-connection dispatch state: the HELLO handshake binds this
        # connection to a tenant namespace (DESIGN.md §13). A connection
        # that never sends HELLO stays on the default tenant.
        conn_state: Dict[str, object] = {}
        server.register_connection(sock)
        tracer = tracing.get_tracer()
        try:
            while True:
                try:
                    message_type, payload, trace_ctx = m.read_frame_ex(
                        lambda n: _recv_exact(sock, n)
                    )
                except socket.timeout:
                    server.count("idle_timeouts")
                    return
                except (ConnectionError, OSError, m.ProtocolError):
                    return
                if not server.try_begin_request():
                    reply = m.frame(
                        m.MSG_BUSY, m.encode_error("server busy")
                    )
                else:
                    # A trace context from the peer makes this dispatch a
                    # child of the client's RPC span; a missing or
                    # unparseable context degrades to a fresh local trace.
                    remote_parent = tracing.decode_context(trace_ctx)
                    try:
                        with tracer.span(
                            f"server.{m.message_name(message_type)}",
                            attributes={"entity": server.entity, "peer": peer},
                            remote_parent=remote_parent,
                        ), _SERVER_REQUEST_SECONDS.labels(
                            entity=server.entity
                        ).time():
                            reply = dispatch(
                                message_type, payload, peer, conn_state
                            )
                    except FileNotFoundError as exc:
                        # Typed miss: the client raises this locally and
                        # never retries (the name simply does not exist).
                        reply = m.frame(
                            m.MSG_NOT_FOUND,
                            m.encode_not_found(m.NOT_FOUND_FILE, str(exc)),
                        )
                    except KeyError as exc:
                        # KeyError's str() is the repr of its argument;
                        # unwrap so the wire message has no quote noise.
                        message = (
                            str(exc.args[0]) if exc.args else str(exc)
                        )
                        reply = m.frame(
                            m.MSG_NOT_FOUND,
                            m.encode_not_found(m.NOT_FOUND_CHUNK, message),
                        )
                    except Exception as exc:  # report, keep connection alive
                        reply = m.frame(m.MSG_ERROR, m.encode_error(str(exc)))
                    finally:
                        server.end_request()
                try:
                    sock.sendall(reply)
                except OSError:
                    return
                if server.draining:
                    return
        finally:
            server.unregister_connection(sock)


class ServerHandle:
    """A running server plus its lifecycle controls."""

    def __init__(self, server: _Server) -> None:
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) the server is listening on."""
        return self._server.server_address  # type: ignore[return-value]

    def wire_stats(self) -> Dict[str, int]:
        """Server-side wire counters (connections, timeouts, rejections)."""
        return dict(self._server.stats_pairs())

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Gracefully shut down: drain in-flight requests, then close.

        New requests are rejected with ``MSG_BUSY`` while draining; after
        ``drain_timeout`` seconds any still-open connections are closed
        forcibly so the accept thread can always be joined.
        """
        self._server.drain(timeout=drain_timeout)
        self._server.shutdown()
        self._server.close_active_connections()
        self._server.server_close()
        self._thread.join(timeout=5)

    def kill(self) -> None:
        """Hard stop: close every connection without draining.

        Fault-injection hook for tests — equivalent to the process dying
        mid-request.
        """
        with self._server._state:
            self._server.draining = True
        self._server.shutdown()
        self._server.close_active_connections()
        self._server.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _pong_frame(
    role: str,
    service: object,
    shard_id: int,
    epoch_override: Optional[int] = None,
) -> bytes:
    """A PONG frame naming the serving role/shard and its ring epoch.

    ``epoch_override`` is for shard-leaf processes: the leaf service
    itself has no ring (its store is one shard's directory), so the
    serving process reports the deployment ring's epoch instead.
    """
    if epoch_override is not None:
        epoch = int(epoch_override)
    else:
        epoch_fn = getattr(service, "ring_epoch", None)
        epoch = int(epoch_fn()) if callable(epoch_fn) else 0
    return m.frame(
        m.MSG_PONG,
        m.Pong(role=role, shard=shard_id, epoch=epoch).encode(),
    )


def serve_key_manager(
    service: KeyManagerService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
    max_inflight: Optional[int] = None,
) -> ServerHandle:
    """Start a key-manager server; returns its handle."""
    server = _Server(
        (host, port),
        _ServiceHandler,
        idle_timeout=idle_timeout,
        max_inflight=max_inflight,
        entity="keymanager",
    )

    def dispatch(
        message_type: int, payload: bytes, peer: str, conn_state: Dict
    ) -> bytes:
        if message_type == m.MSG_PING:
            return _pong_frame("keymanager", service, -1)
        if message_type == m.MSG_KEYGEN_REQUEST:
            response = service.handle_keygen(
                m.KeyGenRequest.decode(payload), client_id=peer
            )
            return m.frame(m.MSG_KEYGEN_RESPONSE, response.encode())
        if message_type == m.MSG_KEYGEN_BATCH_REQUEST:
            response = service.handle_keygen_batched(
                m.BatchedKeyGenRequest.decode(payload), client_id=peer
            )
            return m.frame(m.MSG_KEYGEN_BATCH_RESPONSE, response.encode())
        if message_type == m.MSG_STATS_REQUEST:
            return m.frame(
                m.MSG_STATS_RESPONSE,
                m.encode_stats(
                    service.stats()
                    + server.stats_pairs()
                    + _REGISTRY.snapshot_pairs()
                ),
            )
        return m.frame(
            m.MSG_ERROR, m.encode_error(f"unexpected message {message_type}")
        )

    server.dispatch = dispatch  # type: ignore[attr-defined]
    return ServerHandle(server)


def serve_provider(
    service: ProviderService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
    max_inflight: Optional[int] = None,
    shard_id: int = -1,
    ring_epoch: Optional[int] = None,
) -> ServerHandle:
    """Start a provider server; returns its handle.

    ``shard_id`` names the failure domain a ``repro serve-shard``
    process serves (echoed in PONG); ``-1`` means "the whole store".
    ``ring_epoch`` overrides the epoch reported in PONG for shard-leaf
    processes, whose service wraps a single shard directory and so has
    no ring of its own.
    """
    server = _Server(
        (host, port),
        _ServiceHandler,
        idle_timeout=idle_timeout,
        max_inflight=max_inflight,
        entity="provider",
    )

    def dispatch(
        message_type: int, payload: bytes, peer: str, conn_state: Dict
    ) -> bytes:
        tenant = conn_state.get("tenant", DEFAULT_TENANT)
        if message_type == m.MSG_PING:
            return _pong_frame("provider", service, shard_id, ring_epoch)
        if message_type == m.MSG_HELLO:
            hello = m.Hello.decode(payload)
            requested = hello.tenant or DEFAULT_TENANT
            service.authenticate(requested, hello.auth_token)
            conn_state["tenant"] = requested
            return m.frame(
                m.MSG_HELLO_OK,
                m.HelloOk(
                    tenant=requested,
                    cross_user_dedup=service.cross_user_dedup,
                ).encode(),
            )
        if message_type == m.MSG_PUT_CHUNKS:
            response = service.handle_put_chunks(
                m.PutChunks.decode(payload), tenant=tenant
            )
            return m.frame(m.MSG_PUT_CHUNKS_RESPONSE, response.encode())
        if message_type == m.MSG_GET_CHUNKS:
            response = service.handle_get_chunks(
                m.GetChunks.decode(payload), tenant=tenant
            )
            return m.frame(m.MSG_CHUNKS, response.encode())
        if message_type == m.MSG_PUT_RECIPES:
            service.handle_put_recipes(
                m.PutRecipes.decode(payload), tenant=tenant
            )
            return m.frame(m.MSG_OK, b"")
        if message_type == m.MSG_GET_RECIPES:
            response = service.handle_get_recipes(
                m.GetRecipes.decode(payload), tenant=tenant
            )
            return m.frame(m.MSG_RECIPES, response.encode())
        if message_type == m.MSG_STATS_REQUEST:
            tenant_pairs = [
                (f"tenant_{name}", value)
                for name, value in service.tenant_stats(tenant)
            ]
            return m.frame(
                m.MSG_STATS_RESPONSE,
                m.encode_stats(
                    service.stats()
                    + tenant_pairs
                    + server.stats_pairs()
                    + _REGISTRY.snapshot_pairs()
                ),
            )
        return m.frame(
            m.MSG_ERROR, m.encode_error(f"unexpected message {message_type}")
        )

    server.dispatch = dispatch  # type: ignore[attr-defined]
    return ServerHandle(server)


def serve_shard_observer(
    service,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
    max_inflight: Optional[int] = None,
) -> ServerHandle:
    """Start a KM sketch-observer shard server (DESIGN.md §17).

    ``service`` is a :class:`~repro.tedstore.sharding.ShardObserverService`
    (duck-typed to keep this module free of a sharding import): one
    durable Count-Min shard that answers ``MSG_SHARD_OBSERVE`` with the
    frequency estimates the front's seed selection needs.
    """
    server = _Server(
        (host, port),
        _ServiceHandler,
        idle_timeout=idle_timeout,
        max_inflight=max_inflight,
        entity="km_shard",
    )

    def dispatch(
        message_type: int, payload: bytes, peer: str, conn_state: Dict
    ) -> bytes:
        if message_type == m.MSG_PING:
            return _pong_frame(
                "km_shard", service, service.shard_id, service.ring_epoch()
            )
        if message_type == m.MSG_SHARD_OBSERVE:
            response = service.handle_observe(
                m.ShardObserveRequest.decode(payload), peer=peer
            )
            return m.frame(m.MSG_SHARD_ESTIMATES, response.encode())
        if message_type == m.MSG_STATS_REQUEST:
            return m.frame(
                m.MSG_STATS_RESPONSE,
                m.encode_stats(
                    service.stats()
                    + server.stats_pairs()
                    + _REGISTRY.snapshot_pairs()
                ),
            )
        return m.frame(
            m.MSG_ERROR, m.encode_error(f"unexpected message {message_type}")
        )

    server.dispatch = dispatch  # type: ignore[attr-defined]
    return ServerHandle(server)


def probe_endpoint(
    address: Tuple[str, int], timeout: float = 2.0
) -> m.Pong:
    """One-shot PING/PONG health probe against ``address``.

    Opens its own short-lived socket so probes never contend with (or
    get queued behind) real traffic on a pooled connection — a paused
    shard must not stall the health monitor's whole round. Raises on
    any failure: refused, timeout, or a non-PONG reply.
    """
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.settimeout(timeout)
        sock.sendall(m.frame(m.MSG_PING, b""))
        reply_type, reply = m.read_frame(lambda n: _recv_exact(sock, n))
    if reply_type != m.MSG_PONG:
        raise m.ProtocolError(f"unexpected probe reply type {reply_type}")
    return m.Pong.decode(reply)


def parse_endpoint(endpoint: str) -> Tuple[str, int]:
    """Split a ``host:port`` ring endpoint into an address tuple."""
    host, sep, port = endpoint.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"malformed endpoint {endpoint!r}")
    return host or "127.0.0.1", int(port)


class _Connection:
    """One persistent client connection with request/response semantics.

    Connects lazily and reconnects after any transport error: a failed
    exchange desynchronizes the stream (a late reply would be misread as
    the answer to the next request), so the socket is always closed on
    failure. Idempotent calls are then retried under ``retry_policy``.
    """

    _WIRE_ERRORS = (ConnectionError, socket.timeout, OSError)

    def __init__(
        self,
        address: Tuple[str, int],
        retry_policy: Optional[RetryPolicy] = None,
        connect_timeout: float = 10.0,
        io_timeout: float = 60.0,
        entity: str = "peer",
        propagate_trace: bool = True,
        hello: Optional[m.Hello] = None,
    ) -> None:
        self._address = address
        self._policy = retry_policy or RetryPolicy()
        self._connect_timeout = connect_timeout
        self._io_timeout = io_timeout
        self._entity = entity
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()
        self.counters: Dict[str, int] = {
            "calls": 0,
            "retries": 0,
            "reconnects": 0,
            "timeouts": 0,
            "busy": 0,
            "trace_downgrades": 0,
            "hello_downgrades": 0,
        }
        # Trace propagation is on by default and latches off for the life
        # of the connection if the peer rejects the flagged type byte (an
        # old-format peer) — interop beats telemetry.
        self._trace_peer = propagate_trace
        # Tenant handshake (DESIGN.md §13): sent on every (re)connect so
        # a reconnected socket is re-bound to the same tenant before any
        # retried request reaches the provider.
        self._hello = hello
        self.hello_ok: Optional[m.HelloOk] = None
        self._connect()

    def _count(self, name: str, amount: int = 1) -> None:
        """Bump a wire counter (caller holds ``self._lock``)."""
        self.counters[name] += amount
        _CLIENT_WIRE.labels(entity=self._entity, event=name).inc(amount)

    # -- socket lifecycle ------------------------------------------------------

    def _connect(self) -> None:
        sock = socket.create_connection(
            self._address, timeout=self._connect_timeout
        )
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            if self._hello is not None:
                self._handshake(sock)
        except BaseException:
            # A failure anywhere past create_connection — including the
            # server crashing mid-HELLO — must close the half-open
            # socket, or it leaks and the next reconnect would skip the
            # tenant rebind on a socket the server never acknowledged.
            self._sock = None
            try:
                sock.close()
            except OSError:
                pass
            raise

    def _handshake(self, sock: socket.socket) -> None:
        """Bind the fresh socket to our tenant (runs on every connect).

        Version tolerance mirrors the trace-flag downgrade: an old server
        answers ``MSG_ERROR "unexpected message"``; a *default-tenant*
        client then latches the handshake off (the server serves untagged
        connections as the default tenant anyway), while a named tenant
        cannot safely proceed and fails loudly.
        """
        assert self._hello is not None
        sock.settimeout(self._io_timeout)
        sock.sendall(m.frame(m.MSG_HELLO, self._hello.encode()))
        reply_type, reply = m.read_frame(lambda n: _recv_exact(sock, n))
        if reply_type == m.MSG_HELLO_OK:
            self.hello_ok = m.HelloOk.decode(reply)
            return
        if reply_type == m.MSG_BUSY:
            # The server shed the handshake; surface as a wire error so
            # the caller's retry loop reconnects (HELLO is read-only).
            raise ConnectionError(
                f"server busy during handshake: {m.decode_error(reply)}"
            )
        if reply_type == m.MSG_ERROR:
            error = m.decode_error(reply)
            if error.startswith("unexpected message"):
                if (self._hello.tenant or DEFAULT_TENANT) == DEFAULT_TENANT:
                    self._hello = None
                    self._count("hello_downgrades")
                    tracing.add_event(
                        "wire.hello_downgrade", entity=self._entity
                    )
                    return
                raise RuntimeError(
                    f"peer does not support the tenant handshake; cannot "
                    f"serve tenant {self._hello.tenant!r}"
                )
            raise RuntimeError(f"tenant handshake rejected: {error}")
        raise m.ProtocolError(
            f"unexpected handshake reply type {reply_type}"
        )

    def _drop_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _ensure_connected(self) -> socket.socket:
        if self._sock is None:
            # The constructor connects eagerly, so any connect here is a
            # reconnect after a dropped socket.
            self._connect()
            self._count("reconnects")
            tracing.add_event("wire.reconnect", entity=self._entity)
        return self._sock  # type: ignore[return-value]

    # -- request/response ------------------------------------------------------

    def call(
        self, message_type: int, payload: bytes, idempotent: bool = True
    ) -> Tuple[int, bytes]:
        """One request/response exchange, with reconnect-and-retry.

        Non-idempotent calls never retry after the request may have been
        delivered: the socket is dropped and the error propagates.

        Each call runs under an ``rpc.<message>`` span whose context rides
        the request frame; retries, reconnects, and busy backoffs surface
        as span events.
        """
        tracer = tracing.get_tracer()
        with tracer.span(
            f"rpc.{m.message_name(message_type)}",
            attributes={"entity": self._entity},
        ) as span, self._lock, _CLIENT_CALL_SECONDS.labels(
            entity=self._entity
        ).time():
            self._count("calls")
            state = self._policy.start_call()
            while True:
                traced = self._trace_peer
                request = m.frame(
                    message_type,
                    payload,
                    trace_context=tracer.inject() if traced else None,
                )
                try:
                    reply_type, reply = self._exchange(request, state)
                except ServerBusy as exc:
                    # Frame was well-formed and answered: the stream is
                    # still in sync, so retry without reconnecting.
                    self._count("busy")
                    span.add_event("wire.busy", error=str(exc))
                    state.pause(state.admit_failure(exc))
                    self._count("retries")
                    continue
                except self._WIRE_ERRORS + (m.ProtocolError,) as exc:
                    # A corrupt frame desynchronizes the stream exactly
                    # like a dropped connection: reconnect before retrying.
                    if isinstance(exc, socket.timeout):
                        self._count("timeouts")
                    self._drop_socket()
                    if not idempotent:
                        raise
                    span.add_event(
                        "wire.retry", error=f"{type(exc).__name__}: {exc}"
                    )
                    state.pause(state.admit_failure(exc))
                    self._count("retries")
                    continue
                if traced and reply_type == m.MSG_ERROR:
                    # An old-format peer rejects the flagged type byte
                    # before dispatching anything, so resending the same
                    # request untraced is always safe. Latch traces off for
                    # this connection and make the downgrade visible.
                    error = m.decode_error(reply)
                    if error.startswith("unexpected message"):
                        self._trace_peer = False
                        self._count("trace_downgrades")
                        span.add_event("wire.trace_downgrade", error=error)
                        continue
                break
        if reply_type == m.MSG_NOT_FOUND:
            # Typed miss: a client error, never retried — the stream is
            # in sync (the server answered) and the name does not exist.
            kind, message = m.decode_not_found(reply)
            if kind == m.NOT_FOUND_FILE:
                raise FileNotFoundError(message)
            raise KeyError(message)
        if reply_type == m.MSG_ERROR:
            error = m.decode_error(reply)
            if error.startswith("not found:"):
                # Legacy form from old servers (pre-MSG_NOT_FOUND); keep
                # decoding it so new clients interop with old peers.
                raise KeyError(error)
            raise RuntimeError(f"remote error: {error}")
        return reply_type, reply

    def _exchange(
        self, request: bytes, state
    ) -> Tuple[int, bytes]:
        sock = self._ensure_connected()
        timeout = self._io_timeout
        remaining = state.remaining()
        if remaining is not None:
            if remaining <= 0:
                raise socket.timeout("per-call deadline exhausted")
            timeout = min(timeout, remaining)
        sock.settimeout(timeout)
        sock.sendall(request)
        reply_type, reply = m.read_frame(lambda n: _recv_exact(sock, n))
        if reply_type == m.MSG_BUSY:
            raise ServerBusy(m.decode_error(reply))
        return reply_type, reply

    def ping(self) -> m.Pong:
        """One PING/PONG heartbeat over this connection."""
        reply_type, payload = self.call(m.MSG_PING, b"")
        if reply_type != m.MSG_PONG:
            raise m.ProtocolError(
                f"unexpected ping reply type {reply_type}"
            )
        return m.Pong.decode(payload)

    def stats_pairs(self) -> List[Tuple[str, int]]:
        """Client wire counters as stats-message pairs."""
        with self._lock:
            return [
                (f"client_{name}", value)
                for name, value in self.counters.items()
            ]

    def close(self) -> None:
        with self._lock:
            self._drop_socket()


class RemoteKeyManager:
    """TCP key-manager transport (client stub)."""

    def __init__(
        self,
        address: Tuple[str, int],
        retry_policy: Optional[RetryPolicy] = None,
        propagate_trace: bool = True,
    ) -> None:
        self._conn = _Connection(
            address,
            retry_policy=retry_policy,
            entity="key_manager",
            propagate_trace=propagate_trace,
        )

    def keygen(self, request: m.KeyGenRequest) -> m.KeyGenResponse:
        # Retried as idempotent: a duplicate batch re-updates the sketch,
        # which only over-estimates frequencies — the fail-safe direction
        # (over-estimates can only raise t; Experiment A.2).
        _, payload = self._conn.call(m.MSG_KEYGEN_REQUEST, request.encode())
        return m.KeyGenResponse.decode(payload)

    def keygen_batched(
        self, request: m.BatchedKeyGenRequest
    ) -> m.BatchedKeyGenResponse:
        # Idempotent like keygen: a retry replays the same sequence
        # number, which the server's batching contract accepts.
        _, payload = self._conn.call(
            m.MSG_KEYGEN_BATCH_REQUEST, request.encode()
        )
        response = m.BatchedKeyGenResponse.decode(payload)
        if response.sequence != request.sequence:
            # A mispaired reply means the stream is desynchronized;
            # deriving keys from it would corrupt every chunk after it.
            raise m.ProtocolError(
                f"keygen batch reply out of sequence: sent "
                f"{request.sequence}, got {response.sequence}"
            )
        return response

    def ping(self) -> m.Pong:
        """Heartbeat; raises if the key manager is unreachable."""
        return self._conn.ping()

    def stats(self) -> List[Tuple[str, int]]:
        _, payload = self._conn.call(m.MSG_STATS_REQUEST, b"")
        return m.decode_stats(payload) + self._conn.stats_pairs()

    def wire_stats(self) -> Dict[str, int]:
        """Client-side retry/reconnect/timeout counters."""
        return dict(self._conn.stats_pairs())

    def close(self) -> None:
        self._conn.close()


class RemoteProvider:
    """TCP provider transport (client stub).

    Args:
        data_connections: extra connections dedicated to chunk-data
            frames (``put_chunks`` and ``get_chunks``). With the
            default 0, all traffic shares one connection. The pipelined
            client sets this so bulk chunk frames never queue behind
            (or ahead of) recipe and control traffic, and so chunk
            round-trips overlap with keygen traffic on the other
            entity's socket. Data calls round-robin over the pool; each
            individual call still runs request/response, so a single
            uploader (or prefetcher) thread keeps strict ordering even
            across pool members.
        tenant: tenant namespace this client binds to via the HELLO
            handshake (DESIGN.md §13). The default tenant skips the
            handshake entirely, preserving the legacy wire exchange.
        auth_token: shared secret presented in HELLO when the provider
            enforces per-tenant authentication.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        retry_policy: Optional[RetryPolicy] = None,
        propagate_trace: bool = True,
        data_connections: int = 0,
        tenant: str = DEFAULT_TENANT,
        auth_token: bytes = b"",
        connect_timeout: float = 10.0,
        io_timeout: float = 60.0,
    ) -> None:
        if data_connections < 0:
            raise ValueError("data_connections cannot be negative")
        self.tenant = tenant or DEFAULT_TENANT
        # Every connection (control and data pool) performs the same
        # handshake on each (re)connect, so a reconnected data socket is
        # re-bound to the tenant before any retried chunk frame lands.
        hello: Optional[m.Hello] = None
        if self.tenant != DEFAULT_TENANT or auth_token:
            hello = m.Hello(tenant=self.tenant, auth_token=auth_token)
        self._hello = hello
        # Build the control + data pool transactionally: if any later
        # connection fails (server dies mid-HELLO on conn k), the ones
        # already connected must be closed, not leaked with the
        # constructor's exception.
        built: List[_Connection] = []
        try:
            for _ in range(1 + data_connections):
                built.append(
                    _Connection(
                        address,
                        retry_policy=retry_policy,
                        entity="provider",
                        propagate_trace=propagate_trace,
                        hello=hello,
                        connect_timeout=connect_timeout,
                        io_timeout=io_timeout,
                    )
                )
        except BaseException:
            for conn in built:
                conn.close()
            raise
        self._conn = built[0]
        self._data_conns = built[1:]
        self._rr_lock = threading.Lock()
        self._rr_next = 0

    def _data_conn(self) -> _Connection:
        if not self._data_conns:
            return self._conn
        with self._rr_lock:
            conn = self._data_conns[self._rr_next % len(self._data_conns)]
            self._rr_next += 1
        return conn

    @property
    def hello_ok(self) -> Optional[m.HelloOk]:
        """Server's handshake reply on the control connection, if any."""
        return self._conn.hello_ok

    def put_chunks(self, request: m.PutChunks) -> m.PutChunksResponse:
        # Idempotent: the provider deduplicates by fingerprint, so a
        # replayed batch stores nothing new.
        _, payload = self._data_conn().call(
            m.MSG_PUT_CHUNKS, request.encode()
        )
        return m.PutChunksResponse.decode(payload)

    def get_chunks(self, request: m.GetChunks) -> m.Chunks:
        # Idempotent read: safe to retry, and routed over the data pool
        # so restore prefetch traffic never queues behind control calls.
        _, payload = self._data_conn().call(
            m.MSG_GET_CHUNKS, request.encode()
        )
        return m.Chunks.decode(payload)

    def put_recipes(self, request: m.PutRecipes) -> None:
        # Idempotent: rewriting the same sealed recipes is a no-op.
        self._conn.call(m.MSG_PUT_RECIPES, request.encode())

    def get_recipes(self, request: m.GetRecipes) -> m.PutRecipes:
        _, payload = self._conn.call(m.MSG_GET_RECIPES, request.encode())
        return m.PutRecipes.decode(payload)

    def ping(self) -> m.Pong:
        """Heartbeat; raises if the provider is unreachable."""
        return self._conn.ping()

    def stats(self) -> List[Tuple[str, int]]:
        _, payload = self._conn.call(m.MSG_STATS_REQUEST, b"")
        return m.decode_stats(payload) + self.wire_stats_pairs()

    def wire_stats(self) -> Dict[str, int]:
        """Client-side retry/reconnect/timeout counters."""
        return dict(self.wire_stats_pairs())

    def wire_stats_pairs(self) -> List[Tuple[str, int]]:
        """Wire counters summed over the control + data connections."""
        totals: Dict[str, int] = {}
        for conn in [self._conn, *self._data_conns]:
            for name, value in conn.stats_pairs():
                totals[name] = totals.get(name, 0) + value
        return list(totals.items())

    def close(self) -> None:
        self._conn.close()
        for conn in self._data_conns:
            conn.close()


class RemoteShardObserver:
    """TCP client stub for one KM sketch-observer shard (DESIGN.md §17).

    Used by the :class:`~repro.tedstore.sharding.ShardedKeyManager`
    front when the ring publishes per-shard endpoints: each keygen
    batch's sub-batches travel to their observer processes, which
    return the frequency estimates the front's selection needs.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        retry_policy: Optional[RetryPolicy] = None,
        propagate_trace: bool = True,
        connect_timeout: float = 10.0,
        io_timeout: float = 60.0,
    ) -> None:
        self.address = address
        self._conn = _Connection(
            address,
            retry_policy=retry_policy,
            entity="km_shard",
            propagate_trace=propagate_trace,
            connect_timeout=connect_timeout,
            io_timeout=io_timeout,
        )

    def observe(
        self, request: m.ShardObserveRequest
    ) -> m.ShardObserveResponse:
        # Idempotent: the observer logs sub-batches under the client
        # stream identity, so a replay re-applies the same delta the
        # durable store already dedups by batch id (DESIGN.md §15).
        _, payload = self._conn.call(m.MSG_SHARD_OBSERVE, request.encode())
        return m.ShardObserveResponse.decode(payload)

    def ping(self) -> m.Pong:
        """Heartbeat; raises if the observer shard is unreachable."""
        return self._conn.ping()

    def stats(self) -> List[Tuple[str, int]]:
        _, payload = self._conn.call(m.MSG_STATS_REQUEST, b"")
        return m.decode_stats(payload) + self._conn.stats_pairs()

    def wire_stats(self) -> Dict[str, int]:
        """Client-side retry/reconnect/timeout counters."""
        return dict(self._conn.stats_pairs())

    def close(self) -> None:
        self._conn.close()
