"""TCP deployment of TEDStore: threaded servers and client stubs.

One server per entity (key manager, provider), each accepting persistent
connections from any number of clients; every connection is served by its
own thread, mirroring the paper's multi-threaded prototype (§4). The wire
format is :mod:`repro.tedstore.messages`. Servers bind to an ephemeral port
by default so tests and benchmarks can run many instances concurrently.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import List, Optional, Tuple

from repro.tedstore import messages as m
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.provider import ProviderService


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ConnectionError."""
    parts = []
    remaining = n
    while remaining:
        piece = sock.recv(min(remaining, 1 << 20))
        if not piece:
            raise ConnectionError("peer closed the connection")
        parts.append(piece)
        remaining -= len(piece)
    return b"".join(parts)


class _Server(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True


class _ServiceHandler(socketserver.BaseRequestHandler):
    """Per-connection loop: read frame, dispatch, reply."""

    def handle(self) -> None:
        sock = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        dispatch = self.server.dispatch  # type: ignore[attr-defined]
        # Rate-limiting identity is the peer host (not host:port): a
        # brute-forcing client must not reset its budget by reconnecting.
        peer = str(self.client_address[0])
        while True:
            try:
                message_type, payload = m.read_frame(
                    lambda n: _recv_exact(sock, n)
                )
            except (ConnectionError, OSError):
                return
            try:
                reply = dispatch(message_type, payload, peer)
            except KeyError as exc:
                reply = m.frame(m.MSG_ERROR, m.encode_error(f"not found: {exc}"))
            except Exception as exc:  # report, keep the connection alive
                reply = m.frame(m.MSG_ERROR, m.encode_error(str(exc)))
            try:
                sock.sendall(reply)
            except OSError:
                return


class ServerHandle:
    """A running server plus its lifecycle controls."""

    def __init__(self, server: _Server) -> None:
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) the server is listening on."""
        return self._server.server_address  # type: ignore[return-value]

    def stop(self) -> None:
        """Shut the server down and join its accept thread."""
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_key_manager(
    service: KeyManagerService, host: str = "127.0.0.1", port: int = 0
) -> ServerHandle:
    """Start a key-manager server; returns its handle."""

    def dispatch(message_type: int, payload: bytes, peer: str) -> bytes:
        if message_type == m.MSG_KEYGEN_REQUEST:
            response = service.handle_keygen(
                m.KeyGenRequest.decode(payload), client_id=peer
            )
            return m.frame(m.MSG_KEYGEN_RESPONSE, response.encode())
        if message_type == m.MSG_STATS_REQUEST:
            return m.frame(m.MSG_STATS_RESPONSE, m.encode_stats(service.stats()))
        return m.frame(
            m.MSG_ERROR, m.encode_error(f"unexpected message {message_type}")
        )

    server = _Server((host, port), _ServiceHandler)
    server.dispatch = dispatch  # type: ignore[attr-defined]
    return ServerHandle(server)


def serve_provider(
    service: ProviderService, host: str = "127.0.0.1", port: int = 0
) -> ServerHandle:
    """Start a provider server; returns its handle."""

    def dispatch(message_type: int, payload: bytes, peer: str) -> bytes:
        if message_type == m.MSG_PUT_CHUNKS:
            response = service.handle_put_chunks(m.PutChunks.decode(payload))
            return m.frame(m.MSG_PUT_CHUNKS_RESPONSE, response.encode())
        if message_type == m.MSG_GET_CHUNKS:
            response = service.handle_get_chunks(m.GetChunks.decode(payload))
            return m.frame(m.MSG_CHUNKS, response.encode())
        if message_type == m.MSG_PUT_RECIPES:
            service.handle_put_recipes(m.PutRecipes.decode(payload))
            return m.frame(m.MSG_OK, b"")
        if message_type == m.MSG_GET_RECIPES:
            response = service.handle_get_recipes(m.GetRecipes.decode(payload))
            return m.frame(m.MSG_RECIPES, response.encode())
        if message_type == m.MSG_STATS_REQUEST:
            return m.frame(m.MSG_STATS_RESPONSE, m.encode_stats(service.stats()))
        return m.frame(
            m.MSG_ERROR, m.encode_error(f"unexpected message {message_type}")
        )

    server = _Server((host, port), _ServiceHandler)
    server.dispatch = dispatch  # type: ignore[attr-defined]
    return ServerHandle(server)


class _Connection:
    """One persistent client connection with request/response semantics."""

    def __init__(self, address: Tuple[str, int]) -> None:
        self._sock = socket.create_connection(address, timeout=60)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._lock = threading.Lock()

    def call(self, message_type: int, payload: bytes) -> Tuple[int, bytes]:
        with self._lock:
            self._sock.sendall(m.frame(message_type, payload))
            reply_type, reply = m.read_frame(
                lambda n: _recv_exact(self._sock, n)
            )
        if reply_type == m.MSG_ERROR:
            raise RuntimeError(
                f"remote error: {m.decode_error(reply)}"
            )
        return reply_type, reply

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class RemoteKeyManager:
    """TCP key-manager transport (client stub)."""

    def __init__(self, address: Tuple[str, int]) -> None:
        self._conn = _Connection(address)

    def keygen(self, request: m.KeyGenRequest) -> m.KeyGenResponse:
        _, payload = self._conn.call(m.MSG_KEYGEN_REQUEST, request.encode())
        return m.KeyGenResponse.decode(payload)

    def stats(self) -> List[Tuple[str, int]]:
        _, payload = self._conn.call(m.MSG_STATS_REQUEST, b"")
        return m.decode_stats(payload)

    def close(self) -> None:
        self._conn.close()


class RemoteProvider:
    """TCP provider transport (client stub)."""

    def __init__(self, address: Tuple[str, int]) -> None:
        self._conn = _Connection(address)

    def put_chunks(self, request: m.PutChunks) -> m.PutChunksResponse:
        _, payload = self._conn.call(m.MSG_PUT_CHUNKS, request.encode())
        return m.PutChunksResponse.decode(payload)

    def get_chunks(self, request: m.GetChunks) -> m.Chunks:
        _, payload = self._conn.call(m.MSG_GET_CHUNKS, request.encode())
        return m.Chunks.decode(payload)

    def put_recipes(self, request: m.PutRecipes) -> None:
        self._conn.call(m.MSG_PUT_RECIPES, request.encode())

    def get_recipes(self, request: m.GetRecipes) -> m.PutRecipes:
        _, payload = self._conn.call(m.MSG_GET_RECIPES, request.encode())
        return m.PutRecipes.decode(payload)

    def stats(self) -> List[Tuple[str, int]]:
        _, payload = self._conn.call(m.MSG_STATS_REQUEST, b"")
        return m.decode_stats(payload)

    def close(self) -> None:
        self._conn.close()
