"""Durable key-manager state: sketch snapshots plus a batch delta log.

The key manager is the one stateful TEDStore service whose state exists
nowhere else: the Count-Min sketch, the FTED frequency map, and the tuned
``t`` accumulate across every client's uploads, and losing them on a crash
would silently change which chunks deduplicate (a restarted sketch counts
from zero, so previously-frequent chunks look rare and draw random seeds —
storage blowup with no error anywhere). This module makes that state
crash-durable with the classic snapshot + log pair:

* a **snapshot** — the full sketch counters (zlib-compressed; they are
  mostly zeros), the FTED frequency map, ``t``, the batch-position
  counters, and the per-client sequence map — published atomically via
  the durable-write shim (crash scope ``km.snapshot``);
* an append-only **delta log** — one CRC-protected record per acked
  key-generation batch, holding the batch's hash vectors (crash scope
  ``km.delta``). The record is durable *before* the response leaves the
  service, so "the client saw an ack" implies "recovery will replay it".

Recovery loads the newest intact snapshot and replays every delta with a
batch id past the snapshot's high-water mark through
:meth:`~repro.core.ted.TedKeyManager.observe_batch`, which re-applies the
frequency effects without generating seeds. Every ``snapshot_every``
batches the store folds the log into a fresh snapshot and truncates it.

Staleness bound (DESIGN.md §12): the delta log is fsynced every
``sync_every`` batches, so after a power loss at the worst moment the
recovered sketch is missing at most ``sync_every`` acked batches — and a
plain process crash loses nothing, because every append is flushed to the
OS before the ack. Replaying a batch the client retries anyway
double-counts it, which is TED's fail-safe direction: over-estimated
frequencies can only make chunks *more* deduplicable, never leak more.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.ted import TedKeyManager
from repro.obs import metrics as obs_metrics
from repro.storage import crash
from repro.storage.wal import OP_PUT, WriteAheadLog
from repro.utils.varint import decode_uvarint, encode_uvarint

_MAGIC = b"TEDKMS1\n"

_REGISTRY = obs_metrics.get_registry()
_SNAPSHOTS_WRITTEN = _REGISTRY.counter(
    "ted_keymanager_snapshots_total",
    "Key-manager state snapshots published",
)
_BATCHES_LOGGED = _REGISTRY.counter(
    "ted_keymanager_state_batches_logged_total",
    "Key-generation batches appended to the durable delta log",
)
_RECOVERY_SNAPSHOTS = _REGISTRY.counter(
    "ted_recovery_km_snapshots_loaded_total",
    "Key-manager snapshots loaded during startup recovery",
)
_RECOVERY_DELTAS = _REGISTRY.counter(
    "ted_recovery_km_deltas_replayed_total",
    "Key-generation batches replayed from the delta log at recovery",
)


@dataclass
class RestoreReport:
    """What startup recovery found and replayed."""

    snapshot_loaded: bool = False
    deltas_replayed: int = 0
    last_sequence: Dict[str, int] = field(default_factory=dict)


def _encode_batch(
    batch_id: int,
    client_id: str,
    sequence: int,
    hash_vectors: Sequence[Sequence[int]],
) -> bytes:
    cid = client_id.encode("utf-8")
    out = bytearray()
    out.extend(encode_uvarint(batch_id))
    out.extend(encode_uvarint(len(cid)))
    out.extend(cid)
    out.extend(encode_uvarint(sequence))
    out.extend(encode_uvarint(len(hash_vectors)))
    for vector in hash_vectors:
        out.extend(encode_uvarint(len(vector)))
        for short_hash in vector:
            out.extend(encode_uvarint(short_hash))
    return bytes(out)


def _decode_batch(
    payload: bytes,
) -> Tuple[int, str, int, List[List[int]]]:
    batch_id, pos = decode_uvarint(payload, 0)
    cid_len, pos = decode_uvarint(payload, pos)
    client_id = payload[pos : pos + cid_len].decode("utf-8")
    pos += cid_len
    sequence, pos = decode_uvarint(payload, pos)
    count, pos = decode_uvarint(payload, pos)
    vectors: List[List[int]] = []
    for _ in range(count):
        length, pos = decode_uvarint(payload, pos)
        vector = []
        for _ in range(length):
            value, pos = decode_uvarint(payload, pos)
            vector.append(value)
        vectors.append(vector)
    return batch_id, client_id, sequence, vectors


class KeyManagerStateStore:
    """Snapshot + delta-log persistence for one key manager.

    Args:
        directory: state directory (created if missing).
        snapshot_every: fold the delta log into a snapshot after this
            many logged batches.
        sync_every: fsync the delta log every this many batches; 1 is
            fully durable per ack, larger trades a bounded number of
            lost batches (power loss only) for fewer barriers.

    Example:
        >>> import tempfile
        >>> store = KeyManagerStateStore(tempfile.mkdtemp())
        >>> km = TedKeyManager(secret=b"kappa", t=5)
        >>> store.restore_into(km).snapshot_loaded
        False
    """

    def __init__(
        self,
        directory,
        snapshot_every: int = 64,
        sync_every: int = 1,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if sync_every < 1:
            raise ValueError("sync_every must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_every = snapshot_every
        self.sync_every = sync_every
        crash.remove_stray_tmp_files(self.directory)
        self.snapshot_path = self.directory / "snapshot.bin"
        self._delta = WriteAheadLog(
            self.directory / "delta.log", scope="km.delta"
        )
        # Monotonic id per logged batch; snapshots record the high-water
        # mark so replay after a crash between snapshot-publish and
        # log-truncate skips deltas the snapshot already folded in.
        self._batch_id = 0
        self._batches_since_snapshot = 0
        self._batches_since_sync = 0

    # -- logging ----------------------------------------------------------

    def log_batch(
        self,
        client_id: str,
        sequence: int,
        hash_vectors: Sequence[Sequence[int]],
        key_manager: TedKeyManager,
        last_sequence: Dict[str, int],
    ) -> None:
        """Durably record one acked batch; snapshot on cadence.

        Must be called *after* the key manager processed the batch and
        *before* the response is released — the ack contract is that
        every acked batch is replayable.
        """
        self._batch_id += 1
        payload = _encode_batch(
            self._batch_id, client_id, sequence, hash_vectors
        )
        self._delta.append(OP_PUT, b"batch", payload)
        _BATCHES_LOGGED.inc()
        self._batches_since_sync += 1
        if self._batches_since_sync >= self.sync_every:
            self._delta.sync()
            self._batches_since_sync = 0
        self._batches_since_snapshot += 1
        if self._batches_since_snapshot >= self.snapshot_every:
            self.snapshot(key_manager, last_sequence)

    def snapshot(
        self, key_manager: TedKeyManager, last_sequence: Dict[str, int]
    ) -> None:
        """Publish a full-state snapshot and truncate the delta log.

        Ordering is the recovery invariant: the snapshot is durable
        *before* the log truncates. A crash between the two replays
        deltas the snapshot already contains — the batch-id high-water
        mark in the snapshot makes that replay a no-op.
        """
        blob = self._encode_snapshot(key_manager, last_sequence)
        crash.atomic_write_bytes(
            self.snapshot_path, blob, scope="km.snapshot"
        )
        self._delta.truncate()
        self._batches_since_snapshot = 0
        self._batches_since_sync = 0
        _SNAPSHOTS_WRITTEN.inc()

    # -- recovery ----------------------------------------------------------

    def restore_into(self, key_manager: TedKeyManager) -> RestoreReport:
        """Rebuild ``key_manager``'s frequency state from disk.

        Loads the snapshot (if an intact one exists), then replays every
        delta past its high-water mark via
        :meth:`TedKeyManager.observe_batch`. A corrupt snapshot is
        ignored (recovery starts from the deltas alone); a torn delta
        tail stops replay there, per the WAL contract.

        Raises:
            ValueError: if the snapshot's sketch geometry does not match
                ``key_manager`` — that is a configuration error, not
                crash damage.
        """
        report = RestoreReport()
        snapshot_high = 0
        blob = None
        if self.snapshot_path.exists():
            blob = self.snapshot_path.read_bytes()
        if blob is not None and self._snapshot_intact(blob):
            snapshot_high = self._decode_snapshot_into(
                blob, key_manager, report.last_sequence
            )
            report.snapshot_loaded = True
            _RECOVERY_SNAPSHOTS.inc()
        for op, key, value in WriteAheadLog.replay(self._delta.path):
            if op != OP_PUT or key != b"batch":
                continue
            try:
                batch_id, client_id, sequence, vectors = _decode_batch(
                    value
                )
            except (ValueError, IndexError):
                break  # torn/garbled tail record that passed the CRC
            self._batch_id = max(self._batch_id, batch_id)
            if batch_id <= snapshot_high:
                continue  # already folded into the snapshot
            key_manager.observe_batch(vectors)
            if sequence > report.last_sequence.get(client_id, -1):
                report.last_sequence[client_id] = sequence
            report.deltas_replayed += 1
            _RECOVERY_DELTAS.inc()
        self._batch_id = max(self._batch_id, snapshot_high)
        return report

    # -- snapshot codec ----------------------------------------------------

    @staticmethod
    def _snapshot_intact(blob: bytes) -> bool:
        if len(blob) < len(_MAGIC) + 4 or blob[: len(_MAGIC)] != _MAGIC:
            return False
        crc = int.from_bytes(blob[len(_MAGIC) : len(_MAGIC) + 4], "little")
        return zlib.crc32(blob[len(_MAGIC) + 4 :]) == crc

    def _encode_snapshot(
        self, key_manager: TedKeyManager, last_sequence: Dict[str, int]
    ) -> bytes:
        sketch = key_manager.sketch
        counters = zlib.compress(sketch._counters.tobytes())
        payload = bytearray()
        for value in (
            sketch.rows,
            sketch.width,
            sketch.total,
            key_manager.t,
            key_manager._requests_in_batch,
            key_manager.stats.requests,
            key_manager.stats.batches_tuned,
            self._batch_id,
        ):
            payload.extend(encode_uvarint(value))
        payload.extend(encode_uvarint(len(counters)))
        payload.extend(counters)
        freq = key_manager._freq_by_identity
        payload.extend(encode_uvarint(len(freq)))
        for identity, frequency in freq.items():
            payload.extend(encode_uvarint(len(identity)))
            for short_hash in identity:
                payload.extend(encode_uvarint(short_hash))
            payload.extend(encode_uvarint(frequency))
        payload.extend(encode_uvarint(len(last_sequence)))
        for client_id, sequence in last_sequence.items():
            cid = client_id.encode("utf-8")
            payload.extend(encode_uvarint(len(cid)))
            payload.extend(cid)
            payload.extend(encode_uvarint(sequence))
        body = bytes(payload)
        return _MAGIC + zlib.crc32(body).to_bytes(4, "little") + body

    def _decode_snapshot_into(
        self,
        blob: bytes,
        key_manager: TedKeyManager,
        last_sequence: Dict[str, int],
    ) -> int:
        """Apply a verified snapshot; returns its batch-id high water."""
        payload = blob[len(_MAGIC) + 4 :]
        pos = 0
        values = []
        for _ in range(8):
            value, pos = decode_uvarint(payload, pos)
            values.append(value)
        (
            rows,
            width,
            total,
            t,
            requests_in_batch,
            stat_requests,
            batches_tuned,
            batch_high,
        ) = values
        sketch = key_manager.sketch
        if rows != sketch.rows or width != sketch.width:
            raise ValueError(
                f"snapshot sketch geometry {rows}x{width} does not match "
                f"the configured {sketch.rows}x{sketch.width}"
            )
        counters_len, pos = decode_uvarint(payload, pos)
        raw = zlib.decompress(payload[pos : pos + counters_len])
        pos += counters_len
        sketch._counters = np.frombuffer(raw, dtype=np.uint32).reshape(
            rows, width
        ).copy()
        sketch.total = total
        key_manager.t = t
        key_manager._requests_in_batch = requests_in_batch
        key_manager.stats.requests = stat_requests
        key_manager.stats.batches_tuned = batches_tuned
        freq_count, pos = decode_uvarint(payload, pos)
        key_manager._freq_by_identity.clear()
        for _ in range(freq_count):
            length, pos = decode_uvarint(payload, pos)
            identity = []
            for _ in range(length):
                short_hash, pos = decode_uvarint(payload, pos)
                identity.append(short_hash)
            frequency, pos = decode_uvarint(payload, pos)
            key_manager._freq_by_identity[tuple(identity)] = frequency
        seq_count, pos = decode_uvarint(payload, pos)
        for _ in range(seq_count):
            cid_len, pos = decode_uvarint(payload, pos)
            client_id = payload[pos : pos + cid_len].decode("utf-8")
            pos += cid_len
            sequence, pos = decode_uvarint(payload, pos)
            last_sequence[client_id] = sequence
        return batch_high

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the delta-log file handle."""
        self._delta.close()
