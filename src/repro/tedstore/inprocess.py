"""In-process TEDStore deployment: direct service calls, no sockets.

Used by unit/integration tests and the single-machine microbenchmarks
(Experiment B.1 runs all three entities on one machine; the in-process
transport is the zero-network-cost limit of that setup).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.messages import (
    Chunks,
    GetChunks,
    GetRecipes,
    KeyGenRequest,
    KeyGenResponse,
    PutChunks,
    PutChunksResponse,
    PutRecipes,
)
from repro.tedstore.provider import ProviderService


class LocalKeyManager:
    """Direct-call key-manager transport."""

    def __init__(self, service: KeyManagerService) -> None:
        self.service = service

    def keygen(self, request: KeyGenRequest) -> KeyGenResponse:
        return self.service.handle_keygen(request)

    def stats(self) -> List[Tuple[str, int]]:
        return self.service.stats()


class LocalProvider:
    """Direct-call provider transport."""

    def __init__(self, service: ProviderService) -> None:
        self.service = service

    def put_chunks(self, request: PutChunks) -> PutChunksResponse:
        return self.service.handle_put_chunks(request)

    def get_chunks(self, request: GetChunks) -> Chunks:
        return self.service.handle_get_chunks(request)

    def put_recipes(self, request: PutRecipes) -> None:
        self.service.handle_put_recipes(request)

    def get_recipes(self, request: GetRecipes) -> PutRecipes:
        return self.service.handle_get_recipes(request)

    def stats(self) -> List[Tuple[str, int]]:
        return self.service.stats()
