"""In-process TEDStore deployment: direct service calls, no sockets.

Used by unit/integration tests and the single-machine microbenchmarks
(Experiment B.1 runs all three entities on one machine; the in-process
transport is the zero-network-cost limit of that setup).
"""

from __future__ import annotations

import threading
from typing import List, Tuple

from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.messages import (
    BatchedKeyGenRequest,
    BatchedKeyGenResponse,
    Chunks,
    GetChunks,
    GetRecipes,
    KeyGenRequest,
    KeyGenResponse,
    PutChunks,
    PutChunksResponse,
    PutRecipes,
)
from repro.tedstore.provider import DEFAULT_TENANT, ProviderService


class LocalKeyManager:
    """Direct-call key-manager transport.

    Honors the same batching contract as one TCP connection (DESIGN.md
    §10): a per-transport lock admits one keygen call at a time, so
    batches submitted through this instance reach the key manager in
    submission order. Without it, concurrent callers sharing a transport
    could interleave at the service in an order the network path can
    never produce — which is exactly the in-process/wire divergence the
    cross-transport parity test pins down.

    Args:
        service: the key-manager service to call into.
        client_id: stream identity for rate limiting and the sequenced
            batching contract (the wire path uses the peer host here).
    """

    def __init__(
        self, service: KeyManagerService, client_id: str = "local"
    ) -> None:
        self.service = service
        self.client_id = client_id
        self._lock = threading.Lock()

    def keygen(self, request: KeyGenRequest) -> KeyGenResponse:
        with self._lock:
            return self.service.handle_keygen(
                request, client_id=self.client_id
            )

    def keygen_batched(
        self, request: BatchedKeyGenRequest
    ) -> BatchedKeyGenResponse:
        with self._lock:
            return self.service.handle_keygen_batched(
                request, client_id=self.client_id
            )

    def stats(self) -> List[Tuple[str, int]]:
        return self.service.stats()


class LocalProvider:
    """Direct-call provider transport.

    Args:
        service: the provider service to call into.
        tenant: tenant namespace every call is scoped to — the
            in-process analogue of the wire HELLO handshake binding a
            connection to a tenant (DESIGN.md §13). The service
            authenticates the binding once at construction, like the
            wire path does per connection.
        auth_token: shared secret checked when the provider enforces
            per-tenant authentication.
    """

    def __init__(
        self,
        service: ProviderService,
        tenant: str = DEFAULT_TENANT,
        auth_token: bytes = b"",
    ) -> None:
        self.service = service
        self.tenant = tenant or DEFAULT_TENANT
        service.authenticate(self.tenant, auth_token)

    def put_chunks(self, request: PutChunks) -> PutChunksResponse:
        return self.service.handle_put_chunks(request, tenant=self.tenant)

    def get_chunks(self, request: GetChunks) -> Chunks:
        return self.service.handle_get_chunks(request, tenant=self.tenant)

    def put_recipes(self, request: PutRecipes) -> None:
        self.service.handle_put_recipes(request, tenant=self.tenant)

    def get_recipes(self, request: GetRecipes) -> PutRecipes:
        return self.service.handle_get_recipes(request, tenant=self.tenant)

    def stats(self) -> List[Tuple[str, int]]:
        return self.service.stats()

    def ring_epoch(self) -> int:
        epoch = getattr(self.service, "ring_epoch", None)
        return epoch() if callable(epoch) else 0
