"""Pipelined, multi-worker client upload path (DESIGN.md §10).

The serial client runs chunk → fingerprint → keygen → encrypt → PUT
strictly in sequence, so the wire sits idle while the CPU encrypts and the
CPU sits idle during every round trip. This module overlaps the stages
with a bounded-queue pipeline:

* **feed** — the caller's thread chunks the input (or walks pre-chunked
  data) and pushes fixed-size sub-batches into a depth-bounded queue; the
  bound is the pipeline's backpressure, so memory stays proportional to
  ``pipeline_depth``, never file size.
* **keygen dispatcher** — a single thread fingerprints and short-hashes
  each sub-batch, coalesces whatever is queued (up to the client's
  ``batch_size`` fingerprints) into one sequenced KEYGEN round trip, and
  derives the per-chunk keys. Keygen stays *strictly ordered and single
  in flight*: sketch frequencies and probabilistic seed selection depend
  on the order chunks reach the key manager, and keeping that order is
  what makes the pipelined path bit-identical to the serial one (the
  differential harness proves it, ``tests/harness/differential.py``).
* **fingerprint cache** — with a :class:`~repro.storage.dedup.FingerprintCache`
  configured, each (plaintext fingerprint, seed) pair is checked after
  keygen; a hit proves the exact ciphertext is already stored at the
  provider, so the chunk skips encryption *and* upload entirely — the
  dominant cost on duplicate-heavy workloads. Repeats of a pair already
  dispatched earlier in the same run are suppressed too (in-flight
  aliases): the uploader copies the first occurrence's ciphertext
  fingerprint at resequencing time.
* **encrypt workers** — ``workers`` threads encrypt cache misses and
  fingerprint the ciphertexts. With ``crypto_workers > 0`` on the client,
  the threads instead submit their jobs to a pool of OS processes
  (:func:`_mp_encrypt_job`) and collect the results, sidestepping the GIL
  for CPU-bound cipher profiles; encryption is a pure function of
  (profile, key, chunk), and the uploader re-sequences by index either
  way, so the stored bytes are identical to the serial path's.
* **uploader** — a single thread re-sequences encrypted chunks into
  original order, cuts PUT batches at the same ``batch_size`` boundaries
  as the serial path, sends them one at a time (ordering is what keeps
  container layout byte-identical), inserts acknowledged chunks into the
  cache, and builds the file/key recipes in chunk order.

Failure in any stage latches a shared failure box; every stage unwinds
promptly (all queue waits poll it) and the caller re-raises the first
error, so a dead worker can never deadlock the pipeline.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.keygen import derive_key
from repro.crypto.hashes import digest
from repro.crypto.murmur3 import short_hashes
from repro.obs import metrics as obs_metrics, tracing
from repro.storage.dedup import FingerprintCache
from repro.storage.recipe import FileRecipe, KeyRecipe
from repro.tedstore.messages import BatchedKeyGenRequest, PutChunks
from repro.utils.timer import StageTimer

_REGISTRY = obs_metrics.get_registry()
_QUEUE_DEPTH = _REGISTRY.gauge(
    "ted_pipeline_queue_depth",
    "Sub-batches currently queued between pipeline stages",
    labelnames=("stage",),
)
_WORKERS_BUSY = _REGISTRY.gauge(
    "ted_pipeline_workers_busy",
    "Encrypt workers currently processing a job",
)
_STAGE_SECONDS = _REGISTRY.histogram(
    "ted_pipeline_stage_seconds",
    "Latency of one pipeline stage execution (per batch/job)",
    labelnames=("stage",),
)
_PIPELINE_CHUNKS = _REGISTRY.counter(
    "ted_pipeline_chunks_total",
    "Chunks leaving the pipeline, by path taken",
    labelnames=("path",),
)

#: Queue poll interval; every blocking wait checks the failure box at
#: this cadence so a dead stage unwinds the whole pipeline promptly.
_POLL_SECONDS = 0.05


class PipelineError(RuntimeError):
    """A pipeline stage failed; the original error is the ``__cause__``."""


class _Failure:
    """First-error latch shared by all stages."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._event = threading.Event()
        self.exc: Optional[BaseException] = None

    def set(self, exc: BaseException) -> None:
        with self._lock:
            if self.exc is None:
                self.exc = exc
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()


class _Aborted(Exception):
    """Internal unwind signal raised inside stages after a failure."""


class _MeteredQueue:
    """Bounded queue whose depth is mirrored onto a gauge and whose
    blocking operations poll the shared failure box."""

    def __init__(self, stage: str, maxsize: int, failure: _Failure) -> None:
        self._q: "queue.Queue" = queue.Queue(maxsize=maxsize)
        self._gauge = _QUEUE_DEPTH.labels(stage=stage)
        self._failure = failure

    def put(self, item) -> None:
        while True:
            if self._failure.is_set():
                raise _Aborted()
            try:
                self._q.put(item, timeout=_POLL_SECONDS)
                self._gauge.set(self._q.qsize())
                return
            except queue.Full:
                continue

    def get(self):
        while True:
            if self._failure.is_set():
                raise _Aborted()
            try:
                item = self._q.get(timeout=_POLL_SECONDS)
                self._gauge.set(self._q.qsize())
                return item
            except queue.Empty:
                continue

    def get_nowait(self):
        item = self._q.get_nowait()  # raises queue.Empty
        self._gauge.set(self._q.qsize())
        return item

    def try_get(self):
        """One bounded wait; raises queue.Empty on timeout.

        For consumers whose exit condition can become true while the
        queue stays empty forever (the uploader once every chunk is
        emitted): poll, re-check, poll again — never block open-ended.
        """
        if self._failure.is_set():
            raise _Aborted()
        item = self._q.get(timeout=_POLL_SECONDS)
        self._gauge.set(self._q.qsize())
        return item


@dataclass
class _Resolved:
    """One chunk's outcome, keyed by its position in the file.

    ``cipher_fp is None`` marks an in-flight alias: the same
    (fingerprint, seed) pair was dispatched earlier in this run, so the
    ciphertext fingerprint is copied from that first occurrence when the
    uploader re-sequences — the first occurrence always precedes the
    alias in emission order. ``ciphertext is None`` (with a cipher_fp)
    marks a fingerprint-cache hit: nothing to upload at all.
    """

    index: int
    size: int
    key: bytes
    cipher_fp: Optional[bytes]
    ciphertext: Optional[bytes]
    fingerprint: bytes
    seed: bytes


_FEED_END = object()


def _mp_encrypt_job(
    profile_name: str, job: List[Tuple[int, bytes, bytes, bytes, bytes]]
) -> List[_Resolved]:
    """Encrypt one job in a pool process.

    Module-level so it pickles; resolves the profile by name in the
    child. Encryption is deterministic in (profile, key, chunk), so the
    returned ciphertexts are byte-identical to in-process encryption.
    """
    from repro.crypto.cipher import get_profile

    profile = get_profile(profile_name)
    algorithm = profile.hash_algorithm
    resolved: List[_Resolved] = []
    for index, chunk, fp, seed, key in job:
        ciphertext = profile.encrypt(key, chunk)
        resolved.append(
            _Resolved(
                index=index,
                size=len(chunk),
                key=key,
                cipher_fp=digest(ciphertext, algorithm),
                ciphertext=ciphertext,
                fingerprint=fp,
                seed=seed,
            )
        )
    return resolved


class PipelinedUploader:
    """One pipelined upload execution (single use).

    Args:
        client: the owning :class:`~repro.tedstore.client.TedStoreClient`
            — supplies transports, profile, sketch geometry, batch size,
            worker count, depth, and the optional fingerprint cache.
    """

    def __init__(self, client) -> None:
        self.client = client
        self.workers = max(1, client.workers)
        self.crypto_workers = max(0, getattr(client, "crypto_workers", 0))
        if self.crypto_workers:
            # Each worker thread blocks on one in-flight pool job, so the
            # pool only stays busy if there are at least as many
            # submitter threads as processes.
            self.workers = max(self.workers, self.crypto_workers)
        self._pool: Optional[ProcessPoolExecutor] = None
        depth = max(1, client.pipeline_depth)
        self.failure = _Failure()
        self.feed_q = _MeteredQueue("feed", depth, self.failure)
        self.encrypt_q = _MeteredQueue(
            "encrypt", depth * self.workers, self.failure
        )
        self.result_q = _MeteredQueue("results", 0, self.failure)
        # Chunks per feed sub-batch: small enough that several are in
        # flight across stages, large enough that queue overhead stays
        # negligible against hashing/encryption work.
        self.feed_batch = max(16, client.batch_size // max(2, self.workers))
        self._total_chunks: Optional[int] = None  # set when feed ends
        self._total_lock = threading.Lock()
        self._sequence = 0
        # Outputs (owned by the uploader thread until join).
        self.file_recipe: Optional[FileRecipe] = None
        self.key_recipe = KeyRecipe()
        self.stored = 0
        self.duplicates = 0
        self.cache_hits = 0
        self.logical_bytes = 0
        self.chunk_count = 0

    # -- stage bodies ---------------------------------------------------------

    def _run_guarded(self, body) -> None:
        try:
            body()
        except _Aborted:
            pass
        except BaseException as exc:  # latch the first real failure
            self.failure.set(exc)

    def _feed(self, chunks: Iterable[bytes]) -> None:
        """Caller-thread stage: push chunk sub-batches into the pipeline."""
        total = 0
        batch: List[bytes] = []
        for chunk in chunks:
            batch.append(chunk)
            total += 1
            if len(batch) >= self.feed_batch:
                self.feed_q.put(batch)
                batch = []
        if batch:
            self.feed_q.put(batch)
        with self._total_lock:
            self._total_chunks = total
        self.feed_q.put(_FEED_END)

    def _expected_total(self) -> Optional[int]:
        with self._total_lock:
            return self._total_chunks

    def _dispatch(self) -> None:
        """Fingerprint, coalesce, keygen (ordered), derive, fan out."""
        client = self.client
        algorithm = client.profile.hash_algorithm
        timer = client.timer
        cache = client.fingerprint_cache
        # In-flight duplicate suppression (cache-enabled runs only): once
        # a (fingerprint, seed) pair has been dispatched this run, later
        # repeats skip encryption and upload as *aliases* — the uploader
        # copies the ciphertext fingerprint from the first occurrence at
        # resequencing time (the first occurrence always precedes the
        # alias in emission order). Tied to the cache because, like a
        # cache hit, an alias relaxes the provider's offered-chunk
        # counters; the strict cache-off guarantee stays untouched.
        first_seen: set = set()
        base_index = 0
        done = False
        while not done:
            item = self.feed_q.get()
            if item is _FEED_END:
                break
            # Coalesce everything already queued, up to one full keygen
            # batch — more sub-batches may have piled up while the
            # previous round trip was in flight.
            pending: List[bytes] = list(item)
            while len(pending) < client.batch_size:
                try:
                    extra = self.feed_q.get_nowait()
                except queue.Empty:
                    break
                if extra is _FEED_END:
                    done = True
                    break
                pending.extend(extra)
            with timer.stage("fingerprinting"):
                fingerprints = [digest(c, algorithm) for c in pending]
            with timer.stage("hashing"):
                hash_vectors = [
                    short_hashes(fp, client.sketch_rows, client.sketch_width)
                    for fp in fingerprints
                ]
            with timer.stage("key seeding"), _STAGE_SECONDS.labels(
                stage="keygen_rtt"
            ).time():
                seeds = self._keygen(hash_vectors)
            if len(seeds) != len(pending):
                raise RuntimeError(
                    "key manager returned a mismatched seed batch"
                )
            with timer.stage("key derivation"):
                keys = [
                    derive_key(seed, fp, algorithm)
                    for seed, fp in zip(seeds, fingerprints)
                ]
            misses: List[Tuple[int, bytes, bytes, bytes, bytes]] = []
            resolved_here: List[_Resolved] = []
            cache_hit_count = 0
            alias_count = 0
            for offset, (chunk, fp, seed, key) in enumerate(
                zip(pending, fingerprints, seeds, keys)
            ):
                index = base_index + offset
                cached = (
                    cache.lookup(fp, seed) if cache is not None else None
                )
                if cached is not None:
                    cache_hit_count += 1
                    resolved_here.append(
                        _Resolved(
                            index=index,
                            size=len(chunk),
                            key=key,
                            cipher_fp=cached,
                            ciphertext=None,
                            fingerprint=fp,
                            seed=seed,
                        )
                    )
                    continue
                if cache is not None:
                    pair = FingerprintCache.key(fp, seed)
                    if pair in first_seen:
                        alias_count += 1
                        resolved_here.append(
                            _Resolved(
                                index=index,
                                size=len(chunk),
                                key=key,
                                cipher_fp=None,
                                ciphertext=None,
                                fingerprint=fp,
                                seed=seed,
                            )
                        )
                        continue
                    first_seen.add(pair)
                misses.append((index, chunk, fp, seed, key))
            base_index += len(pending)
            if resolved_here:
                if cache_hit_count:
                    _PIPELINE_CHUNKS.labels(path="cache_hit").inc(
                        cache_hit_count
                    )
                if alias_count:
                    _PIPELINE_CHUNKS.labels(path="inflight_dup").inc(
                        alias_count
                    )
                self.result_q.put(resolved_here)
            # Fan misses out to the encrypt workers in contiguous slices;
            # the resequencer restores global order downstream.
            if misses:
                job_size = max(32, -(-len(misses) // self.workers))
                for start in range(0, len(misses), job_size):
                    self.encrypt_q.put(misses[start : start + job_size])
        for _ in range(self.workers):
            self.encrypt_q.put(_FEED_END)

    def _keygen(self, hash_vectors: List[List[int]]) -> List[bytes]:
        """One sequenced keygen round trip (falls back for old stubs)."""
        transport = self.client.key_manager
        batched = getattr(transport, "keygen_batched", None)
        if batched is None:
            from repro.tedstore.messages import KeyGenRequest

            return transport.keygen(
                KeyGenRequest(hash_vectors=hash_vectors)
            ).seeds
        request = BatchedKeyGenRequest(
            sequence=self._sequence, hash_vectors=hash_vectors
        )
        self._sequence += 1
        return batched(request).seeds

    def _encrypt_worker(self, timer: StageTimer) -> None:
        """Encrypt cache misses; fingerprint the ciphertexts."""
        profile = self.client.profile
        algorithm = profile.hash_algorithm
        while True:
            job = self.encrypt_q.get()
            if job is _FEED_END:
                return
            resolved: List[_Resolved] = []
            with timer.stage("encryption"), _WORKERS_BUSY.track(), \
                    _STAGE_SECONDS.labels(stage="encrypt_job").time():
                if self._pool is not None:
                    resolved = self._pool.submit(
                        _mp_encrypt_job, profile.name, job
                    ).result()
                else:
                    for index, chunk, fp, seed, key in job:
                        ciphertext = profile.encrypt(key, chunk)
                        resolved.append(
                            _Resolved(
                                index=index,
                                size=len(chunk),
                                key=key,
                                cipher_fp=digest(ciphertext, algorithm),
                                ciphertext=ciphertext,
                                fingerprint=fp,
                                seed=seed,
                            )
                        )
            _PIPELINE_CHUNKS.labels(path="encrypted").inc(len(resolved))
            self.result_q.put(resolved)

    def _upload(self, file_name: str) -> None:
        """Re-sequence, batch at serial boundaries, PUT in order."""
        client = self.client
        cache = client.fingerprint_cache
        timer = client.timer
        self.file_recipe = FileRecipe(file_name=file_name)
        buffered = {}
        next_index = 0
        batch: List[_Resolved] = []
        # Ciphertext fingerprint of every sequenced (fingerprint, seed)
        # pair, for resolving in-flight aliases (``cipher_fp is None``).
        # Sequencing is in chunk order, so a pair's first occurrence is
        # always recorded before any alias of it is drained.
        resolved_fp: Dict[bytes, bytes] = {}

        def flush() -> None:
            to_send = [
                (e.cipher_fp, e.ciphertext)
                for e in batch
                if e.ciphertext is not None
            ]
            if to_send:
                with timer.stage("write"), _STAGE_SECONDS.labels(
                    stage="upload_batch"
                ).time():
                    response = client.provider.put_chunks(
                        PutChunks(chunks=to_send)
                    )
                self.stored += response.stored
                self.duplicates += response.duplicates
            if cache is not None:
                for e in batch:
                    if e.ciphertext is not None:
                        # Coherence rule: insert only after the provider
                        # acknowledged the batch (DESIGN.md §10).
                        cache.insert(e.fingerprint, e.seed, e.cipher_fp)
            batch.clear()

        while True:
            expected = self._expected_total()
            if expected is not None and next_index >= expected:
                break
            try:
                entries = self.result_q.try_get()
            except queue.Empty:
                # Nothing in flight right now; the total may have just
                # been published — loop to re-check the exit condition.
                continue
            for entry in entries:
                buffered[entry.index] = entry
            while next_index in buffered:
                entry = buffered.pop(next_index)
                next_index += 1
                if entry.cipher_fp is None:
                    # In-flight alias: a duplicate of a pair dispatched
                    # earlier this run. The provider would have deduped
                    # it anyway; count it as a duplicate (not a cache
                    # hit — the cache never saw it).
                    entry.cipher_fp = resolved_fp[
                        FingerprintCache.key(entry.fingerprint, entry.seed)
                    ]
                    self.duplicates += 1
                else:
                    if cache is not None:
                        resolved_fp[
                            FingerprintCache.key(
                                entry.fingerprint, entry.seed
                            )
                        ] = entry.cipher_fp
                    if entry.ciphertext is None:
                        self.cache_hits += 1
                        self.duplicates += 1
                self.file_recipe.add(entry.cipher_fp, entry.size)
                self.key_recipe.add(entry.key)
                self.logical_bytes += entry.size
                batch.append(entry)
                if len(batch) >= client.batch_size:
                    flush()
        if buffered:
            raise RuntimeError(
                f"pipeline lost chunks: {len(buffered)} left unsequenced"
            )
        flush()
        self.chunk_count = next_index

    # -- orchestration --------------------------------------------------------

    def run(self, file_name: str, chunks: Iterable[bytes]) -> None:
        """Run the full pipeline to completion (or first failure).

        The caller's thread acts as the feed stage. On return, recipes
        and counters are populated; on failure every thread has exited
        and a :class:`PipelineError` wraps the first stage error.
        """
        worker_timers = [StageTimer() for _ in range(self.workers)]
        threads = [
            threading.Thread(
                target=self._run_guarded,
                args=(self._dispatch,),
                name="ted-pipeline-dispatch",
                daemon=True,
            ),
            threading.Thread(
                target=self._run_guarded,
                args=(lambda: self._upload(file_name),),
                name="ted-pipeline-upload",
                daemon=True,
            ),
        ]
        threads.extend(
            threading.Thread(
                target=self._run_guarded,
                args=(lambda t=timer: self._encrypt_worker(t),),
                name=f"ted-pipeline-encrypt-{i}",
                daemon=True,
            )
            for i, timer in enumerate(worker_timers)
        )
        if self.crypto_workers:
            self._pool = ProcessPoolExecutor(max_workers=self.crypto_workers)
        with tracing.get_tracer().span(
            "client.pipeline",
            attributes={"workers": self.workers, "file": file_name},
        ):
            for thread in threads:
                thread.start()
            try:
                self._run_guarded(lambda: self._feed(chunks))
            finally:
                for thread in threads:
                    thread.join()
                if self._pool is not None:
                    self._pool.shutdown(wait=True)
                    self._pool = None
        for timer in worker_timers:
            self.client.timer.merge(timer)
        if self.failure.exc is not None:
            raise PipelineError(
                f"pipelined upload of {file_name!r} failed: "
                f"{self.failure.exc}"
            ) from self.failure.exc
