"""Deterministic fault injection for TEDStore transports.

Wraps any key-manager, provider, or quorum-replica stub and injects the
four failure modes a real deployment sees on the wire:

* **drop** — the request is lost before delivery (``InjectedFault``).
* **close** — the request is delivered but the reply is lost, modelling a
  connection torn down mid-exchange. For non-idempotent state this is the
  dangerous case: the side effect happened, the caller doesn't know.
* **delay** — the reply stalls (drives idle-timeout and deadline paths).
* **corrupt** — the reply's encoded payload has one byte flipped and is
  re-decoded, so the caller sees either a ``ProtocolError`` or silently
  corrupted data, exactly as a damaged frame would present.

All randomness comes from one seeded RNG per wrapper, so a fault schedule
replays identically run after run — degraded-path tests are deterministic,
never flaky.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.tedstore import messages as m


class InjectedFault(ConnectionError):
    """A transport failure injected by a :class:`FaultPlan`."""


@dataclass(frozen=True)
class FaultPlan:
    """Probabilities and parameters of injected faults.

    Rates are independent per-call probabilities in ``[0, 1]``; ``seed``
    makes the schedule deterministic; ``sleep`` is injectable so delay
    faults cost no real time in tests.
    """

    drop_rate: float = 0.0
    close_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.0
    corrupt_rate: float = 0.0
    seed: int = 0
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        for name in ("drop_rate", "close_rate", "delay_rate", "corrupt_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds cannot be negative")

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same plan with a different RNG seed (per-replica schedules)."""
        return replace(self, seed=seed)


class _Injector:
    """Seeded fault scheduler shared by the transport wrappers.

    Thread-safe: the pipelined client calls one transport from several
    worker threads concurrently, so RNG draws and counter updates are
    serialized under a lock (the delay sleep happens outside it). Under
    concurrency the *assignment* of faults to calls depends on thread
    scheduling, but the fault schedule itself — which call numbers fault
    — stays the seeded, reproducible sequence.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self.counters: Dict[str, int] = {
            "drops": 0,
            "closes": 0,
            "delays": 0,
            "corruptions": 0,
            "deliveries": 0,
        }

    def before(self, op: str) -> None:
        """Fault point before the request reaches the inner stub."""
        delay = False
        with self._lock:
            if (
                self.plan.delay_rate
                and self._rng.random() < self.plan.delay_rate
            ):
                self.counters["delays"] += 1
                delay = True
        if delay:
            self.plan.sleep(self.plan.delay_seconds)
        with self._lock:
            if (
                self.plan.drop_rate
                and self._rng.random() < self.plan.drop_rate
            ):
                self.counters["drops"] += 1
                raise InjectedFault(f"injected drop before {op}")

    def after(self, op: str, response, codec=None):
        """Fault point after the inner stub produced a response.

        With a ``codec`` (the response dataclass), corruption faults flip
        one byte of the encoded payload and re-decode it; a decode failure
        surfaces as :class:`~repro.tedstore.messages.ProtocolError`.
        """
        with self._lock:
            if (
                self.plan.close_rate
                and self._rng.random() < self.plan.close_rate
            ):
                self.counters["closes"] += 1
                raise InjectedFault(f"injected close after {op} (reply lost)")
            corrupt = (
                codec is not None
                and self.plan.corrupt_rate
                and self._rng.random() < self.plan.corrupt_rate
            )
            if corrupt:
                payload = bytearray(response.encode())
                if payload:
                    self.counters["corruptions"] += 1
                    payload[self._rng.randrange(len(payload))] ^= 0xFF
                else:
                    corrupt = False
            self.counters["deliveries"] += 1
        if corrupt:
            try:
                response = codec.decode(bytes(payload))
            except Exception as exc:
                raise m.ProtocolError(
                    f"injected corrupt frame in {op}: {exc}"
                ) from exc
        return response


class FaultyKeyManager:
    """Fault-injecting wrapper around any ``KeyManagerTransport``."""

    def __init__(self, inner, plan: FaultPlan) -> None:
        self._inner = inner
        self._injector = _Injector(plan)

    @property
    def fault_counters(self) -> Dict[str, int]:
        return dict(self._injector.counters)

    def keygen(self, request: m.KeyGenRequest) -> m.KeyGenResponse:
        self._injector.before("keygen")
        response = self._inner.keygen(request)
        return self._injector.after("keygen", response, codec=m.KeyGenResponse)

    def keygen_batched(
        self, request: m.BatchedKeyGenRequest
    ) -> m.BatchedKeyGenResponse:
        self._injector.before("keygen_batched")
        response = self._inner.keygen_batched(request)
        return self._injector.after(
            "keygen_batched", response, codec=m.BatchedKeyGenResponse
        )

    def stats(self) -> List[Tuple[str, int]]:
        self._injector.before("stats")
        return self._injector.after("stats", self._inner.stats())

    def close(self) -> None:
        close = getattr(self._inner, "close", None)
        if close is not None:
            close()


class FaultyProvider:
    """Fault-injecting wrapper around any ``ProviderTransport``."""

    def __init__(self, inner, plan: FaultPlan) -> None:
        self._inner = inner
        self._injector = _Injector(plan)

    @property
    def fault_counters(self) -> Dict[str, int]:
        return dict(self._injector.counters)

    def put_chunks(self, request: m.PutChunks) -> m.PutChunksResponse:
        self._injector.before("put_chunks")
        response = self._inner.put_chunks(request)
        return self._injector.after(
            "put_chunks", response, codec=m.PutChunksResponse
        )

    def get_chunks(self, request: m.GetChunks) -> m.Chunks:
        self._injector.before("get_chunks")
        response = self._inner.get_chunks(request)
        return self._injector.after("get_chunks", response, codec=m.Chunks)

    def put_recipes(self, request: m.PutRecipes) -> None:
        self._injector.before("put_recipes")
        self._inner.put_recipes(request)
        self._injector.after("put_recipes", None)

    def get_recipes(self, request: m.GetRecipes) -> m.PutRecipes:
        self._injector.before("get_recipes")
        response = self._inner.get_recipes(request)
        return self._injector.after(
            "get_recipes", response, codec=m.PutRecipes
        )

    def stats(self) -> List[Tuple[str, int]]:
        self._injector.before("stats")
        return self._injector.after("stats", self._inner.stats())

    def close(self) -> None:
        close = getattr(self._inner, "close", None)
        if close is not None:
            close()


class FaultyQuorumServer:
    """Fault-injecting wrapper around a quorum key-manager replica.

    ``QuorumClient.derive_key`` treats :class:`InjectedFault` like any
    transport failure: the replica is skipped and the quorum proceeds with
    the remaining ones, which is exactly the degraded-mode behaviour the
    (k, n)-threshold design promises.
    """

    def __init__(
        self, inner, plan: FaultPlan, seed: Optional[int] = None
    ) -> None:
        self._inner = inner
        if seed is None:
            # Distinct default schedule per replica: a shared seed would
            # make every replica fail on exactly the same requests, which
            # defeats the quorum.
            seed = plan.seed * 1_000_003 + inner.server_id
        self._injector = _Injector(plan.with_seed(seed))

    @property
    def server_id(self) -> int:
        return self._inner.server_id

    @property
    def fault_counters(self) -> Dict[str, int]:
        return dict(self._injector.counters)

    def sign_blinded(self, blinded_point):
        self._injector.before("sign_blinded")
        result = self._inner.sign_blinded(blinded_point)
        return self._injector.after("sign_blinded", result)
