"""Deterministic fault injection for TEDStore transports.

Wraps any key-manager, provider, or quorum-replica stub and injects the
four failure modes a real deployment sees on the wire:

* **drop** — the request is lost before delivery (``InjectedFault``).
* **close** — the request is delivered but the reply is lost, modelling a
  connection torn down mid-exchange. For non-idempotent state this is the
  dangerous case: the side effect happened, the caller doesn't know.
* **delay** — the reply stalls (drives idle-timeout and deadline paths).
* **corrupt** — the reply's encoded payload has one byte flipped and is
  re-decoded, so the caller sees either a ``ProtocolError`` or silently
  corrupted data, exactly as a damaged frame would present.

Two further *stateful* fault kinds model whole-process failure domains
for the chaos harness (``tools/chaos.py``, DESIGN.md §17). They are
toggled, not drawn from the RNG, because a pause or partition is a
condition with duration, not a per-call coin flip:

* **pause** — :meth:`~FaultyProvider.pause` makes every call block
  until :meth:`~FaultyProvider.resume`, the in-process analogue of
  ``SIGSTOP`` on a shard process: the peer is alive but silent, which
  is what drives client io-timeouts and opens circuit breakers.
* **partition** — :meth:`~FaultyProvider.partition` makes every call
  fail instantly with :class:`InjectedFault` until
  :meth:`~FaultyProvider.heal`, the analogue of a network partition:
  connections are refused outright, no timeout is spent.

All randomness comes from one seeded RNG per wrapper, so a fault schedule
replays identically run after run — degraded-path tests are deterministic,
never flaky.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.tedstore import messages as m


class InjectedFault(ConnectionError):
    """A transport failure injected by a :class:`FaultPlan`."""


@dataclass(frozen=True)
class FaultPlan:
    """Probabilities and parameters of injected faults.

    Rates are independent per-call probabilities in ``[0, 1]``; ``seed``
    makes the schedule deterministic; ``sleep`` is injectable so delay
    faults cost no real time in tests.
    """

    drop_rate: float = 0.0
    close_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.0
    corrupt_rate: float = 0.0
    seed: int = 0
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        for name in ("drop_rate", "close_rate", "delay_rate", "corrupt_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds cannot be negative")

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same plan with a different RNG seed (per-replica schedules)."""
        return replace(self, seed=seed)


class _Injector:
    """Seeded fault scheduler shared by the transport wrappers.

    Thread-safe: the pipelined client calls one transport from several
    worker threads concurrently, so RNG draws and counter updates are
    serialized under a lock (the delay sleep happens outside it). Under
    concurrency the *assignment* of faults to calls depends on thread
    scheduling, but the fault schedule itself — which call numbers fault
    — stays the seeded, reproducible sequence.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        # Pause/partition are duration conditions, not RNG draws. The
        # event starts set (= running); pause() clears it so callers
        # block in before() until resume() sets it again.
        self._running = threading.Event()
        self._running.set()
        self._partitioned = False
        self.counters: Dict[str, int] = {
            "drops": 0,
            "closes": 0,
            "delays": 0,
            "corruptions": 0,
            "deliveries": 0,
            "paused_calls": 0,
            "partition_rejects": 0,
        }

    def pause(self) -> None:
        """Block every subsequent call until :meth:`resume` (SIGSTOP)."""
        self._running.clear()

    def resume(self) -> None:
        """Release callers blocked by :meth:`pause` (SIGCONT)."""
        self._running.set()

    @property
    def paused(self) -> bool:
        return not self._running.is_set()

    def partition(self) -> None:
        """Fail every subsequent call instantly until :meth:`heal`."""
        with self._lock:
            self._partitioned = True

    def heal(self) -> None:
        """End a :meth:`partition`; calls flow to the inner stub again."""
        with self._lock:
            self._partitioned = False

    @property
    def partitioned(self) -> bool:
        with self._lock:
            return self._partitioned

    def before(self, op: str) -> None:
        """Fault point before the request reaches the inner stub."""
        # Partition check precedes the pause wait: a partitioned peer
        # refuses instantly, it does not sit in a connect stall.
        with self._lock:
            if self._partitioned:
                self.counters["partition_rejects"] += 1
                raise InjectedFault(f"injected partition before {op}")
        if not self._running.is_set():
            with self._lock:
                self.counters["paused_calls"] += 1
            self._running.wait()
            # A pause often ends in a partition or kill; re-check so a
            # resume-then-partition race can't slip a call through.
            with self._lock:
                if self._partitioned:
                    self.counters["partition_rejects"] += 1
                    raise InjectedFault(f"injected partition before {op}")
        delay = False
        with self._lock:
            if (
                self.plan.delay_rate
                and self._rng.random() < self.plan.delay_rate
            ):
                self.counters["delays"] += 1
                delay = True
        if delay:
            self.plan.sleep(self.plan.delay_seconds)
        with self._lock:
            if (
                self.plan.drop_rate
                and self._rng.random() < self.plan.drop_rate
            ):
                self.counters["drops"] += 1
                raise InjectedFault(f"injected drop before {op}")

    def after(self, op: str, response, codec=None):
        """Fault point after the inner stub produced a response.

        With a ``codec`` (the response dataclass), corruption faults flip
        one byte of the encoded payload and re-decode it; a decode failure
        surfaces as :class:`~repro.tedstore.messages.ProtocolError`.
        """
        with self._lock:
            if (
                self.plan.close_rate
                and self._rng.random() < self.plan.close_rate
            ):
                self.counters["closes"] += 1
                raise InjectedFault(f"injected close after {op} (reply lost)")
            corrupt = (
                codec is not None
                and self.plan.corrupt_rate
                and self._rng.random() < self.plan.corrupt_rate
            )
            if corrupt:
                payload = bytearray(response.encode())
                if payload:
                    self.counters["corruptions"] += 1
                    payload[self._rng.randrange(len(payload))] ^= 0xFF
                else:
                    corrupt = False
            self.counters["deliveries"] += 1
        if corrupt:
            try:
                response = codec.decode(bytes(payload))
            except Exception as exc:
                raise m.ProtocolError(
                    f"injected corrupt frame in {op}: {exc}"
                ) from exc
        return response


class _FaultControls:
    """Pause/partition toggles shared by every faulty wrapper."""

    _injector: _Injector

    @property
    def fault_counters(self) -> Dict[str, int]:
        return dict(self._injector.counters)

    def pause(self) -> None:
        """Freeze the wrapped peer: calls block until :meth:`resume`."""
        self._injector.pause()

    def resume(self) -> None:
        """Unfreeze a :meth:`pause`-d peer."""
        self._injector.resume()

    @property
    def paused(self) -> bool:
        return self._injector.paused

    def partition(self) -> None:
        """Cut the wrapped peer off: calls fail until :meth:`heal`."""
        self._injector.partition()

    def heal(self) -> None:
        """Reconnect a :meth:`partition`-ed peer."""
        self._injector.heal()

    @property
    def partitioned(self) -> bool:
        return self._injector.partitioned


class FaultyKeyManager(_FaultControls):
    """Fault-injecting wrapper around any ``KeyManagerTransport``."""

    def __init__(self, inner, plan: FaultPlan) -> None:
        self._inner = inner
        self._injector = _Injector(plan)

    def keygen(self, request: m.KeyGenRequest) -> m.KeyGenResponse:
        self._injector.before("keygen")
        response = self._inner.keygen(request)
        return self._injector.after("keygen", response, codec=m.KeyGenResponse)

    def keygen_batched(
        self, request: m.BatchedKeyGenRequest
    ) -> m.BatchedKeyGenResponse:
        self._injector.before("keygen_batched")
        response = self._inner.keygen_batched(request)
        return self._injector.after(
            "keygen_batched", response, codec=m.BatchedKeyGenResponse
        )

    def stats(self) -> List[Tuple[str, int]]:
        self._injector.before("stats")
        return self._injector.after("stats", self._inner.stats())

    def close(self) -> None:
        close = getattr(self._inner, "close", None)
        if close is not None:
            close()


class FaultyProvider(_FaultControls):
    """Fault-injecting wrapper around any ``ProviderTransport``."""

    def __init__(self, inner, plan: FaultPlan) -> None:
        self._inner = inner
        self._injector = _Injector(plan)

    def put_chunks(self, request: m.PutChunks) -> m.PutChunksResponse:
        self._injector.before("put_chunks")
        response = self._inner.put_chunks(request)
        return self._injector.after(
            "put_chunks", response, codec=m.PutChunksResponse
        )

    def get_chunks(self, request: m.GetChunks) -> m.Chunks:
        self._injector.before("get_chunks")
        response = self._inner.get_chunks(request)
        return self._injector.after("get_chunks", response, codec=m.Chunks)

    def put_recipes(self, request: m.PutRecipes) -> None:
        self._injector.before("put_recipes")
        self._inner.put_recipes(request)
        self._injector.after("put_recipes", None)

    def get_recipes(self, request: m.GetRecipes) -> m.PutRecipes:
        self._injector.before("get_recipes")
        response = self._inner.get_recipes(request)
        return self._injector.after(
            "get_recipes", response, codec=m.PutRecipes
        )

    def stats(self) -> List[Tuple[str, int]]:
        self._injector.before("stats")
        return self._injector.after("stats", self._inner.stats())

    def close(self) -> None:
        close = getattr(self._inner, "close", None)
        if close is not None:
            close()


class FaultyQuorumServer(_FaultControls):
    """Fault-injecting wrapper around a quorum key-manager replica.

    ``QuorumClient.derive_key`` treats :class:`InjectedFault` like any
    transport failure: the replica is skipped and the quorum proceeds with
    the remaining ones, which is exactly the degraded-mode behaviour the
    (k, n)-threshold design promises.
    """

    def __init__(
        self, inner, plan: FaultPlan, seed: Optional[int] = None
    ) -> None:
        self._inner = inner
        if seed is None:
            # Distinct default schedule per replica: a shared seed would
            # make every replica fail on exactly the same requests, which
            # defeats the quorum.
            seed = plan.seed * 1_000_003 + inner.server_id
        self._injector = _Injector(plan.with_seed(seed))

    @property
    def server_id(self) -> int:
        return self._inner.server_id

    def sign_blinded(self, blinded_point):
        self._injector.before("sign_blinded")
        result = self._inner.sign_blinded(blinded_point)
        return self._injector.after("sign_blinded", result)
