"""Command-line interface for the TED/TEDStore reproduction.

Gives downstream users the paper's workflows without writing Python:

* ``serve-keymanager`` / ``serve-provider`` — run the TEDStore entities.
* ``serve-shard`` — run one shard of a fleet (a KM sketch observer or a
  provider storage leaf) as its own process and failure domain
  (DESIGN.md §17); SIGTERM drains and seals before exit.
* ``upload`` / ``download`` — move files through a running deployment.
* ``generate-trace`` — write synthetic FSL/MS-like snapshots to disk.
* ``analyze`` — trade-off analysis (KLD/blowup per scheme) on a trace file.
* ``tune`` — solve the Eq. 6-8 optimization for a trace and a blowup
  factor, printing the derived balance parameter ``t``.
* ``stats`` — query running TEDStore servers for their counters and
  metrics snapshots (table, JSON, or Prometheus output).
* ``fsck`` — verify (and with ``--repair``, heal) a provider storage
  root: container framing, per-chunk checksums, index reachability
  (DESIGN.md §12, docs/RUNBOOK.md).
* ``trace`` — run an in-process upload/download demo and print the
  resulting span tree plus a Prometheus metrics export (DESIGN.md §9).
* ``loadgen`` — run a declarative multi-tenant load profile against an
  in-process or TCP deployment, print per-op p50/p95/p99, throughput,
  and error rates from the obs registry, and exit nonzero on SLO
  breach (DESIGN.md §14).
* ``top`` — per-op qps/p99/error view of a load run, either replaying a
  finished flight-recorder file or following one being written.

Examples::

    python -m repro.cli generate-trace --flavor fsl --out /tmp/traces
    python -m repro.cli analyze /tmp/traces/fsl-0000.trc --b 1.05 1.2
    python -m repro.cli serve-keymanager --port 9401 &
    python -m repro.cli serve-provider --port 9402 --storage /tmp/store &
    python -m repro.cli upload  --km localhost:9401 --provider localhost:9402 \
        --master-key secret.bin myfile.bin
    python -m repro.cli download --km localhost:9401 --provider localhost:9402 \
        --master-key secret.bin myfile.bin --out restored.bin
"""

from __future__ import annotations

import argparse
import hashlib
import signal
import sys
import threading
import time
from pathlib import Path
from typing import List, Optional, Tuple

from repro.analysis.tradeoff import make_fted
from repro.core.schemes import MLEScheme, MinHashScheme, SKEScheme
from repro.core.ted import TedKeyManager
from repro.core.tuning import solve
from repro.crypto.cipher import get_profile
from repro.tedstore.client import TedStoreClient
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.network import (
    RemoteKeyManager,
    RemoteProvider,
    serve_key_manager,
    serve_provider,
)
from repro.tedstore.provider import ProviderService
from repro.traces.format import read_snapshot, write_dataset
from repro.traces.synthetic import generate_fsl_like, generate_ms_like


def _address(value: str) -> Tuple[str, int]:
    host, _, port = value.rpartition(":")
    return host or "127.0.0.1", int(port)


def _master_key(path: Optional[str]) -> bytes:
    if path is None:
        return b"\x01" * 32
    return hashlib.sha256(Path(path).read_bytes()).digest()


def _make_client(args: argparse.Namespace) -> TedStoreClient:
    workers = getattr(args, "workers", 1)
    crypto_workers = getattr(args, "crypto_workers", 0)
    cache = None
    if getattr(args, "fp_cache", 0) > 0:
        from repro.storage.dedup import FingerprintCache

        cache = FingerprintCache(capacity=args.fp_cache)
    pipelined = workers > 1 or crypto_workers > 0 or cache is not None
    auth_token = b""
    if getattr(args, "auth_token", None):
        auth_token = Path(args.auth_token).read_bytes().strip()
    ring_file = getattr(args, "ring_file", None)
    if ring_file:
        # Fleet mode: the ring's endpoint map names one provider
        # process per shard; route sub-batches there directly with a
        # circuit breaker per shard (DESIGN.md §17).
        from repro.tedstore.fleet import MultiShardProvider
        from repro.tedstore.ring import load_ring

        ring = load_ring(ring_file)
        if not ring.endpoints:
            raise SystemExit(
                f"{ring_file} has no endpoint map; fleet mode needs "
                "per-shard endpoints (repro serve-shard)"
            )
        provider = MultiShardProvider(
            ring,
            tenant=getattr(args, "tenant", "") or "default",
            auth_token=auth_token,
            data_connections=2 if pipelined else 0,
            heartbeat_interval=getattr(args, "heartbeat_interval", 0.0),
        )
    else:
        provider = RemoteProvider(
            _address(args.provider),
            # Pipelined uploads push data frames over dedicated
            # connections so PUT traffic never queues behind control
            # round trips (DESIGN.md §10).
            data_connections=2 if pipelined else 0,
            tenant=getattr(args, "tenant", "") or "default",
            auth_token=auth_token,
        )
        shards = getattr(args, "shards", 1)
        if shards > 1:
            from repro.tedstore.ring import HashRing
            from repro.tedstore.sharding import ShardRoutingProvider

            provider = ShardRoutingProvider(
                provider,
                HashRing.build(shards, seed=getattr(args, "ring_seed", 0)),
            )
    return TedStoreClient(
        RemoteKeyManager(_address(args.km)),
        provider,
        master_key=_master_key(args.master_key),
        profile=get_profile(args.profile),
        sketch_width=args.sketch_width,
        batch_size=args.batch_size,
        metadata_dedup=getattr(args, "metadedup", False),
        workers=workers,
        pipeline_depth=getattr(args, "pipeline_depth", 4),
        fingerprint_cache=cache,
        crypto_workers=crypto_workers,
    )


def _run_server(handle, service) -> int:
    """Serve until SIGTERM/SIGINT, then drain and close cleanly.

    The shutdown order matters for crash-consistency guarantees:
    ``handle.stop()`` first (stop accepting, drain in-flight requests),
    ``service.close()`` second (seal open containers, snapshot durable
    state, remove ``.tmp`` staging files). A ``repro serve-shard``
    child killed with SIGTERM therefore leaves a storage root that
    fsck reports clean — the contract docs/RUNBOOK.md relies on.
    """
    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    previous = signal.signal(signal.SIGTERM, _on_signal)
    try:
        while not stop.is_set():
            try:
                stop.wait(1.0)
            except KeyboardInterrupt:
                stop.set()
    finally:
        signal.signal(signal.SIGTERM, previous)
        handle.stop()
        service.close()
    return 0


def cmd_serve_keymanager(args: argparse.Namespace) -> int:
    limiter = None
    if args.rate_limit > 0:
        from repro.tedstore.ratelimit import KeyGenRateLimiter

        limiter = KeyGenRateLimiter(
            chunks_per_second=args.rate_limit,
            burst_chunks=2.0 * args.rate_limit,
        )
    front = TedKeyManager(
        secret=args.secret.encode(),
        blowup_factor=args.b,
        batch_size=args.batch_size,
        sketch_width=args.sketch_width,
    )
    state_dir = Path(args.state_dir) if args.state_dir else None
    ring_on_disk = (
        state_dir is not None and (state_dir / "ring.json").exists()
    )
    if args.shards > 1 or ring_on_disk:
        from repro.tedstore.ring import HashRing
        from repro.tedstore.sharding import ShardedKeyManager

        ring = (
            None
            if ring_on_disk
            else HashRing.build(args.shards, seed=args.ring_seed)
        )
        service = ShardedKeyManager(
            front,
            ring,
            rate_limiter=limiter,
            state_root=state_dir,
            # Only consulted when the persisted ring publishes shard
            # endpoints, i.e. the observers are serve-shard processes.
            fleet_options={
                "heartbeat_interval": args.heartbeat_interval
            },
        )
        unit = "shard processes" if service.ring.endpoints else "shards"
        shard_note = f", {len(service.ring)} KM {unit}"
    else:
        state_store = None
        if state_dir is not None:
            from repro.tedstore.km_state import KeyManagerStateStore

            state_store = KeyManagerStateStore(state_dir)
        service = KeyManagerService(
            front, rate_limiter=limiter, state_store=state_store
        )
        shard_note = ""
    handle = serve_key_manager(service, host=args.host, port=args.port)
    print(
        f"key manager listening on {handle.address} "
        f"(b={args.b}{shard_note})",
        flush=True,
    )
    if service.restore_report is not None:
        report = service.restore_report
        print(
            f"restored durable state: snapshot={report.snapshot_loaded}, "
            f"deltas replayed={report.deltas_replayed}",
            flush=True,
        )
    return _run_server(handle, service)


def cmd_serve_provider(args: argparse.Namespace) -> int:
    auth_tokens = None
    if args.auth_file:
        # One "tenant:token" per line; blank lines and '#' comments
        # are skipped.
        auth_tokens = {}
        for line in Path(args.auth_file).read_text().splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            tenant, _, token = line.partition(":")
            auth_tokens[tenant.strip()] = token.strip().encode()
    service = ProviderService(
        directory=args.storage,
        container_bytes=args.container_mb << 20,
        lookahead_window=args.lookahead_window or None,
        scrub_interval=args.scrub_interval or None,
        cross_user_dedup=args.cross_user_dedup,
        quota_bytes=args.quota_bytes or None,
        quota_files=args.quota_files or None,
        auth_tokens=auth_tokens,
        shards=args.shards,
        ring_seed=args.ring_seed,
    )
    handle = serve_provider(service, host=args.host, port=args.port)
    mode = "shared" if args.cross_user_dedup else "partitioned"
    shard_note = (
        f", {len(service.ring)} shards" if service.ring is not None else ""
    )
    print(
        f"provider listening on {handle.address}, storage={args.storage}, "
        f"dedup index {mode} across tenants{shard_note}",
        flush=True,
    )
    return _run_server(handle, service)


def cmd_serve_shard(args: argparse.Namespace) -> int:
    """Run one shard of a fleet as its own process (DESIGN.md §17)."""
    from repro.tedstore.network import parse_endpoint, serve_shard_observer
    from repro.tedstore.ring import load_ring

    root = Path(args.root)
    ring_path = root / "ring.json"
    ring = load_ring(ring_path) if ring_path.exists() else None
    if ring is not None and args.shard not in ring.shards:
        print(
            f"shard {args.shard} not in ring {sorted(ring.shards)}",
            file=sys.stderr,
        )
        return 2
    host, port = args.host, args.port
    if port == 0 and ring is not None:
        endpoint = ring.endpoint_for(args.shard)
        if endpoint:
            host, port = parse_endpoint(endpoint)
    epoch = ring.epoch if ring is not None else 0
    shard_dir = root / "shards" / str(args.shard)

    if args.role == "km":
        from repro.tedstore.sharding import (
            ShardObserverService,
            make_shard_observer,
        )

        front = TedKeyManager(
            secret=args.secret.encode(),
            blowup_factor=args.b,
            batch_size=args.batch_size,
            sketch_width=args.sketch_width,
        )
        service = ShardObserverService(
            args.shard,
            make_shard_observer(front),
            state_dir=None if args.ephemeral else shard_dir,
            ring_epoch=epoch,
        )
        handle = serve_shard_observer(service, host=host, port=port)
        report = service.restore_report
        print(
            f"km shard {args.shard} listening on {handle.address} "
            f"(epoch {epoch}, snapshot={report.snapshot_loaded}, "
            f"deltas replayed={report.deltas_replayed})",
            flush=True,
        )
    else:
        shard_dir.mkdir(parents=True, exist_ok=True)
        service = ProviderService(
            directory=shard_dir,
            container_bytes=args.container_mb << 20,
            cross_user_dedup=args.cross_user_dedup,
        )
        handle = serve_provider(
            service,
            host=host,
            port=port,
            shard_id=args.shard,
            ring_epoch=epoch,
        )
        print(
            f"provider shard {args.shard} listening on {handle.address}, "
            f"storage={shard_dir} (epoch {epoch})",
            flush=True,
        )
    return _run_server(handle, service)


def cmd_fsck(args: argparse.Namespace) -> int:
    from repro.storage.scrub import fsck_path

    report = fsck_path(
        args.storage, repair=args.repair, deep=not args.shallow
    )
    if args.json:
        import json

        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"checked {report.containers_checked} containers, "
            f"{report.chunks_verified} chunks, "
            f"{report.index_entries_checked} index entries "
            f"in {report.seconds:.2f}s"
        )
        for container_id in report.structural_errors:
            print(f"  STRUCTURAL: container-{container_id}.bin")
        for bad in report.bad_chunks:
            state = (
                "healed" if bad.healed
                else "dropped" if bad.dropped
                else "bad"
            )
            print(
                f"  {state.upper()}: container-{bad.container_id}.bin "
                f"offset={bad.offset} length={bad.length} "
                f"fingerprint={bad.fingerprint or '<none>'}"
            )
        if report.dangling_index_entries:
            print(
                f"  DANGLING: {report.dangling_index_entries} index "
                f"entries without durable chunks"
            )
        if report.repaired:
            print(
                f"  repaired: {report.healed} healed, "
                f"{report.dropped} dropped"
            )
        print("clean" if report.clean else "DAMAGED")
    return 0 if report.clean else 1


def cmd_reshard(args: argparse.Namespace) -> int:
    from repro.tedstore.reshard import ReshardError, run_reshard

    try:
        summaries = run_reshard(
            args.shards,
            storage=args.storage,
            km_state=args.km_state,
            ring_seed=args.ring_seed if args.ring_seed >= 0 else None,
            vnodes=args.vnodes if args.vnodes > 0 else None,
            container_bytes=args.container_mb << 20,
        )
    except ReshardError as exc:
        print(f"reshard failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        import json

        print(json.dumps(summaries, indent=2, sort_keys=True))
    else:
        for summary in summaries:
            fields = ", ".join(
                f"{key}={value}" for key, value in sorted(summary.items())
            )
            print(fields)
    return 0


def cmd_upload(args: argparse.Namespace) -> int:
    client = _make_client(args)
    data = Path(args.file).read_bytes()
    start = time.perf_counter()
    result = client.upload(args.name or Path(args.file).name, data)
    elapsed = time.perf_counter() - start
    cache_note = (
        f", {result.cache_hits} resolved client-side"
        if result.cache_hits
        else ""
    )
    print(
        f"uploaded {result.logical_bytes} bytes as {result.chunk_count} "
        f"chunks ({result.stored_chunks} stored, "
        f"{result.duplicate_chunks} deduplicated{cache_note}) "
        f"in {elapsed:.2f}s"
    )
    return 0


def cmd_download(args: argparse.Namespace) -> int:
    client = _make_client(args)
    start = time.perf_counter()
    data = client.download(args.name)
    elapsed = time.perf_counter() - start
    Path(args.out).write_bytes(data)
    print(f"downloaded {len(data)} bytes to {args.out} in {elapsed:.2f}s")
    return 0


def cmd_generate_trace(args: argparse.Namespace) -> int:
    if args.flavor == "ms":
        dataset = generate_ms_like(
            machines=args.snapshots, scale=args.scale, seed=args.seed
        )
    else:
        dataset = generate_fsl_like(
            users=1,
            snapshots_per_user=args.snapshots,
            scale=args.scale,
            seed=args.seed,
        )
    paths = write_dataset(args.out, dataset)
    for path, snapshot in zip(paths, dataset):
        print(
            f"{path}: {len(snapshot)} chunks, "
            f"{snapshot.unique_chunks} unique, "
            f"{snapshot.total_bytes / (1 << 20):.1f} MiB logical"
        )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    snapshot = read_snapshot(args.trace)
    print(
        f"{args.trace}: {len(snapshot)} chunks, {snapshot.unique_chunks} "
        f"unique, dedup ratio {snapshot.dedup_ratio:.2f}x"
    )
    schemes = [MLEScheme(), SKEScheme(), MinHashScheme()]
    schemes.extend(
        make_fted(b, sketch_width=args.sketch_width) for b in args.b
    )
    print(f"{'scheme':<14} {'KLD':>8} {'blowup':>8}")
    for scheme in schemes:
        output = scheme.process(snapshot.records)
        print(f"{scheme.name:<14} {output.kld():>8.4f} {output.blowup():>8.4f}")
    return 0


def _print_stats(sections: dict, fmt: str) -> None:
    if fmt == "json":
        import json

        print(json.dumps(sections, indent=2, sort_keys=True))
        return
    if fmt == "prom":
        # Remote stats arrive as flat (name, value) pairs, not a registry;
        # render them as untyped Prometheus samples with an entity label.
        for entity, pairs in sorted(sections.items()):
            for name, value in sorted(pairs.items()):
                clean = "".join(
                    c if c.isalnum() or c == "_" else "_" for c in name
                )
                print(f'ted_remote_{clean}{{entity="{entity}"}} {value}')
        return
    for entity, pairs in sorted(sections.items()):
        print(f"[{entity}]")
        width = max((len(n) for n in pairs), default=0)
        for name, value in sorted(pairs.items()):
            print(f"  {name:<{width}}  {value}")


def cmd_stats(args: argparse.Namespace) -> int:
    sections = {}
    if args.km:
        km = RemoteKeyManager(_address(args.km))
        try:
            sections["key_manager"] = dict(km.stats())
        finally:
            km.close()
    if args.provider:
        provider = RemoteProvider(_address(args.provider))
        try:
            sections["provider"] = dict(provider.stats())
        finally:
            provider.close()
    if not sections:
        print("nothing to query: pass --km and/or --provider", file=sys.stderr)
        return 2
    _print_stats(sections, args.format)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    import random

    from repro.obs import export, tracing
    from repro.tedstore.inprocess import LocalKeyManager, LocalProvider

    previous = tracing.get_tracer()
    recorder = tracing.SpanRecorder()
    tracer = tracing.set_tracer(tracing.Tracer(recorder=recorder))
    try:
        client = TedStoreClient(
            LocalKeyManager(KeyManagerService()),
            LocalProvider(ProviderService(in_memory=True)),
            profile=get_profile(args.profile),
        )
        rng = random.Random(args.seed)
        data = rng.randbytes(args.size_kb << 10)
        with tracer.span("demo.roundtrip"):
            client.upload("trace-demo", data)
            restored = client.download("trace-demo")
    finally:
        tracing.set_tracer(previous)
    if restored != data:
        print("round trip FAILED: downloaded bytes differ", file=sys.stderr)
        return 1
    print(export.format_recorder(recorder))
    print(
        f"\nrecorder: {recorder.used}/{recorder.capacity} spans held, "
        f"{recorder.dropped} dropped"
    )
    print()
    print(export.prometheus_text())
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.loadgen.report import LoadReport, write_bench
    from repro.loadgen.runner import (
        LoadRunner,
        TcpDeployment,
    )
    from repro.loadgen.workload import WorkloadProfile
    from repro.obs.flight import FlightRecorder

    if args.profile_file:
        try:
            profile = WorkloadProfile.from_toml(args.profile_file)
        except (OSError, ValueError) as exc:
            print(f"bad profile: {exc}", file=sys.stderr)
            return 2
    else:
        profile = WorkloadProfile()
    overrides = {}
    for attr, flag in (
        ("mode", "mode"),
        ("clients", "clients"),
        ("arrival_rate", "rate"),
        ("duration_seconds", "duration"),
        ("seed", "seed"),
    ):
        value = getattr(args, flag)
        if value is not None:
            overrides[attr] = value
    if overrides:
        from dataclasses import replace as _replace

        profile = _replace(profile, **overrides)
    if args.scale != 1.0:
        profile = profile.scaled(args.scale)

    deployment = None
    if args.km or args.provider:
        if not (args.km and args.provider):
            print(
                "TCP mode needs both --km and --provider", file=sys.stderr
            )
            return 2
        auth_token = b""
        if args.auth_token:
            auth_token = Path(args.auth_token).read_bytes().strip()
        deployment = TcpDeployment(
            _address(args.km), _address(args.provider), auth_token
        )

    flight = None
    if args.flight:
        flight = FlightRecorder(
            args.flight, max_bytes=args.flight_mb << 20
        )
    runner = LoadRunner(profile, deployment=deployment, flight=flight)
    try:
        totals = runner.run()
    except KeyboardInterrupt:
        runner.stop()
        totals = runner.totals
    finally:
        if flight is not None:
            flight.close()
        if deployment is not None:
            deployment.close()
    report = LoadReport.collect(profile, totals, runner.tracker)
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.format())
    if args.bench_out:
        path = write_bench([report], args.bench_out)
        print(f"wrote {path}", file=sys.stderr)
    return 1 if report.breached else 0


def _top_render_window(ops: list, now: float, window: float) -> List[str]:
    """Render one refresh frame from recent op events."""
    recent = [e for e in ops if now - e["ts"] <= window]
    lines = [
        f"-- last {window:.0f}s: {len(recent)} ops "
        f"({sum(1 for e in recent if not e['ok'])} errors) --",
        f"{'op':<10} {'qps':>7} {'p50ms':>8} {'p99ms':>8} {'err%':>6}",
    ]
    by_op: dict = {}
    for event in recent:
        by_op.setdefault(event["op"], []).append(event)
    for op, events in sorted(by_op.items()):
        latencies = sorted(e["seconds"] for e in events if e["ok"])
        errors = sum(1 for e in events if not e["ok"])
        p50 = latencies[len(latencies) // 2] * 1000 if latencies else 0.0
        p99 = (
            latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
            * 1000
            if latencies
            else 0.0
        )
        lines.append(
            f"{op:<10} {len(events) / window:>7.1f} {p50:>8.1f} "
            f"{p99:>8.1f} {errors / len(events):>6.1%}"
        )
    by_tenant: dict = {}
    for event in recent:
        by_tenant.setdefault(event["tenant"], []).append(event)
    if by_tenant:
        lines.append(f"{'tenant':<10} {'qps':>7} {'err%':>6}")
        for tenant, events in sorted(by_tenant.items()):
            errors = sum(1 for e in events if not e["ok"])
            lines.append(
                f"{tenant:<10} {len(events) / window:>7.1f} "
                f"{errors / len(events):>6.1%}"
            )
    return lines


def cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.flight import iter_flight

    path = args.replay or args.follow
    if not path:
        print("pass --replay FILE or --follow FILE", file=sys.stderr)
        return 2

    if args.replay:
        try:
            events = list(iter_flight(path))
        except (OSError, ValueError) as exc:
            print(f"cannot read flight file: {exc}", file=sys.stderr)
            return 2
        ops = [e for e in events if e["kind"] == "op"]
        metas = [e for e in events if e["kind"] == "meta"]
        if metas:
            first = metas[0]
            print(
                f"run: profile={first.get('profile', '?')} "
                f"mode={first.get('mode', '?')} "
                f"seed={first.get('seed', '?')}"
            )
        if not ops:
            print("(no op events recorded)")
            return 0
        t0 = ops[0]["ts"]
        interval = args.interval
        buckets: dict = {}
        for event in ops:
            buckets.setdefault(int((event["ts"] - t0) / interval), []).append(
                event
            )
        print(
            f"{'t':>6} {'op':<10} {'ops':>6} {'qps':>7} {'p50ms':>8} "
            f"{'p99ms':>8} {'err%':>6}"
        )
        for index in sorted(buckets):
            by_op: dict = {}
            for event in buckets[index]:
                by_op.setdefault(event["op"], []).append(event)
            for op, events_ in sorted(by_op.items()):
                latencies = sorted(
                    e["seconds"] for e in events_ if e["ok"]
                )
                errors = sum(1 for e in events_ if not e["ok"])
                p50 = (
                    latencies[len(latencies) // 2] * 1000
                    if latencies
                    else 0.0
                )
                p99 = (
                    latencies[
                        min(len(latencies) - 1, int(len(latencies) * 0.99))
                    ]
                    * 1000
                    if latencies
                    else 0.0
                )
                print(
                    f"{index * interval:>5.0f}s {op:<10} "
                    f"{len(events_):>6} {len(events_) / interval:>7.1f} "
                    f"{p50:>8.1f} {p99:>8.1f} "
                    f"{errors / len(events_):>6.1%}"
                )
        total_errors = sum(1 for e in ops if not e["ok"])
        span = ops[-1]["ts"] - t0
        print(
            f"\n{len(ops)} ops over {span:.1f}s "
            f"({total_errors} errors)"
        )
        return 0

    # --follow: poll the active file, rendering a sliding-window frame
    # per refresh until no new events arrive (or forever with --wait).
    iterations = 0
    last_count = -1
    idle_rounds = 0
    while True:
        try:
            ops = [e for e in iter_flight(path) if e["kind"] == "op"]
        except FileNotFoundError:
            ops = []
        except ValueError as exc:
            print(f"cannot read flight file: {exc}", file=sys.stderr)
            return 2
        if ops:
            now = ops[-1]["ts"]
            for line in _top_render_window(ops, now, args.window):
                print(line)
            print()
        idle_rounds = idle_rounds + 1 if len(ops) == last_count else 0
        last_count = len(ops)
        iterations += 1
        if args.iterations and iterations >= args.iterations:
            return 0
        if not args.wait and idle_rounds >= 3 and ops:
            return 0  # the writer has gone quiet; the run is over
        try:
            time.sleep(args.refresh)
        except KeyboardInterrupt:
            return 0


def cmd_tune(args: argparse.Namespace) -> int:
    snapshot = read_snapshot(args.trace)
    solution = solve(snapshot.frequencies(), args.b)
    print(
        f"b={args.b}: t={solution.t}, m={solution.m}, "
        f"n*={solution.n_star}, predicted KLD={solution.predicted_kld:.4f}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="TED/TEDStore command-line tools"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common_client(p):
        p.add_argument("--km", default="127.0.0.1:9401")
        p.add_argument("--provider", default="127.0.0.1:9402")
        p.add_argument("--master-key", default=None,
                       help="file hashed into the 32-byte master key")
        p.add_argument("--profile", default="shactr",
                       choices=["secure", "fast", "shactr"])
        p.add_argument("--sketch-width", type=int, default=2**21)
        p.add_argument("--batch-size", type=int, default=48_000)
        p.add_argument(
            "--workers", type=int, default=1,
            help="encrypt/decrypt worker threads; >1 enables the "
                 "pipelined upload and download paths "
                 "(DESIGN.md §§10-11)",
        )
        p.add_argument(
            "--pipeline-depth", type=int, default=4,
            help="bounded-queue depth between pipeline stages",
        )
        p.add_argument(
            "--crypto-workers", type=int, default=0, metavar="N",
            help="encrypt in a pool of N OS processes instead of the "
                 "worker threads (sidesteps the GIL for CPU-bound "
                 "profiles; implies the pipelined upload path and keeps "
                 "stored bytes identical, DESIGN.md §16)",
        )
        p.add_argument(
            "--fp-cache", type=int, default=0, metavar="ENTRIES",
            help="client fingerprint-cache capacity; >0 enables "
                 "client-side duplicate short-circuiting (implies the "
                 "pipelined path)",
        )
        p.add_argument(
            "--tenant", default="default",
            help="tenant namespace to bind the provider connection to "
                 "(DESIGN.md §13); 'default' skips the HELLO handshake",
        )
        p.add_argument(
            "--auth-token", default=None, metavar="FILE",
            help="file whose (stripped) contents are the shared secret "
                 "presented to the provider for --tenant",
        )
        p.add_argument(
            "--shards", type=int, default=1,
            help="provider shard count; >1 routes PutChunks/GetChunks "
                 "sub-batches by the consistent-hash ring (must match "
                 "the provider's --shards)",
        )
        p.add_argument(
            "--ring-seed", type=int, default=0,
            help="seed for the consistent-hash ring (must match the "
                 "servers')",
        )
        p.add_argument(
            "--ring-file", default=None, metavar="FILE",
            help="fleet ring.json with per-shard endpoints: route "
                 "chunk/recipe traffic to the serve-shard provider "
                 "processes it names, one circuit breaker per shard "
                 "(DESIGN.md §17); overrides --provider/--shards",
        )
        p.add_argument(
            "--heartbeat-interval", type=float, default=0.0,
            help="fleet-mode background health-probe cadence in "
                 "seconds (0 disables; breakers still learn from "
                 "call failures)",
        )

    p = sub.add_parser("serve-keymanager", help="run a TED key manager")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9401)
    p.add_argument("--secret", default="tedstore-secret")
    p.add_argument("--b", type=float, default=1.05)
    p.add_argument("--batch-size", type=int, default=48_000)
    p.add_argument("--sketch-width", type=int, default=2**21)
    p.add_argument(
        "--rate-limit", type=float, default=0.0,
        help="per-client key-generation budget in chunks/s (0 disables)",
    )
    p.add_argument(
        "--state-dir", default=None,
        help="durable sketch-state directory (snapshot + delta log); "
             "restores the frequency state after a crash (DESIGN.md §12)",
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="shard the sketch across N per-range key managers behind "
             "one wire endpoint (DESIGN.md §15); an existing ring.json "
             "in --state-dir takes precedence",
    )
    p.add_argument(
        "--ring-seed", type=int, default=0,
        help="seed for the consistent-hash ring (ignored once a "
             "ring.json exists in --state-dir)",
    )
    p.add_argument(
        "--heartbeat-interval", type=float, default=0.0,
        help="background health-probe cadence toward serve-shard "
             "observer processes, in seconds; only used when the "
             "persisted ring publishes endpoints (0 disables)",
    )
    p.set_defaults(func=cmd_serve_keymanager)

    p = sub.add_parser(
        "serve-shard",
        help="run one shard of a fleet as its own process "
             "(DESIGN.md §17)",
    )
    p.add_argument(
        "--role", choices=["km", "provider"], required=True,
        help="km: a sketch-observer over <root>/shards/<K>; provider: "
             "a storage leaf over the same layout",
    )
    p.add_argument("--shard", type=int, required=True, metavar="K",
                   help="this process's shard id in the ring")
    p.add_argument(
        "--root", required=True,
        help="deployment root holding ring.json and shards/<K>/ "
             "(the KM state dir or the provider storage root)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0,
        help="listen port; 0 takes this shard's endpoint from "
             "ring.json when one is published, else an ephemeral port",
    )
    p.add_argument("--secret", default="tedstore-secret",
                   help="km role: must match the front's --secret")
    p.add_argument("--b", type=float, default=1.05,
                   help="km role: must match the front's --b")
    p.add_argument("--batch-size", type=int, default=48_000,
                   help="km role: must match the front's --batch-size")
    p.add_argument("--sketch-width", type=int, default=2**21,
                   help="km role: must match the front's --sketch-width")
    p.add_argument("--container-mb", type=int, default=8,
                   help="provider role: container size")
    p.add_argument(
        "--cross-user-dedup",
        action=argparse.BooleanOptionalAction, default=True,
        help="provider role: share the dedup index across tenants",
    )
    p.add_argument(
        "--ephemeral", action="store_true",
        help="km role: keep the sketch in memory only (no durable "
             "store, no crash recovery)",
    )
    p.set_defaults(func=cmd_serve_shard)

    p = sub.add_parser("serve-provider", help="run a storage provider")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9402)
    p.add_argument("--storage", required=True)
    p.add_argument("--container-mb", type=int, default=8)
    p.add_argument(
        "--lookahead-window", type=int, default=0, metavar="CHUNKS",
        help="serve GetChunks with look-ahead container scheduling and "
             "an LRU container cache (0 = naive per-chunk reads, the "
             "paper's Figure 9 baseline)",
    )
    p.add_argument(
        "--scrub-interval", type=float, default=0.0, metavar="SECONDS",
        help="background scrub cadence: verify every chunk checksum this "
             "often (0 disables)",
    )
    p.add_argument(
        "--cross-user-dedup",
        action=argparse.BooleanOptionalAction, default=True,
        help="share the fingerprint index and containers across tenants "
             "(recipes and keys stay per-tenant); --no-cross-user-dedup "
             "partitions the dedup index per tenant so one tenant's "
             "uploads never dedup against another's (DESIGN.md §13)",
    )
    p.add_argument(
        "--quota-bytes", type=int, default=0,
        help="per-tenant logical-byte quota; uploads past it are "
             "rejected before any storage mutation (0 = unlimited)",
    )
    p.add_argument(
        "--quota-files", type=int, default=0,
        help="per-tenant file-count quota (0 = unlimited)",
    )
    p.add_argument(
        "--auth-file", default=None, metavar="FILE",
        help="tenant:token lines; tenants listed here must present the "
             "token in the HELLO handshake",
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="split storage into N ring-routed engine shards under "
             "shards/<k>/ (DESIGN.md §15); an existing ring.json in "
             "--storage takes precedence",
    )
    p.add_argument(
        "--ring-seed", type=int, default=0,
        help="seed for the consistent-hash ring (ignored once a "
             "ring.json exists in --storage)",
    )
    p.set_defaults(func=cmd_serve_provider)

    p = sub.add_parser(
        "reshard",
        help="add/remove shards with state migration (provider storage "
             "root and/or KM state dir)",
    )
    p.add_argument("--shards", type=int, required=True,
                   help="target shard count")
    p.add_argument("--storage", default=None,
                   help="provider storage root to migrate")
    p.add_argument("--km-state", default=None,
                   help="key-manager state dir to migrate")
    p.add_argument("--ring-seed", type=int, default=-1,
                   help="ring seed for a first-time shard split "
                        "(ignored when a ring.json already exists)")
    p.add_argument("--vnodes", type=int, default=0,
                   help="virtual nodes per shard for a first-time split "
                        "(0 = default)")
    p.add_argument("--container-mb", type=int, default=8)
    p.add_argument("--json", action="store_true",
                   help="machine-readable migration summary")
    p.set_defaults(func=cmd_reshard)

    p = sub.add_parser(
        "fsck", help="verify (and optionally repair) a storage root"
    )
    p.add_argument("--storage", required=True,
                   help="provider storage root to check")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report on stdout")
    p.add_argument("--repair", action="store_true",
                   help="quarantine corrupt containers, heal bad chunks "
                        "from redundant copies, drop unhealable entries")
    p.add_argument("--shallow", action="store_true",
                   help="skip per-chunk checksum verification")
    p.set_defaults(func=cmd_fsck)

    p = sub.add_parser("upload", help="upload a file")
    common_client(p)
    p.add_argument("file")
    p.add_argument("--name", default=None)
    p.add_argument("--metadedup", action="store_true",
                   help="deduplicate recipe metadata (Metadedup-style)")
    p.set_defaults(func=cmd_upload)

    p = sub.add_parser("download", help="download a file")
    common_client(p)
    p.add_argument("name")
    p.add_argument("--out", required=True)
    p.add_argument("--metadedup", action="store_true",
                   help="(accepted for symmetry; layout is auto-detected)")
    p.set_defaults(func=cmd_download)

    p = sub.add_parser("generate-trace", help="write synthetic snapshots")
    p.add_argument("--flavor", choices=["fsl", "ms"], default="fsl")
    p.add_argument("--snapshots", type=int, default=3)
    p.add_argument("--scale", type=float, default=0.3)
    p.add_argument("--seed", type=int, default=2013)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_generate_trace)

    p = sub.add_parser("analyze", help="trade-off analysis on a trace")
    p.add_argument("trace")
    p.add_argument("--b", type=float, nargs="+", default=[1.05, 1.1, 1.2])
    p.add_argument("--sketch-width", type=int, default=2**16)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("tune", help="derive t for a trace and blowup factor")
    p.add_argument("trace")
    p.add_argument("--b", type=float, default=1.05)
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser("stats", help="query running servers for metrics")
    p.add_argument("--km", default=None,
                   help="key manager address (host:port)")
    p.add_argument("--provider", default=None,
                   help="provider address (host:port)")
    p.add_argument("--format", choices=["table", "json", "prom"],
                   default="table")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "trace", help="in-process round-trip demo with span tree"
    )
    p.add_argument("--size-kb", type=int, default=256)
    p.add_argument("--seed", type=int, default=2013)
    p.add_argument("--profile", default="shactr",
                   choices=["secure", "fast", "shactr"])
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "loadgen",
        help="run a multi-tenant load profile; exit 1 on SLO breach",
    )
    p.add_argument(
        "--profile", dest="profile_file", default=None, metavar="TOML",
        help="workload profile file (examples/load_smoke.toml); "
             "omit for built-in defaults",
    )
    p.add_argument("--mode", choices=["closed", "open"], default=None,
                   help="override the profile's arrival mode")
    p.add_argument("--clients", type=int, default=None,
                   help="override closed-loop client count")
    p.add_argument("--rate", type=float, default=None,
                   help="override open-loop arrival rate (ops/s)")
    p.add_argument("--duration", type=float, default=None,
                   help="override run duration in seconds")
    p.add_argument("--seed", type=int, default=None,
                   help="override the profile seed")
    p.add_argument(
        "--scale", type=float, default=1.0,
        help="scale clients/rate/inflight/duration together "
             "(CI smoke uses 0.15)",
    )
    p.add_argument("--km", default=None,
                   help="key manager address; with --provider, drive a "
                        "TCP deployment instead of in-process services")
    p.add_argument("--provider", default=None,
                   help="provider address (host:port)")
    p.add_argument("--auth-token", default=None, metavar="FILE",
                   help="file with the shared tenant auth secret")
    p.add_argument("--flight", default=None, metavar="FILE",
                   help="write a bounded JSONL flight record here "
                        "(replay with `repro top --replay`)")
    p.add_argument("--flight-mb", type=int, default=8,
                   help="flight-record size budget in MiB")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report on stdout")
    p.add_argument("--bench-out", default=None, metavar="FILE",
                   help="also merge the report into this BENCH_load.json")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "top", help="per-op qps/p99/error view of a load run"
    )
    p.add_argument("--replay", default=None, metavar="FILE",
                   help="reconstruct the full per-op latency timeline "
                        "from a finished flight record")
    p.add_argument("--follow", default=None, metavar="FILE",
                   help="poll a flight record being written, printing a "
                        "sliding-window frame per refresh")
    p.add_argument("--interval", type=float, default=1.0,
                   help="replay timeline bucket width in seconds")
    p.add_argument("--window", type=float, default=5.0,
                   help="follow-mode sliding window in seconds")
    p.add_argument("--refresh", type=float, default=1.0,
                   help="follow-mode poll interval in seconds")
    p.add_argument("--iterations", type=int, default=0,
                   help="stop follow mode after N frames (0 = until the "
                        "writer goes quiet)")
    p.add_argument("--wait", action="store_true",
                   help="follow forever even when no events arrive")
    p.set_defaults(func=cmd_top)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
