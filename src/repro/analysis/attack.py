"""Frequency analysis attack against encrypted deduplication.

Implements the classic attack of Li et al. [DSN '17] that motivates TED
(§2.1): a knowledgeable adversary holds an *auxiliary* plaintext dataset
(e.g. a prior backup snapshot) and observes the ciphertext chunks of the
target. It ranks both sides by frequency and maps the i-th most frequent
ciphertext chunk to the i-th most frequent auxiliary plaintext chunk.

Because our trace simulation knows the true plaintext fingerprint behind
every ciphertext identity, we can score the attack exactly: the *inference
rate* is the fraction of unique ciphertext chunks whose inferred plaintext
is correct. This is the end-to-end demonstration that TED's KLD reduction
translates into lower attack success.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.schemes import EncryptionScheme
from repro.traces.model import Snapshot


@dataclass
class AttackResult:
    """Outcome of one frequency-analysis run.

    ``inferred``/``correct`` cover every unique ciphertext chunk;
    ``top_inferred``/``top_correct`` cover only the most frequent ones,
    where rank matching has real signal (the long tail of frequency-1
    chunks ranks arbitrarily under any scheme, so whole-population rates
    understate the leakage the attack exploits).
    """

    inferred: int
    correct: int
    top_inferred: int = 0
    top_correct: int = 0

    @property
    def inference_rate(self) -> float:
        """Fraction of inferred ciphertext chunks that were correct."""
        return self.correct / self.inferred if self.inferred else 0.0

    @property
    def top_inference_rate(self) -> float:
        """Inference rate over the top-frequency ciphertext chunks."""
        return (
            self.top_correct / self.top_inferred if self.top_inferred else 0.0
        )


def rank_by_frequency(observations: Iterable[bytes]) -> List[bytes]:
    """Identities ranked most-frequent first, ties broken by identity bytes
    (a deterministic stand-in for the adversary's arbitrary tie-breaking)."""
    counts = Counter(observations)
    return [
        identity
        for identity, _ in sorted(
            counts.items(), key=lambda item: (-item[1], item[0])
        )
    ]


def frequency_analysis(
    ciphertext_ids: Sequence[bytes],
    truth: Dict[bytes, bytes],
    auxiliary: Sequence[bytes],
    top_k: int = 50,
) -> AttackResult:
    """Run the rank-matching attack.

    Args:
        ciphertext_ids: the observed ciphertext identity per chunk copy.
        truth: ciphertext identity → true plaintext fingerprint (ground
            truth from the simulation).
        auxiliary: the adversary's plaintext fingerprint stream (one entry
            per chunk copy of the auxiliary dataset).
        top_k: how many top-frequency chunks the headline rate covers.

    Returns:
        Inference counts over the unique ciphertext chunks, plus the
        top-``top_k`` counts.
    """
    cipher_ranked = rank_by_frequency(ciphertext_ids)
    aux_ranked = rank_by_frequency(auxiliary)
    correct = 0
    inferred = 0
    top_correct = 0
    top_inferred = 0
    for rank, (cipher_id, guess) in enumerate(
        zip(cipher_ranked, aux_ranked)
    ):
        inferred += 1
        hit = truth.get(cipher_id) == guess
        if hit:
            correct += 1
        if rank < top_k:
            top_inferred += 1
            if hit:
                top_correct += 1
    return AttackResult(
        inferred=inferred,
        correct=correct,
        top_inferred=top_inferred,
        top_correct=top_correct,
    )


def attack_scheme(
    scheme: EncryptionScheme,
    target: Snapshot,
    auxiliary: Snapshot,
    top_k: int = 50,
) -> AttackResult:
    """Encrypt ``target`` under ``scheme`` and attack it using ``auxiliary``.

    The auxiliary snapshot models the adversary's prior knowledge (e.g. an
    earlier backup of the same system, §2.1); attack quality degrades
    gracefully as the auxiliary distribution drifts from the target's.
    """
    output = scheme.process(target.records)
    truth: Dict[bytes, bytes] = {}
    for (fingerprint, _), cipher_id in zip(
        target.records, output.ciphertext_ids
    ):
        truth[cipher_id] = fingerprint
    return frequency_analysis(
        output.ciphertext_ids,
        truth,
        [fp for fp, _ in auxiliary.records],
        top_k=top_k,
    )


def compare_schemes_under_attack(
    schemes: Sequence[EncryptionScheme],
    target: Snapshot,
    auxiliary: Snapshot,
    top_k: int = 50,
) -> List[Dict[str, object]]:
    """Per-scheme attack outcome rows — the headline security comparison."""
    rows: List[Dict[str, object]] = []
    for scheme in schemes:
        result = attack_scheme(scheme, target, auxiliary, top_k=top_k)
        rows.append(
            {
                "scheme": scheme.name,
                "inference_rate": result.inference_rate,
                "top_inference_rate": result.top_inference_rate,
            }
        )
    return rows


def locality_attack(
    ciphertext_ids: Sequence[bytes],
    truth: Dict[bytes, bytes],
    auxiliary: Sequence[bytes],
    seeds: int = 20,
) -> AttackResult:
    """Locality-augmented frequency analysis (Li et al., DSN '17).

    Backup streams have *chunk locality*: if plaintext chunk A precedes B
    in the auxiliary data, their ciphertexts likely appear adjacent in the
    target too. The attack seeds itself with the top frequency-analysis
    guesses, then iteratively infers the neighbours of confirmed chunks by
    matching successor sets, growing the inferred mapping well past what
    rank-matching alone achieves against deterministic encryption.

    Args:
        ciphertext_ids: the target's ciphertext identity stream (in upload
            order — order is what locality exploits).
        truth: ciphertext identity → true plaintext fingerprint.
        auxiliary: the adversary's plaintext fingerprint stream, in order.
        seeds: how many top frequency-analysis pairs to seed with.

    Returns:
        Inference counts over the unique ciphertext chunks.
    """

    def successor_counts(stream: Sequence[bytes]) -> Dict[bytes, Counter]:
        successors: Dict[bytes, Counter] = {}
        for current, following in zip(stream, stream[1:]):
            successors.setdefault(current, Counter())[following] += 1
        return successors

    cipher_ranked = rank_by_frequency(ciphertext_ids)
    aux_ranked = rank_by_frequency(auxiliary)
    cipher_successors = successor_counts(ciphertext_ids)
    aux_successors = successor_counts(auxiliary)

    # Seed: the top-`seeds` frequency-rank pairs.
    inferred: Dict[bytes, bytes] = dict(
        zip(cipher_ranked[:seeds], aux_ranked[:seeds])
    )
    frontier = list(inferred.items())
    while frontier:
        cipher_id, plain_guess = frontier.pop()
        cipher_next = cipher_successors.get(cipher_id)
        aux_next = aux_successors.get(plain_guess)
        if not cipher_next or not aux_next:
            continue
        # Match the most common successors pairwise by rank.
        for (c_succ, _), (p_succ, _) in zip(
            cipher_next.most_common(3), aux_next.most_common(3)
        ):
            if c_succ not in inferred:
                inferred[c_succ] = p_succ
                frontier.append((c_succ, p_succ))

    correct = sum(
        1 for cid, guess in inferred.items() if truth.get(cid) == guess
    )
    return AttackResult(inferred=len(inferred), correct=correct)


def locality_attack_scheme(
    scheme: EncryptionScheme,
    target: Snapshot,
    auxiliary: Snapshot,
    seeds: int = 20,
) -> AttackResult:
    """Encrypt ``target`` and run the locality-augmented attack on it."""
    output = scheme.process(target.records)
    truth: Dict[bytes, bytes] = {}
    for (fingerprint, _), cipher_id in zip(
        target.records, output.ciphertext_ids
    ):
        truth[cipher_id] = fingerprint
    return locality_attack(
        output.ciphertext_ids,
        truth,
        [fp for fp, _ in auxiliary.records],
        seeds=seeds,
    )
