"""Trade-off analysis drivers — Experiments A.1 to A.5 (paper §5.2).

Each ``experiment_a*`` function reproduces one figure of the evaluation and
returns plain data structures (lists of row dicts) that the benchmark
harness prints as the paper's rows/series. They run on any
:class:`~repro.traces.model.Dataset` — the synthetic FSL/MS-like datasets by
default, or real converted traces.
"""

from __future__ import annotations

import math
import random
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.schemes import (
    EncryptionScheme,
    MLEScheme,
    MinHashScheme,
    SKEScheme,
    TedScheme,
)
from repro.core.ted import TedKeyManager
from repro.traces.model import Dataset, Snapshot

DEFAULT_SKETCH_WIDTH = 2**16


@dataclass
class SchemeSummary:
    """Per-scheme KLD and blowup across a dataset's snapshots."""

    scheme: str
    klds: List[float] = field(default_factory=list)
    blowups: List[float] = field(default_factory=list)
    blowups_bytes: List[float] = field(default_factory=list)

    @staticmethod
    def _mean(values: Sequence[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    @staticmethod
    def _ci95(values: Sequence[float]) -> float:
        n = len(values)
        if n < 2:
            return 0.0
        mean = sum(values) / n
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        return 1.96 * math.sqrt(variance / n)

    @property
    def kld_mean(self) -> float:
        return self._mean(self.klds)

    @property
    def kld_ci(self) -> float:
        return self._ci95(self.klds)

    @property
    def blowup_mean(self) -> float:
        return self._mean(self.blowups)

    @property
    def blowup_ci(self) -> float:
        return self._ci95(self.blowups)

    def as_row(self) -> Dict[str, float]:
        """Flatten into a printable result row."""
        return {
            "scheme": self.scheme,
            "kld": round(self.kld_mean, 4),
            "kld_ci95": round(self.kld_ci, 4),
            "blowup": round(self.blowup_mean, 4),
            "blowup_ci95": round(self.blowup_ci, 4),
        }


def evaluate_scheme(
    scheme: EncryptionScheme, dataset: Dataset
) -> SchemeSummary:
    """Run one scheme over every snapshot (per-snapshot dedup, §5.2)."""
    summary = SchemeSummary(scheme=scheme.name)
    for snapshot in dataset:
        output = scheme.process(snapshot.records)
        summary.klds.append(output.kld())
        summary.blowups.append(output.blowup())
        summary.blowups_bytes.append(output.blowup_bytes())
    return summary


def make_bted(
    t: int,
    sketch_width: int = DEFAULT_SKETCH_WIDTH,
    seed: int = 1,
    probabilistic: bool = True,
) -> TedScheme:
    """BTED scheme with a fixed balance parameter."""
    return TedScheme(
        TedKeyManager(
            secret=b"ted-secret",
            t=t,
            sketch_width=sketch_width,
            probabilistic=probabilistic,
            rng=random.Random(seed),
        )
    )


def make_fted(
    b: float,
    sketch_width: int = DEFAULT_SKETCH_WIDTH,
    batch_size: Optional[int] = None,
    seed: int = 1,
    probabilistic: bool = True,
    conservative_sketch: bool = False,
) -> TedScheme:
    """FTED scheme with a storage blowup factor (optionally batched)."""
    return TedScheme(
        TedKeyManager(
            secret=b"ted-secret",
            blowup_factor=b,
            batch_size=batch_size,
            sketch_width=sketch_width,
            probabilistic=probabilistic,
            conservative_sketch=conservative_sketch,
            rng=random.Random(seed),
        )
    )


def experiment_a1(
    dataset: Dataset,
    ts: Sequence[int] = (20, 15, 10, 5),
    bs: Sequence[float] = (1.05, 1.1, 1.15, 1.2),
    sketch_width: int = DEFAULT_SKETCH_WIDTH,
    seed: int = 1,
) -> List[Dict[str, float]]:
    """Figure 2: overall KLD + actual blowup for all schemes on a dataset."""
    schemes: List[EncryptionScheme] = [
        MLEScheme(),
        SKEScheme(rng=random.Random(seed)),
        MinHashScheme(),
    ]
    schemes.extend(make_bted(t, sketch_width, seed) for t in ts)
    schemes.extend(make_fted(b, sketch_width, seed=seed) for b in bs)
    return [evaluate_scheme(s, dataset).as_row() for s in schemes]


def experiment_a2(
    dataset: Dataset,
    widths: Sequence[int] = (2**12, 2**13, 2**14, 2**15, 2**16),
    bs: Sequence[float] = (1.05, 1.1, 1.15, 1.2),
    seed: int = 1,
    conservative: bool = False,
) -> List[Dict[str, float]]:
    """Figure 3: FTED trade-off vs CM-Sketch width ``w``.

    The paper sweeps w = 2^21..2^25 over multi-TB traces; the sweep here is
    shifted down proportionally to the synthetic trace volume so the
    over-estimation regime (collisions inflating frequencies) is exercised
    at the small end. Set ``conservative=True`` for the CU-sketch ablation.
    """
    rows = []
    for b in bs:
        for width in widths:
            scheme = make_fted(
                b, sketch_width=width, seed=seed,
                conservative_sketch=conservative,
            )
            summary = evaluate_scheme(scheme, dataset)
            row = summary.as_row()
            row["b"] = b
            row["w"] = width
            rows.append(row)
    return rows


def difference_rates(
    make_scheme: Callable[[int], TedScheme],
    snapshot: Snapshot,
    percentiles: Sequence[int] = (20, 40, 60, 80, 100),
) -> Dict[int, float]:
    """Figure 4(e,f): per-chunk ciphertext difference rate across two runs.

    Encrypts the snapshot twice with independently seeded schemes, computes
    each plaintext chunk's difference rate (fraction of its copies that map
    to different ciphertexts across the two runs), then averages over the
    top-``p``% most frequent *duplicated* chunks for each percentile ``p``.

    Chunks with a single copy are excluded from the ranking: their
    difference rate is identically zero by construction (one key-seed
    candidate, §5.2), so including the freq-1 tail would only dilute every
    percentile by a constant and mask the frequency dependence the figure
    is about.
    """
    run_a = make_scheme(101).process(snapshot.records)
    run_b = make_scheme(202).process(snapshot.records)

    copies: Dict[bytes, int] = Counter(fp for fp, _ in snapshot.records)
    differing: Dict[bytes, int] = defaultdict(int)
    for (fp, _), cid_a, cid_b in zip(
        snapshot.records, run_a.ciphertext_ids, run_b.ciphertext_ids
    ):
        if cid_a != cid_b:
            differing[fp] += 1

    ranked = [
        fp for fp, count in copies.most_common() if count >= 2
    ]
    if not ranked:
        return {p: 0.0 for p in percentiles}
    rates = {}
    for percentile in percentiles:
        top = ranked[: max(1, len(ranked) * percentile // 100)]
        rates[percentile] = sum(
            differing[fp] / copies[fp] for fp in top
        ) / len(top)
    return rates


def experiment_a3(
    dataset: Dataset,
    bs: Sequence[float] = (1.05, 1.1, 1.15, 1.2),
    sketch_width: int = DEFAULT_SKETCH_WIDTH,
) -> Dict[str, object]:
    """Figure 4: probabilistic vs deterministic key generation."""
    comparison = []
    for b in bs:
        prob = evaluate_scheme(
            make_fted(b, sketch_width, seed=11, probabilistic=True), dataset
        )
        det = evaluate_scheme(
            make_fted(b, sketch_width, seed=11, probabilistic=False), dataset
        )
        comparison.append(
            {
                "b": b,
                "kld_probabilistic": round(prob.kld_mean, 4),
                "kld_deterministic": round(det.kld_mean, 4),
                "blowup_probabilistic": round(prob.blowup_mean, 4),
                "blowup_deterministic": round(det.blowup_mean, 4),
            }
        )
    # Difference rates on the first snapshot with b = 1.05 (as in §5.2).
    snapshot = dataset.snapshots[0]
    rates = difference_rates(
        lambda seed: make_fted(1.05, sketch_width, seed=seed), snapshot
    )
    deterministic_rates = {
        p: 0.0 for p in rates
    }  # deterministic keygen always reproduces the same ciphertexts
    return {
        "comparison": comparison,
        "difference_rates": rates,
        "deterministic_difference_rates": deterministic_rates,
    }


def accumulated_difference_rates(
    series: Sequence[Snapshot],
    b: float = 1.05,
    sketch_width: int = DEFAULT_SKETCH_WIDTH,
    batch_size: int = 2000,
    percentiles: Sequence[int] = (20, 40, 60, 80, 100),
) -> Dict[int, float]:
    """A.3 variant: difference rates under a long-lived key manager.

    In a real deployment the key manager never resets: frequencies
    accumulate across the whole backup series, so by the latest snapshot
    most duplicated chunks sit many multiples of ``t`` deep and the
    probabilistic selection has a wide candidate set. This measures the
    cross-run difference rates for the *last* snapshot of a series after
    the key manager has observed all earlier ones — the regime where the
    paper-scale difference-rate magnitudes emerge.
    """
    if len(series) < 2:
        raise ValueError("need a series of at least two snapshots")
    base_km = TedKeyManager(
        secret=b"ted-secret",
        blowup_factor=b,
        batch_size=batch_size,
        sketch_width=sketch_width,
        rng=random.Random(7),
    )
    warmup = TedScheme(base_km, reset_per_snapshot=False)
    for snapshot in series[:-1]:
        warmup.process(snapshot.records)

    last = series[-1]
    run_a = TedScheme(
        base_km.clone(rng=random.Random(101)), reset_per_snapshot=False
    ).process(last.records)
    run_b = TedScheme(
        base_km.clone(rng=random.Random(202)), reset_per_snapshot=False
    ).process(last.records)

    copies: Dict[bytes, int] = Counter(fp for fp, _ in last.records)
    differing: Dict[bytes, int] = defaultdict(int)
    for (fp, _), cid_a, cid_b in zip(
        last.records, run_a.ciphertext_ids, run_b.ciphertext_ids
    ):
        if cid_a != cid_b:
            differing[fp] += 1
    ranked = [fp for fp, count in copies.most_common() if count >= 2]
    if not ranked:
        return {p: 0.0 for p in percentiles}
    return {
        p: sum(
            differing[fp] / copies[fp]
            for fp in ranked[: max(1, len(ranked) * p // 100)]
        )
        / max(1, len(ranked[: max(1, len(ranked) * p // 100)]))
        for p in percentiles
    }


def experiment_a4(
    dataset: Dataset,
    t: int = 5,
    b: float = 1.05,
    sketch_width: int = DEFAULT_SKETCH_WIDTH,
) -> Dict[str, List[float]]:
    """Figure 5: controllability of the actual storage blowup.

    Returns per-snapshot KLD/blowup series (sorted ascending, as the paper
    plots them) for BTED(t) vs FTED(b).
    """
    bted = evaluate_scheme(make_bted(t, sketch_width), dataset)
    fted = evaluate_scheme(make_fted(b, sketch_width), dataset)
    return {
        "bted_kld": sorted(bted.klds),
        "bted_blowup": sorted(bted.blowups),
        "fted_kld": sorted(fted.klds),
        "fted_blowup": sorted(fted.blowups),
    }


def experiment_a5(
    dataset: Dataset,
    bs: Sequence[float] = (1.05, 1.1, 1.15, 1.2),
    batch_sizes: Sequence[Optional[int]] = (None, 500, 1000, 2000, 4000),
    sketch_width: int = DEFAULT_SKETCH_WIDTH,
) -> List[Dict[str, float]]:
    """Figure 6: impact of the key-generation batch size.

    ``None`` reproduces the "Nil" arm (``t`` from exact per-snapshot
    frequencies). The paper's batch sizes (12k–96k) are scaled to the
    synthetic snapshot sizes.
    """
    rows = []
    for b in bs:
        for batch_size in batch_sizes:
            scheme = make_fted(b, sketch_width, batch_size=batch_size)
            summary = evaluate_scheme(scheme, dataset)
            row = summary.as_row()
            row["b"] = b
            row["batch_size"] = batch_size if batch_size else 0
            rows.append(row)
    return rows
