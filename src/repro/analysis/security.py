"""Security-analysis helpers around the §3.6 quantitative argument.

The paper quantifies TED's security gain through Eq. 9: the probability
that an adversary holding ``S`` sampled ciphertext chunks distinguishes the
scheme's frequency distribution from uniform. This module turns that into
operator-facing artifacts:

* :func:`success_curve` — P(success) over a sample-count sweep for a
  measured KLD (one line of Figure-style data per scheme).
* :func:`scheme_comparison` — the §3.6 table: per scheme, the samples
  needed for a target success probability, normalized to a baseline.
* :func:`recommend_blowup` — invert the trade-off: given the adversary's
  plausible sample budget and a tolerated success probability, find the
  smallest blowup factor whose optimized KLD keeps the adversary below
  tolerance (the "how should users configure b" question the paper poses
  as future work, answered with its own machinery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.kld import attack_success_probability, samples_for_success
from repro.core.tuning import solve


def success_curve(
    kld: float, sample_counts: Sequence[int]
) -> List[Dict[str, float]]:
    """Eq. 9 evaluated over a sweep of adversary sample counts."""
    return [
        {
            "samples": float(s),
            "success_probability": attack_success_probability(s, kld),
        }
        for s in sample_counts
    ]


def scheme_comparison(
    klds: Dict[str, float],
    target_probability: float = 0.9,
    baseline: str = "MLE",
) -> List[Dict[str, float]]:
    """The §3.6 table: samples needed per scheme, relative to a baseline.

    Args:
        klds: measured KLD per scheme name.
        target_probability: the attack success level to normalize at.
        baseline: scheme whose sample count is the denominator.

    Raises:
        KeyError: if the baseline scheme is missing.
        ValueError: if the baseline KLD is zero (nothing to normalize by).
    """
    if baseline not in klds:
        raise KeyError(f"baseline scheme {baseline!r} not in klds")
    baseline_kld = klds[baseline]
    if baseline_kld <= 0:
        raise ValueError("baseline KLD must be positive")
    baseline_samples = samples_for_success(target_probability, baseline_kld)
    rows = []
    for scheme, kld in klds.items():
        samples = (
            samples_for_success(target_probability, kld)
            if kld > 0
            else float("inf")
        )
        rows.append(
            {
                "scheme": scheme,
                "kld": kld,
                "samples_needed": samples,
                "vs_baseline": samples / baseline_samples,
            }
        )
    return rows


@dataclass(frozen=True)
class BlowupRecommendation:
    """Outcome of :func:`recommend_blowup`."""

    blowup_factor: float
    t: int
    predicted_kld: float
    adversary_success: float
    feasible: bool


def recommend_blowup(
    frequencies: Sequence[int],
    adversary_samples: int,
    tolerated_success: float = 0.6,
    candidates: Sequence[float] = (
        1.01, 1.02, 1.05, 1.10, 1.15, 1.20, 1.30, 1.50, 2.00,
    ),
) -> BlowupRecommendation:
    """Pick the smallest ``b`` that keeps the adversary below tolerance.

    Evaluates the Eq. 6/7 optimum for each candidate blowup factor and
    returns the first whose *predicted* KLD keeps Eq. 9's success
    probability at or below ``tolerated_success`` for the given adversary
    sample budget. If none suffices (the workload is too skewed for the
    candidate range), the largest candidate is returned with
    ``feasible=False`` so callers can surface the shortfall.

    Raises:
        ValueError: empty candidates, bad tolerance, or negative samples.
    """
    if not candidates:
        raise ValueError("need at least one candidate blowup factor")
    if not 0.5 <= tolerated_success < 1.0:
        raise ValueError("tolerated_success must be in [0.5, 1)")
    if adversary_samples < 0:
        raise ValueError("adversary_samples cannot be negative")
    last: BlowupRecommendation | None = None
    for b in sorted(candidates):
        solution = solve(frequencies, b)
        success = attack_success_probability(
            adversary_samples, max(solution.predicted_kld, 0.0)
        )
        last = BlowupRecommendation(
            blowup_factor=b,
            t=solution.t,
            predicted_kld=solution.predicted_kld,
            adversary_success=success,
            feasible=success <= tolerated_success,
        )
        if last.feasible:
            return last
    assert last is not None
    return last
