"""Performance experiment drivers — Experiments B.1 to B.5 (paper §5.3).

All data volumes are scaled from the paper's GB-sized workloads to sizes a
pure-Python implementation can push in bench time; absolute numbers are
expected to be ~10^3x below the C++/10GbE prototype, but the *shapes* the
paper reports are preserved (see DESIGN.md §3-4): keygen is a tiny share of
upload time, TED keygen beats blind RSA beats blind BLS, aggregate upload
scales with clients, trace-replay uploads slow down with index growth, and
restores slow down with fragmentation.
"""

from __future__ import annotations

import random
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chunking.cdc import ChunkerParams, ContentDefinedChunker
from repro.core.ted import TedKeyManager
from repro.crypto import blindsig, rsa
from repro.crypto.cipher import get_profile
from repro.tedstore.client import TedStoreClient
from repro.tedstore.inprocess import LocalKeyManager, LocalProvider
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.network import (
    RemoteKeyManager,
    RemoteProvider,
    serve_key_manager,
    serve_provider,
)
from repro.tedstore.provider import ProviderService
from repro.traces.model import Snapshot
from repro.traces.workload import snapshot_to_chunks, unique_file

#: Upload pipeline steps in paper order (Tables 1 and 2).
UPLOAD_STEPS = (
    "chunking",
    "fingerprinting",
    "hashing",
    "key seeding",
    "key derivation",
    "encryption",
    "write",
)


def _make_inprocess_client(
    profile_name: str,
    batch_size: int,
    sketch_width: int = 2**16,
    provider: Optional[ProviderService] = None,
    blowup_factor: float = 1.05,
) -> TedStoreClient:
    key_manager = KeyManagerService(
        TedKeyManager(
            secret=b"perf-secret",
            blowup_factor=blowup_factor,
            batch_size=batch_size,
            sketch_width=sketch_width,
            rng=random.Random(7),
        )
    )
    provider = provider or ProviderService(in_memory=True)
    return TedStoreClient(
        LocalKeyManager(key_manager),
        LocalProvider(provider),
        profile=get_profile(profile_name),
        sketch_width=sketch_width,
        batch_size=batch_size,
    )


@dataclass
class Breakdown:
    """Per-step time breakdown normalized to milliseconds per MB."""

    label: str
    data_bytes: int
    step_seconds: Dict[str, float] = field(default_factory=dict)

    def ms_per_mb(self) -> Dict[str, float]:
        """The paper's Tables 1/2 unit: ms of compute per MB uploaded."""
        megabytes = self.data_bytes / (1 << 20)
        return {
            step: round(self.step_seconds.get(step, 0.0) * 1000.0 / megabytes, 4)
            for step in UPLOAD_STEPS
            if step in self.step_seconds
        }

    @property
    def keygen_share(self) -> float:
        """Fraction of total time spent in TED key generation
        (hashing + key seeding + key derivation) — the §5.3 headline."""
        total = sum(self.step_seconds.values())
        keygen = sum(
            self.step_seconds.get(s, 0.0)
            for s in ("hashing", "key seeding", "key derivation")
        )
        return keygen / total if total else 0.0


def experiment_b1(
    file_bytes: int = 1 << 20,
    profile_name: str = "secure",
    batch_size: int = 2000,
) -> Breakdown:
    """Table 1: single-machine microbenchmark on unique data, no disk I/O."""
    client = _make_inprocess_client(profile_name, batch_size)
    data = unique_file(file_bytes, client_id=0)
    client.upload("b1-file", data)
    return Breakdown(
        label=f"B.1/{profile_name}",
        data_bytes=file_bytes,
        step_seconds=client.timer.totals(),
    )


# -- Experiment B.2: key-generation speed ------------------------------------


def keygen_speed_ted(
    num_chunks: int,
    batch_size: int,
    chunk_bytes: int = 8192,
    use_tcp: bool = False,
    sketch_width: int = 2**16,
) -> float:
    """TED key-generation speed in MB/s of covered file data.

    Measures hashing + key seeding + key derivation for ``num_chunks``
    unique fingerprints, exactly the span Experiment B.2 times.
    """
    chunks = [
        (b"b2-chunk-%d" % i) * 8 for i in range(num_chunks)
    ]  # small stand-ins; key-gen cost is per chunk, not per byte
    key_manager = KeyManagerService(
        TedKeyManager(
            secret=b"perf-secret",
            blowup_factor=1.05,
            batch_size=batch_size,
            sketch_width=sketch_width,
        )
    )
    if use_tcp:
        handle = serve_key_manager(key_manager)
        transport = RemoteKeyManager(handle.address)
    else:
        handle = None
        transport = LocalKeyManager(key_manager)
    client = TedStoreClient(
        transport,
        LocalProvider(ProviderService(in_memory=True)),
        sketch_width=sketch_width,
        batch_size=batch_size,
    )
    try:
        start = time.perf_counter()
        client.generate_keys_only(chunks)
        elapsed = time.perf_counter() - start
    finally:
        if handle is not None:
            transport.close()
            handle.stop()
    return num_chunks * chunk_bytes / elapsed / (1 << 20)


def keygen_speed_blind_rsa(
    num_chunks: int,
    chunk_bytes: int = 8192,
    key: Optional[rsa.RSAPrivateKey] = None,
    bits: int = 2048,
) -> float:
    """Blind-RSA (DupLESS) key-generation speed in MB/s."""
    server = blindsig.BlindRSAKeyServer(
        key=key, bits=bits, rng=random.Random(3)
    )
    client = blindsig.BlindRSAClient(server.public_key, rng=random.Random(4))
    fingerprints = [b"b2-fp-%d" % i for i in range(num_chunks)]
    start = time.perf_counter()
    client.generate_keys(fingerprints, server)
    elapsed = time.perf_counter() - start
    return num_chunks * chunk_bytes / elapsed / (1 << 20)


def keygen_speed_blind_bls(
    num_chunks: int, chunk_bytes: int = 8192
) -> float:
    """Blind-BLS-style key-generation speed in MB/s."""
    server = blindsig.BlindBLSKeyServer(rng=random.Random(5))
    client = blindsig.BlindBLSClient(rng=random.Random(6))
    fingerprints = [b"b2-fp-%d" % i for i in range(num_chunks)]
    start = time.perf_counter()
    client.generate_keys(fingerprints, server)
    elapsed = time.perf_counter() - start
    return num_chunks * chunk_bytes / elapsed / (1 << 20)


# -- Experiment B.3: multi-client throughput -------------------------------------


@dataclass
class MultiClientResult:
    """Aggregate speeds for one client count."""

    clients: int
    upload_mb_s: float
    download_mb_s: float


def experiment_b3(
    num_clients: int,
    file_bytes: int = 1 << 20,
    batch_size: int = 1000,
    profile_name: str = "shactr",
) -> MultiClientResult:
    """Figure 8: concurrent clients uploading then downloading over TCP."""
    key_manager = KeyManagerService(
        TedKeyManager(
            secret=b"perf-secret",
            blowup_factor=1.05,
            batch_size=batch_size * 8,
            sketch_width=2**18,
        )
    )
    provider = ProviderService(in_memory=True)
    km_handle = serve_key_manager(key_manager)
    prov_handle = serve_provider(provider)
    clients: List[TedStoreClient] = []
    try:
        for client_id in range(num_clients):
            clients.append(
                TedStoreClient(
                    RemoteKeyManager(km_handle.address),
                    RemoteProvider(prov_handle.address),
                    master_key=bytes([client_id + 1]) * 32,
                    profile=get_profile(profile_name),
                    sketch_width=2**18,
                    batch_size=batch_size,
                )
            )
        datasets = [
            unique_file(file_bytes, client_id=i) for i in range(num_clients)
        ]

        def run_phase(action) -> float:
            barrier = threading.Barrier(num_clients + 1)
            errors: List[BaseException] = []

            def worker(index: int) -> None:
                try:
                    barrier.wait()
                    action(index)
                except BaseException as exc:  # propagate to the caller
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(num_clients)
            ]
            for t in threads:
                t.start()
            barrier.wait()
            start = time.perf_counter()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
            if errors:
                raise errors[0]
            return elapsed

        upload_elapsed = run_phase(
            lambda i: clients[i].upload(f"client{i}", datasets[i])
        )
        download_elapsed = run_phase(
            lambda i: clients[i].download(f"client{i}")
        )
    finally:
        for client in clients:
            client.key_manager.close()
            client.provider.close()
        km_handle.stop()
        prov_handle.stop()
    total_mb = num_clients * file_bytes / (1 << 20)
    return MultiClientResult(
        clients=num_clients,
        upload_mb_s=total_mb / upload_elapsed,
        download_mb_s=total_mb / download_elapsed,
    )


# -- Experiments B.4/B.5: real-world (trace-replay) workloads --------------------


def experiment_b4(
    snapshot: Snapshot,
    directory: Optional[str] = None,
    profile_name: str = "shactr",
    batch_size: int = 2000,
    container_bytes: int = 1 << 20,
) -> Breakdown:
    """Table 2: per-step upload breakdown for one trace snapshot.

    Replays the snapshot (content materialized from fingerprints, §5.3.2)
    into an on-disk provider, so deduplication and disk I/O are in effect.
    Chunking is omitted, and the write step includes provider dedup + disk,
    exactly as in the paper's Table 2.
    """
    directory = directory or tempfile.mkdtemp(prefix="repro-b4-")
    provider = ProviderService(
        directory=directory, container_bytes=container_bytes
    )
    client = _make_inprocess_client(
        profile_name, batch_size, provider=provider
    )
    chunks = [content for _, content in snapshot_to_chunks(snapshot)]
    client.upload_chunks(snapshot.snapshot_id, chunks)
    provider.flush()
    return Breakdown(
        label=f"B.4/{snapshot.snapshot_id}",
        data_bytes=snapshot.total_bytes,
        step_seconds=client.timer.totals(),
    )


@dataclass
class SeriesPoint:
    """Per-snapshot speeds in the B.5 upload/download series."""

    snapshot_id: str
    upload_mb_s: float
    download_mb_s: float


def experiment_b5(
    snapshots: Sequence[Snapshot],
    directory: Optional[str] = None,
    profile_name: str = "shactr",
    batch_size: int = 2000,
    container_bytes: int = 1 << 20,
    kvstore_options: Optional[Dict] = None,
    lookahead_window: Optional[int] = None,
) -> List[SeriesPoint]:
    """Figure 9: upload all snapshots in order, then download them.

    One shared provider across the series, so cross-snapshot dedup,
    fingerprint-index growth, and chunk fragmentation all take effect —
    the mechanisms behind the paper's declining download curve.
    """
    directory = directory or tempfile.mkdtemp(prefix="repro-b5-")
    from repro.storage.dedup import DedupEngine

    engine = DedupEngine(
        directory,
        container_bytes=container_bytes,
        kvstore_options=kvstore_options,
    )
    provider = ProviderService(engine=engine, lookahead_window=lookahead_window)

    key_manager = KeyManagerService(
        TedKeyManager(
            secret=b"perf-secret",
            blowup_factor=1.05,
            batch_size=batch_size * 8,
            sketch_width=2**18,
        )
    )
    client = TedStoreClient(
        LocalKeyManager(key_manager),
        LocalProvider(provider),
        profile=get_profile(profile_name),
        sketch_width=2**18,
        batch_size=batch_size,
    )

    upload_times: List[Tuple[str, float, int]] = []
    for snapshot in snapshots:
        chunks = [content for _, content in snapshot_to_chunks(snapshot)]
        start = time.perf_counter()
        client.upload_chunks(snapshot.snapshot_id, chunks)
        provider.flush()
        elapsed = time.perf_counter() - start
        upload_times.append(
            (snapshot.snapshot_id, elapsed, snapshot.total_bytes)
        )

    points: List[SeriesPoint] = []
    for snapshot_id, upload_elapsed, total_bytes in upload_times:
        start = time.perf_counter()
        data = client.download(snapshot_id)
        download_elapsed = time.perf_counter() - start
        if len(data) != total_bytes:
            raise RuntimeError(
                f"restore of {snapshot_id} returned {len(data)} bytes, "
                f"expected {total_bytes}"
            )
        megabytes = total_bytes / (1 << 20)
        points.append(
            SeriesPoint(
                snapshot_id=snapshot_id,
                upload_mb_s=megabytes / upload_elapsed,
                download_mb_s=megabytes / download_elapsed,
            )
        )
    return points
