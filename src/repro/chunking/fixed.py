"""Fixed-size chunking — the trivial baseline and the trace-replay helper.

Trace-driven experiments replay fingerprint lists where each record carries
an explicit chunk size, so no content-defined pass is needed; this module
also provides plain fixed-size splitting for synthetic unique-data workloads
(Experiments B.1–B.3), where chunk boundaries are irrelevant because every
chunk is unique by construction.
"""

from __future__ import annotations

from typing import Iterator, List


def fixed_chunks(data: bytes, chunk_size: int) -> Iterator[bytes]:
    """Split ``data`` into consecutive ``chunk_size``-byte chunks.

    The final chunk may be shorter. An empty input yields nothing.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    for offset in range(0, len(data), chunk_size):
        yield data[offset : offset + chunk_size]


def split_by_sizes(data: bytes, sizes: List[int]) -> List[bytes]:
    """Split ``data`` into chunks of the exact given sizes (trace replay).

    Raises:
        ValueError: if the sizes do not sum to ``len(data)``.
    """
    if sum(sizes) != len(data):
        raise ValueError("sizes must sum to the data length")
    chunks = []
    offset = 0
    for size in sizes:
        if size <= 0:
            raise ValueError("chunk sizes must be positive")
        chunks.append(data[offset : offset + size])
        offset += size
    return chunks
