"""Rabin fingerprinting over GF(2) polynomials, built from first principles.

TEDStore's client implements content-defined chunking based on Rabin
fingerprinting [Rabin '81] (paper §4): a rolling hash over a sliding window
identifies chunk boundaries wherever the fingerprint satisfies a bitmask
condition, so boundaries survive insertions and deletions (the property that
makes deduplication effective on backup streams).

A Rabin fingerprint treats the window bytes as coefficients of a polynomial
over GF(2) and reduces it modulo a fixed irreducible polynomial ``P`` of
degree ``k``. We generate ``P`` ourselves with a deterministic irreducibility
search (Rabin's own test: ``x^(2^k) ≡ x (mod P)`` and
``gcd(x^(2^(k/q)) - x, P) = 1`` for each prime ``q | k``) rather than pasting
in a magic constant, and precompute the two standard 256-entry tables that
make the rolling update O(1) per byte:

* ``shift`` — reduces the top byte pushed out past degree ``k`` on append.
* ``pop``   — removes the contribution of the byte leaving the window.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

DEFAULT_DEGREE = 53
DEFAULT_WINDOW_SIZE = 48


def _poly_mulmod(a: int, b: int, modulus: int, degree: int) -> int:
    """Multiply two GF(2) polynomials modulo ``modulus`` (degree ``degree``)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a >> degree:
            a ^= modulus
    return result


def _poly_mod(a: int, modulus: int, degree: int) -> int:
    """Reduce a GF(2) polynomial modulo ``modulus``."""
    mod_bits = degree
    while a.bit_length() > mod_bits:
        a ^= modulus << (a.bit_length() - 1 - mod_bits)
    return a


def _poly_gcd(a: int, b: int) -> int:
    """GCD of two GF(2) polynomials (Euclid with polynomial remainder)."""
    while b:
        # a mod b: cancel a's leading bit with a shifted copy of b until
        # deg(a) < deg(b); reaches 0 cleanly when b divides a.
        while a.bit_length() >= b.bit_length():
            a ^= b << (a.bit_length() - b.bit_length())
        a, b = b, a
    return a


def _prime_factors(n: int) -> List[int]:
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def is_irreducible(poly: int) -> bool:
    """Rabin's irreducibility test for a GF(2) polynomial.

    ``poly`` is the full polynomial including the leading ``x^k`` term.
    """
    degree = poly.bit_length() - 1
    if degree < 1:
        return False

    def x_pow_pow2(exponent_log: int) -> int:
        # Compute x^(2^exponent_log) mod poly by repeated squaring of x.
        value = 0b10  # the polynomial "x"
        for _ in range(exponent_log):
            value = _poly_mulmod(value, value, poly, degree)
        return value

    # Condition 1: x^(2^k) == x (mod poly).
    if x_pow_pow2(degree) != 0b10:
        return False
    # Condition 2: gcd(x^(2^(k/q)) - x, poly) == 1 for each prime q | k.
    for q in _prime_factors(degree):
        h = x_pow_pow2(degree // q) ^ 0b10
        if _poly_gcd(h, poly) != 1:
            return False
    return True


def find_irreducible(degree: int, seed: int = 1) -> int:
    """Deterministically find an irreducible polynomial of ``degree``.

    Scans odd polynomials (constant term 1 is necessary for irreducibility
    above degree 1) starting from a seed-derived offset, so different seeds
    yield different moduli while remaining reproducible.
    """
    if degree < 2:
        raise ValueError("degree must be at least 2")
    base = 1 << degree
    # Odd starting point derived from the seed, within the coefficient space.
    start = (seed * 0x9E3779B97F4A7C15) % (base // 2) * 2 + 1
    for offset in range(0, base, 2):
        candidate = base | ((start + offset) % base) | 1
        if is_irreducible(candidate):
            return candidate
    raise RuntimeError("no irreducible polynomial found")  # pragma: no cover


def _x_pow_mod(exponent: int, polynomial: int, degree: int) -> int:
    """``x^exponent mod polynomial`` by square-and-multiply."""
    result = 1
    base = 0b10
    while exponent:
        if exponent & 1:
            result = _poly_mulmod(result, base, polynomial, degree)
        base = _poly_mulmod(base, base, polynomial, degree)
        exponent >>= 1
    return result


@lru_cache(maxsize=None)
def rolling_tables(
    polynomial: int, window_size: int
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """The (shift, pop) rolling-update tables for one (P, window) pair.

    Cached at module level so every chunker/fingerprint built with the
    same polynomial and window shares one physical pair of tables
    (constructing them costs ~256 polynomial reductions plus 256 modular
    multiplications — pure waste when repeated per construction).
    """
    degree = polynomial.bit_length() - 1
    # shift[b]: reduction of b * x^degree for each possible top byte b.
    shift = tuple(
        _poly_mod(b << degree, polynomial, degree) for b in range(256)
    )
    # pop[b]: contribution of byte b once it is window_size bytes old,
    # i.e. b * x^(8 * window_size) mod P.
    x8w = _x_pow_mod(8 * window_size, polynomial, degree)
    pop = tuple(
        _poly_mulmod(b, x8w, polynomial, degree) for b in range(256)
    )
    return shift, pop


@lru_cache(maxsize=None)
def window_tables(polynomial: int, window_size: int):
    """Per-distance contribution tables for the vectorized scan kernel.

    Row ``d`` maps byte value ``b`` to ``b * x^(8d) mod P`` — the
    contribution of a byte ``d`` positions behind the scan head. The
    windowed fingerprint at position ``i`` is the XOR of
    ``T[d][data[i-d]]`` over ``d in [0, window)``, with out-of-range
    positions contributing nothing (row entry 0 is always 0, so
    zero-padding the data realizes that for free). Returns a
    ``(window_size, 256)`` uint64 ndarray, cached per (P, window).
    """
    import numpy as np

    degree = polynomial.bit_length() - 1
    table = np.zeros((window_size, 256), dtype=np.uint64)
    for d in range(window_size):
        xp = _x_pow_mod(8 * d, polynomial, degree)
        table[d] = [
            _poly_mulmod(b, xp, polynomial, degree) for b in range(256)
        ]
    table.setflags(write=False)
    return table


class RabinFingerprint:
    """Rolling Rabin fingerprint over a fixed-size byte window.

    Example:
        >>> rf = RabinFingerprint()
        >>> for byte in b"hello world, hello dedup":
        ...     _ = rf.roll(byte)
        >>> rf.fingerprint == RabinFingerprint.of(
        ...     b"hello world, hello dedup"[-rf.window_size:],
        ...     rf.polynomial)
        True
    """

    _POLY_CACHE: dict = {}

    def __init__(
        self,
        polynomial: int | None = None,
        window_size: int = DEFAULT_WINDOW_SIZE,
        degree: int = DEFAULT_DEGREE,
    ) -> None:
        if polynomial is None:
            if degree not in self._POLY_CACHE:
                self._POLY_CACHE[degree] = find_irreducible(degree)
            polynomial = self._POLY_CACHE[degree]
        self.polynomial = polynomial
        self.degree = polynomial.bit_length() - 1
        self.window_size = window_size
        self.fingerprint = 0
        self._window = bytearray(window_size)
        self._pos = 0
        self._filled = 0
        # Shared, module-cached tables: every fingerprint with the same
        # (polynomial, window) pair aliases one physical table pair
        # instead of recomputing ~512 modular operations per construction.
        self._shift_table, self._pop_table = rolling_tables(
            self.polynomial, window_size
        )

    def reset(self) -> None:
        """Clear the window and fingerprint."""
        self.fingerprint = 0
        self._pos = 0
        self._filled = 0
        for i in range(self.window_size):
            self._window[i] = 0

    def roll(self, byte: int) -> int:
        """Slide the window by one byte; returns the new fingerprint."""
        old = self._window[self._pos]
        self._window[self._pos] = byte
        self._pos = (self._pos + 1) % self.window_size
        if self._filled < self.window_size:
            self._filled += 1
        fp = self.fingerprint
        # Append: fp = fp * x^8 + byte (mod P), reducing the top byte.
        top = fp >> (self.degree - 8)
        fp = (((fp << 8) & ((1 << self.degree) - 1)) | byte) ^ self._shift_table[top]
        # Pop the byte that just left the window (zero until it fills).
        fp ^= self._pop_table[old]
        self.fingerprint = fp
        return fp

    @classmethod
    def of(cls, data: bytes, polynomial: int) -> int:
        """Non-rolling fingerprint of ``data`` (reference for tests)."""
        degree = polynomial.bit_length() - 1
        value = 0
        for byte in data:
            value = _poly_mod((value << 8) | byte, polynomial, degree)
        return value
