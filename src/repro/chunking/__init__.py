"""Chunking substrate: Rabin fingerprinting and content-defined chunking."""

from repro.chunking.cdc import ChunkerParams, ContentDefinedChunker
from repro.chunking.fixed import fixed_chunks, split_by_sizes
from repro.chunking.rabin import RabinFingerprint, find_irreducible, is_irreducible

__all__ = [
    "ChunkerParams",
    "ContentDefinedChunker",
    "fixed_chunks",
    "split_by_sizes",
    "RabinFingerprint",
    "find_irreducible",
    "is_irreducible",
]
