"""Content-defined chunking with min/avg/max size bounds (paper §4 defaults:
4 KB / 8 KB / 16 KB).

A boundary is declared at the first position past ``min_size`` where the
rolling fingerprint satisfies ``fp & mask == mask`` with
``mask = avg_size - 1`` (``avg_size`` must be a power of two), so boundaries
fall on content features and survive shifts — the property deduplication
depends on. Chunks are force-cut at ``max_size``.

Two rolling hashes are available:

* ``rabin`` — the faithful GF(2) Rabin fingerprint (:mod:`repro.chunking.rabin`).
* ``gear``  — a Gear/FastCDC-style multiply-free rolling hash, several times
  faster in pure Python; used by the throughput benchmarks. Both produce
  content-defined boundaries with the same statistical chunk-size profile.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Iterator, List

from repro.chunking.rabin import DEFAULT_WINDOW_SIZE, RabinFingerprint
from repro.obs import metrics as obs_metrics

_MASK64 = 0xFFFFFFFFFFFFFFFF

_REGISTRY = obs_metrics.get_registry()
_CHUNK_BYTES = _REGISTRY.counter(
    "ted_chunking_bytes_total", "Bytes run through content-defined chunking"
)
_CHUNK_COUNT = _REGISTRY.counter(
    "ted_chunking_chunks_total", "Chunks produced by content-defined chunking"
)
_CHUNK_SECONDS = _REGISTRY.histogram(
    "ted_chunking_call_seconds",
    "Wall-clock time of one chunk() pass (includes consumer time when the "
    "iterator is consumed lazily)",
)


def _build_gear_table(seed: int = 0) -> List[int]:
    """Derive the 256-entry Gear table from SHA-256 so it needs no constants."""
    table = []
    for i in range(256):
        digest = hashlib.sha256(
            b"repro-gear" + seed.to_bytes(4, "big") + bytes([i])
        ).digest()
        table.append(int.from_bytes(digest[:8], "big"))
    return table


_GEAR_TABLE = _build_gear_table()


@dataclass(frozen=True)
class ChunkerParams:
    """Size bounds for content-defined chunking.

    Attributes:
        min_size: no boundary is considered before this many bytes.
        avg_size: target average chunk size; must be a power of two.
        max_size: chunks are force-cut at this size.
    """

    min_size: int = 4096
    avg_size: int = 8192
    max_size: int = 16384

    def __post_init__(self) -> None:
        if not (0 < self.min_size <= self.avg_size <= self.max_size):
            raise ValueError(
                "require 0 < min_size <= avg_size <= max_size, got "
                f"{self.min_size}/{self.avg_size}/{self.max_size}"
            )
        if self.avg_size & (self.avg_size - 1):
            raise ValueError("avg_size must be a power of two")

    @property
    def mask(self) -> int:
        return self.avg_size - 1


class ContentDefinedChunker:
    """Splits byte streams into variable-size, content-defined chunks.

    Args:
        params: size bounds (defaults to the paper's 4/8/16 KB).
        algorithm: "gear" (fast, default) or "rabin" (faithful).

    Example:
        >>> chunker = ContentDefinedChunker(ChunkerParams(64, 128, 256))
        >>> data = bytes(range(256)) * 40
        >>> b"".join(chunker.chunk(data)) == data
        True
    """

    def __init__(
        self,
        params: ChunkerParams | None = None,
        algorithm: str = "gear",
    ) -> None:
        if algorithm not in ("gear", "rabin"):
            raise ValueError(f"unknown chunking algorithm: {algorithm!r}")
        self.params = params or ChunkerParams()
        self.algorithm = algorithm
        if algorithm == "rabin":
            self._rabin = RabinFingerprint(window_size=DEFAULT_WINDOW_SIZE)

    def chunk(self, data: bytes) -> Iterator[bytes]:
        """Yield consecutive chunks whose concatenation equals ``data``."""
        start = time.perf_counter()
        produced = 0
        try:
            if self.algorithm == "gear":
                inner = self._chunk_gear(data)
            else:
                inner = self._chunk_rabin(data)
            for piece in inner:
                produced += 1
                yield piece
        finally:
            # Throughput accounting covers only what was actually consumed
            # (an abandoned iterator must not claim the whole input).
            _CHUNK_SECONDS.observe(time.perf_counter() - start)
            _CHUNK_COUNT.inc(produced)
            if produced:
                _CHUNK_BYTES.inc(len(data))

    def chunk_sizes(self, data: bytes) -> List[int]:
        """Return only the chunk sizes (cheap path for analysis)."""
        return [len(c) for c in self.chunk(data)]

    def _chunk_gear(self, data: bytes) -> Iterator[bytes]:
        params = self.params
        mask = params.mask
        table = _GEAR_TABLE
        length = len(data)
        start = 0
        while start < length:
            end = min(start + params.max_size, length)
            scan_from = start + params.min_size
            if scan_from >= end:
                yield data[start:end]
                start = end
                continue
            fp = 0
            cut = end
            # Warm the hash over the min-size prefix so the boundary decision
            # at scan_from already reflects a full window of content.
            for i in range(max(start, scan_from - 64), scan_from):
                fp = ((fp << 1) + table[data[i]]) & _MASK64
            for i in range(scan_from, end):
                fp = ((fp << 1) + table[data[i]]) & _MASK64
                if fp & mask == mask:
                    cut = i + 1
                    break
            yield data[start:cut]
            start = cut

    def _chunk_rabin(self, data: bytes) -> Iterator[bytes]:
        params = self.params
        mask = params.mask
        rabin = self._rabin
        roll = rabin.roll
        window = rabin.window_size
        length = len(data)
        start = 0
        while start < length:
            end = min(start + params.max_size, length)
            scan_from = start + params.min_size
            if scan_from >= end:
                yield data[start:end]
                start = end
                continue
            rabin.reset()
            cut = end
            for i in range(max(start, scan_from - window), scan_from):
                roll(data[i])
            for i in range(scan_from, end):
                if roll(data[i]) & mask == mask:
                    cut = i + 1
                    break
            yield data[start:cut]
            start = cut
