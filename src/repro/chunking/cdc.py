"""Content-defined chunking with min/avg/max size bounds (paper §4 defaults:
4 KB / 8 KB / 16 KB).

A boundary is declared at the first position past ``min_size`` where the
rolling fingerprint satisfies ``fp & mask == mask`` with
``mask = avg_size - 1`` (``avg_size`` must be a power of two), so boundaries
fall on content features and survive shifts — the property deduplication
depends on. Chunks are force-cut at ``max_size``.

Two rolling hashes are available:

* ``rabin`` — the faithful GF(2) Rabin fingerprint (:mod:`repro.chunking.rabin`).
* ``gear``  — a Gear/FastCDC-style multiply-free rolling hash, several times
  faster in pure Python; used by the throughput benchmarks. Both produce
  content-defined boundaries with the same statistical chunk-size profile.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.chunking.rabin import (
    DEFAULT_WINDOW_SIZE,
    RabinFingerprint,
    window_tables,
)
from repro.obs import metrics as obs_metrics
from repro.utils import kernels

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Gear history horizon: fp = ((fp << 1) + g[b]) mod 2^64 forgets a byte
#: completely once it has been shifted 64 positions, so the fingerprint
#: at any position is a function of at most the last 64 bytes.
_GEAR_WINDOW = 64

#: Scan-kernel segment length (positions per vectorized pass). Segments
#: give the vectorized scan the reference loop's early-exit behaviour at
#: batch granularity: a boundary in the first segment stops the scan
#: before the rest of the region is touched.
_SEGMENT = 4096

#: Below this many scan positions the numpy call overhead exceeds the
#: per-byte loop; fall through to the reference implementation.
_MIN_KERNEL_SCAN = 256

_REGISTRY = obs_metrics.get_registry()
_CHUNK_BYTES = _REGISTRY.counter(
    "ted_chunking_bytes_total", "Bytes run through content-defined chunking"
)
_CHUNK_COUNT = _REGISTRY.counter(
    "ted_chunking_chunks_total", "Chunks produced by content-defined chunking"
)
_CHUNK_SECONDS = _REGISTRY.histogram(
    "ted_chunking_call_seconds",
    "Wall-clock time of one chunk() pass (includes consumer time when the "
    "iterator is consumed lazily)",
)


def _build_gear_table(seed: int = 0) -> List[int]:
    """Derive the 256-entry Gear table from SHA-256 so it needs no constants."""
    table = []
    for i in range(256):
        digest = hashlib.sha256(
            b"repro-gear" + seed.to_bytes(4, "big") + bytes([i])
        ).digest()
        table.append(int.from_bytes(digest[:8], "big"))
    return table


_GEAR_TABLE = _build_gear_table()
_GEAR_TABLE_NP = np.array(_GEAR_TABLE, dtype=np.uint64)
_GEAR_TABLE_NP.setflags(write=False)


@dataclass(frozen=True)
class ChunkerParams:
    """Size bounds for content-defined chunking.

    Attributes:
        min_size: no boundary is considered before this many bytes.
        avg_size: target average chunk size; must be a power of two.
        max_size: chunks are force-cut at this size.
    """

    min_size: int = 4096
    avg_size: int = 8192
    max_size: int = 16384

    def __post_init__(self) -> None:
        if not (0 < self.min_size <= self.avg_size <= self.max_size):
            raise ValueError(
                "require 0 < min_size <= avg_size <= max_size, got "
                f"{self.min_size}/{self.avg_size}/{self.max_size}"
            )
        if self.avg_size & (self.avg_size - 1):
            raise ValueError("avg_size must be a power of two")

    @property
    def mask(self) -> int:
        return self.avg_size - 1


class ContentDefinedChunker:
    """Splits byte streams into variable-size, content-defined chunks.

    Args:
        params: size bounds (defaults to the paper's 4/8/16 KB).
        algorithm: "gear" (fast, default) or "rabin" (faithful).

    Example:
        >>> chunker = ContentDefinedChunker(ChunkerParams(64, 128, 256))
        >>> data = bytes(range(256)) * 40
        >>> b"".join(chunker.chunk(data)) == data
        True
    """

    def __init__(
        self,
        params: ChunkerParams | None = None,
        algorithm: str = "gear",
    ) -> None:
        if algorithm not in ("gear", "rabin"):
            raise ValueError(f"unknown chunking algorithm: {algorithm!r}")
        self.params = params or ChunkerParams()
        self.algorithm = algorithm
        if algorithm == "rabin":
            self._rabin = RabinFingerprint(window_size=DEFAULT_WINDOW_SIZE)

    def chunk(self, data: bytes) -> Iterator[bytes]:
        """Yield consecutive chunks whose concatenation equals ``data``."""
        start = time.perf_counter()
        produced = 0
        try:
            if self.algorithm == "gear":
                inner = self._chunk_gear(data)
            else:
                inner = self._chunk_rabin(data)
            for piece in inner:
                produced += 1
                yield piece
        finally:
            # Throughput accounting covers only what was actually consumed
            # (an abandoned iterator must not claim the whole input).
            _CHUNK_SECONDS.observe(time.perf_counter() - start)
            _CHUNK_COUNT.inc(produced)
            if produced:
                _CHUNK_BYTES.inc(len(data))

    def chunk_sizes(self, data: bytes) -> List[int]:
        """Return only the chunk sizes (cheap path for analysis)."""
        return [len(c) for c in self.chunk(data)]

    def _chunk_gear(self, data: bytes) -> Iterator[bytes]:
        params = self.params
        length = len(data)
        start = 0
        while start < length:
            end = min(start + params.max_size, length)
            scan_from = start + params.min_size
            if scan_from >= end:
                yield data[start:end]
                start = end
                continue
            if (
                kernels.kernels_enabled()
                and end - scan_from >= _MIN_KERNEL_SCAN
            ):
                cut = self._gear_cut_kernel(data, start, scan_from, end)
            else:
                cut = self._gear_cut_reference(data, start, scan_from, end)
            yield data[start:cut]
            start = cut

    def _gear_cut_reference(
        self, data: bytes, start: int, scan_from: int, end: int
    ) -> int:
        """Per-byte gear scan — the semantic spec for the kernel."""
        mask = self.params.mask
        table = _GEAR_TABLE
        fp = 0
        # Warm the hash over the min-size prefix so the boundary decision
        # at scan_from already reflects a full window of content.
        for i in range(max(start, scan_from - _GEAR_WINDOW), scan_from):
            fp = ((fp << 1) + table[data[i]]) & _MASK64
        for i in range(scan_from, end):
            fp = ((fp << 1) + table[data[i]]) & _MASK64
            if fp & mask == mask:
                return i + 1
        return end

    def _gear_cut_kernel(
        self, data: bytes, start: int, scan_from: int, end: int
    ) -> int:
        """Vectorized gear scan (DESIGN.md §16), identical to reference.

        ``fp_i = Σ_{k<64} g[data[i-k]] << k (mod 2^64)`` — the rolling
        recurrence unrolled into a 64-term shifted sum, evaluated for a
        whole segment of positions at once. Zero-padding the *mapped*
        array realizes the shorter warm-up window near ``start`` (absent
        bytes contribute nothing).
        """
        started = time.perf_counter()
        mask = np.uint64(self.params.mask)
        table = _GEAR_TABLE_NP
        warm = max(start, scan_from - _GEAR_WINDOW)
        horizon = _GEAR_WINDOW - 1
        cut = end
        scanned = 0
        for seg_start in range(scan_from, end, _SEGMENT):
            seg_end = min(seg_start + _SEGMENT, end)
            out_len = seg_end - seg_start
            lo = max(warm, seg_start - horizon)
            pad = horizon - (seg_start - lo)
            acc = np.zeros(horizon + out_len, dtype=np.uint64)
            acc[pad:] = table[
                np.frombuffer(
                    data, dtype=np.uint8, count=seg_end - lo, offset=lo
                )
            ]
            # Shifted-sum by doubling: after the log2(64) = 6 steps,
            # acc[j] = Σ_{k<64} g[data[j-k]] << k (mod 2^64) — six whole-
            # segment operations instead of one per window position.
            for n in (1, 2, 4, 8, 16, 32):
                acc[n:] += acc[:-n] << np.uint64(n)
            hits = np.nonzero((acc[horizon:] & mask) == mask)[0]
            scanned += out_len
            if hits.size:
                cut = seg_start + int(hits[0]) + 1
                break
        kernels.observe(
            "gear_scan", scanned, scanned, time.perf_counter() - started
        )
        return cut

    def _chunk_rabin(self, data: bytes) -> Iterator[bytes]:
        params = self.params
        length = len(data)
        start = 0
        while start < length:
            end = min(start + params.max_size, length)
            scan_from = start + params.min_size
            if scan_from >= end:
                yield data[start:end]
                start = end
                continue
            if (
                kernels.kernels_enabled()
                and end - scan_from >= _MIN_KERNEL_SCAN
            ):
                cut = self._rabin_cut_kernel(data, start, scan_from, end)
            else:
                cut = self._rabin_cut_reference(data, start, scan_from, end)
            yield data[start:cut]
            start = cut

    def _rabin_cut_reference(
        self, data: bytes, start: int, scan_from: int, end: int
    ) -> int:
        """Rolling Rabin scan — the semantic spec for the kernel."""
        mask = self.params.mask
        rabin = self._rabin
        roll = rabin.roll
        window = rabin.window_size
        rabin.reset()
        for i in range(max(start, scan_from - window), scan_from):
            roll(data[i])
        for i in range(scan_from, end):
            if roll(data[i]) & mask == mask:
                return i + 1
        return end

    def _rabin_cut_kernel(
        self, data: bytes, start: int, scan_from: int, end: int
    ) -> int:
        """Vectorized Rabin scan over per-distance contribution tables.

        The windowed fingerprint is linear over GF(2):
        ``fp_i = XOR_{d<w} T[d][data[i-d]]`` with ``T[d][b] = b·x^(8d)
        mod P`` (:func:`repro.chunking.rabin.window_tables`). Byte 0
        contributes nothing in every row, so zero-padding the data
        realizes the partially-filled window near ``start`` exactly like
        the reference's zero-initialized ring buffer.
        """
        started = time.perf_counter()
        rabin = self._rabin
        window = rabin.window_size
        table = window_tables(rabin.polynomial, window)
        mask = np.uint64(self.params.mask)
        warm = max(start, scan_from - window)
        horizon = window - 1
        cut = end
        scanned = 0
        for seg_start in range(scan_from, end, _SEGMENT):
            seg_end = min(seg_start + _SEGMENT, end)
            out_len = seg_end - seg_start
            lo = max(warm, seg_start - horizon)
            pad = horizon - (seg_start - lo)
            raw = np.frombuffer(
                data, dtype=np.uint8, count=seg_end - lo, offset=lo
            )
            if pad:
                padded = np.zeros(horizon + out_len, dtype=np.uint8)
                padded[pad:] = raw
            else:
                padded = raw
            acc = np.zeros(out_len, dtype=np.uint64)
            for d in range(window):
                acc ^= table[d][
                    padded[horizon - d : horizon - d + out_len]
                ]
            hits = np.nonzero((acc & mask) == mask)[0]
            scanned += out_len
            if hits.size:
                cut = seg_start + int(hits[0]) + 1
                break
        kernels.observe(
            "rabin_scan", scanned, scanned, time.perf_counter() - started
        )
        return cut
