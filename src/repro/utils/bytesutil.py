"""Byte-level helpers used across the crypto and storage substrates."""

from __future__ import annotations


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Return the XOR of two equal-length byte strings.

    Raises:
        ValueError: if the inputs differ in length.
    """
    if len(a) != len(b):
        raise ValueError(f"xor_bytes length mismatch: {len(a)} != {len(b)}")
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(
        len(a), "big"
    )


def int_to_bytes(value: int, length: int) -> bytes:
    """Encode a non-negative integer as big-endian bytes of a fixed length."""
    if value < 0:
        raise ValueError("int_to_bytes requires a non-negative integer")
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Decode big-endian bytes into a non-negative integer."""
    return int.from_bytes(data, "big")


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    return -(-numerator // denominator)
