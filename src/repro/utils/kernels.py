"""Runtime switch and instruments for the batched hot-path kernels.

The data-path inner loops (AES rounds, SHA-CTR keystream, gear/Rabin
boundary scans, Count-Min batch updates — DESIGN.md §16) each exist in
two byte-identical forms: the original *reference* implementation, kept
as the semantic spec, and a *kernel* implementation that is table-driven
and batched (``memoryview``/``bytearray``/numpy) so interpreter overhead
is paid per batch instead of per byte.

Kernels are on by default. ``REPRO_KERNELS=off`` (or ``0``/``false``)
in the environment forces every call site back onto the reference path —
this is how ``tools/perf_delta.py`` measures the before/after pair in
``BENCH_load.json``, and how a suspected kernel bug can be bisected in
production without a rollback. Tests flip the switch in-process via
:func:`set_kernels_enabled`.

The shared ``ted_kernel_*`` instruments record batch sizes, bytes, and
per-call latency for every kernel, labelled by kernel name, so the
throughput effect of each kernel is visible in ``repro stats`` and the
generated docs/METRICS.md.
"""

from __future__ import annotations

import os

from repro.obs import metrics as obs_metrics

_REGISTRY = obs_metrics.get_registry()

#: Items (blocks, chunks, hash vectors, scan positions) per kernel call.
KERNEL_BATCH_SIZE = _REGISTRY.histogram(
    "ted_kernel_batch_size",
    "Items processed per batched-kernel invocation",
    labelnames=("kernel",),
    buckets=(1, 8, 64, 512, 4096, 65536, 1 << 24),
)
KERNEL_SECONDS = _REGISTRY.histogram(
    "ted_kernel_seconds",
    "Wall-clock latency of one batched-kernel invocation",
    labelnames=("kernel",),
)
KERNEL_BYTES = _REGISTRY.counter(
    "ted_kernel_bytes_total",
    "Bytes run through each batched kernel",
    labelnames=("kernel",),
)
KERNEL_CALLS = _REGISTRY.counter(
    "ted_kernel_calls_total",
    "Batched-kernel invocations by implementation path",
    labelnames=("kernel", "path"),
)


def _env_enabled() -> bool:
    return os.environ.get("REPRO_KERNELS", "").strip().lower() not in (
        "off",
        "0",
        "false",
    )


_enabled = _env_enabled()


def kernels_enabled() -> bool:
    """Whether call sites should take the batched-kernel fast path."""
    return _enabled


def set_kernels_enabled(enabled: bool) -> bool:
    """Flip the kernel switch in-process; returns the previous value.

    Intended for tests and the perf harness; production runs use the
    ``REPRO_KERNELS`` environment variable read at import.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def observe(kernel: str, items: int, nbytes: int, seconds: float) -> None:
    """Record one batched-kernel invocation on the shared instruments."""
    KERNEL_BATCH_SIZE.labels(kernel=kernel).observe(items)
    KERNEL_SECONDS.labels(kernel=kernel).observe(seconds)
    if nbytes:
        KERNEL_BYTES.labels(kernel=kernel).inc(nbytes)
    KERNEL_CALLS.labels(kernel=kernel, path="kernel").inc()


__all__ = [
    "kernels_enabled",
    "set_kernels_enabled",
    "observe",
    "KERNEL_BATCH_SIZE",
    "KERNEL_SECONDS",
    "KERNEL_BYTES",
    "KERNEL_CALLS",
]
