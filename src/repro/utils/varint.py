"""Unsigned LEB128-style varint codec used by the storage formats.

SSTables, file recipes, and wire messages all store lengths and counters as
varints to keep the on-disk and on-wire footprint small, mirroring how
LevelDB encodes its internal keys.
"""

from __future__ import annotations

from typing import Tuple


def encode_uvarint(value: int) -> bytes:
    """Encode a non-negative integer as a little-endian base-128 varint."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint from ``data`` starting at ``offset``.

    Returns:
        A ``(value, next_offset)`` tuple.

    Raises:
        ValueError: if the buffer ends mid-varint or the varint overflows
            64 bits (a corrupt-input guard, as in LevelDB).
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        if shift > 63:
            raise ValueError("varint too long (corrupt input)")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
