"""Small shared utilities: byte helpers, timers, and varint codecs."""

from repro.utils.bytesutil import (
    bytes_to_int,
    ceil_div,
    int_to_bytes,
    xor_bytes,
)
from repro.utils.timer import StageTimer, Stopwatch
from repro.utils.varint import decode_uvarint, encode_uvarint

__all__ = [
    "bytes_to_int",
    "ceil_div",
    "int_to_bytes",
    "xor_bytes",
    "StageTimer",
    "Stopwatch",
    "decode_uvarint",
    "encode_uvarint",
]
