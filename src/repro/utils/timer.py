"""Timing helpers for the performance experiments (Experiments B.1/B.4).

The paper reports per-step compute-time breakdowns (Tables 1 and 2). The
``StageTimer`` accumulates wall-clock time per named stage so the TEDStore
client and key manager can attribute time to chunking, fingerprinting,
hashing, key seeding, key derivation, encryption, and write steps.

Every stage exit is also observed on the ``ted_stage_seconds`` histogram
of the metrics registry (labelled by stage name — a small, bounded set),
so the per-step latency *distribution* is available alongside the paper's
per-step totals (DESIGN.md §9).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

from repro.obs import metrics as obs_metrics

_STAGE_SECONDS = obs_metrics.get_registry().histogram(
    "ted_stage_seconds",
    "Per-stage latency of pipeline stage executions",
    labelnames=("stage",),
)


class Stopwatch:
    """A restartable wall-clock stopwatch based on ``time.perf_counter``."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def restart(self) -> None:
        """Reset the stopwatch to zero."""
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Return seconds elapsed since construction or last restart."""
        return time.perf_counter() - self._start


class StageTimer:
    """Accumulates elapsed time per named stage.

    Example:
        >>> timer = StageTimer()
        >>> with timer.stage("encryption"):
        ...     pass
        >>> timer.total("encryption") >= 0.0
        True
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager that attributes elapsed time to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            _STAGE_SECONDS.labels(stage=name).observe(elapsed)

    def add(self, name: str, seconds: float) -> None:
        """Manually add elapsed seconds to a stage."""
        self._totals[name] = self._totals.get(name, 0.0) + seconds

    def total(self, name: str) -> float:
        """Return accumulated seconds for a stage (0.0 if never entered)."""
        return self._totals.get(name, 0.0)

    def totals(self) -> Dict[str, float]:
        """Return a copy of all accumulated stage totals."""
        return dict(self._totals)

    def merge(self, other: "StageTimer") -> None:
        """Fold another timer's totals into this one."""
        for name, seconds in other.totals().items():
            self.add(name, seconds)

    def reset(self) -> None:
        """Drop all accumulated totals."""
        self._totals.clear()
