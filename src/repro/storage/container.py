"""Container store: packs unique chunks into fixed-size container files.

The provider packs unique ciphertext chunks (KB each) into fixed-size
containers (8 MB in the paper, §4) so disk I/O happens in container units.
This is the standard backup-store layout [Zhu et al., FAST '08] and is what
produces the *chunk fragmentation* effect of Experiment B.5: later snapshots
reference chunks scattered across many old containers, so restores touch
more containers and slow down.

Chunks are addressed by ``ChunkLocation(container_id, offset, length)``.
Reads fetch whole containers through a small LRU cache, mirroring how a real
provider amortizes disk seeks.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.obs import metrics as obs_metrics

DEFAULT_CONTAINER_BYTES = 8 << 20

_REGISTRY = obs_metrics.get_registry()
_CONTAINER_EVENTS = _REGISTRY.counter(
    "ted_container_events_total",
    "Container store activity (sealed flushes, disk reads, cache hits)",
    labelnames=("event",),
)
_CONTAINER_SEAL_BYTES = _REGISTRY.counter(
    "ted_container_sealed_bytes_total", "Bytes flushed in sealed containers"
)


@dataclass(frozen=True)
class ChunkLocation:
    """Physical address of a chunk inside the container store."""

    container_id: int
    offset: int
    length: int

    def to_bytes(self) -> bytes:
        """Serialize as fixed 16 bytes (id, offset, length as u32/u64/u32)."""
        return (
            self.container_id.to_bytes(4, "big")
            + self.offset.to_bytes(8, "big")
            + self.length.to_bytes(4, "big")
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ChunkLocation":
        """Inverse of :meth:`to_bytes`."""
        if len(data) != 16:
            raise ValueError("chunk location must be 16 bytes")
        return cls(
            container_id=int.from_bytes(data[:4], "big"),
            offset=int.from_bytes(data[4:12], "big"),
            length=int.from_bytes(data[12:], "big"),
        )


class ContainerStore:
    """Append-only chunk storage in fixed-size container files.

    Args:
        directory: where container files live.
        container_bytes: capacity per container (the paper uses 8 MB; tests
            scale this down).
        cache_containers: number of containers kept in the read LRU cache.
    """

    def __init__(
        self,
        directory,
        container_bytes: int = DEFAULT_CONTAINER_BYTES,
        cache_containers: int = 8,
    ) -> None:
        if container_bytes <= 0:
            raise ValueError("container_bytes must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.container_bytes = container_bytes
        self.cache_containers = cache_containers
        self._open_id = self._discover_next_id()
        self._open_buffer = bytearray()
        self._cache: OrderedDict[int, bytes] = OrderedDict()
        self.stats: Dict[str, int] = {
            "containers_sealed": 0,
            "container_reads": 0,
            "cache_hits": 0,
        }

    def _discover_next_id(self) -> int:
        existing = [
            int(p.stem.split("-")[1])
            for p in self.directory.glob("container-*.bin")
        ]
        return max(existing) + 1 if existing else 0

    def _container_path(self, container_id: int) -> Path:
        return self.directory / f"container-{container_id}.bin"

    # -- writes ---------------------------------------------------------------

    def append(self, chunk: bytes) -> ChunkLocation:
        """Append a chunk; seals the open container when it fills.

        A chunk never spans containers: if it does not fit in the remaining
        space, the open container is sealed first.

        Raises:
            ValueError: if a single chunk exceeds the container capacity.
        """
        if not chunk:
            raise ValueError("cannot store an empty chunk")
        if len(chunk) > self.container_bytes:
            raise ValueError(
                f"chunk of {len(chunk)} bytes exceeds container capacity "
                f"{self.container_bytes}"
            )
        if len(self._open_buffer) + len(chunk) > self.container_bytes:
            self.seal()
        location = ChunkLocation(
            container_id=self._open_id,
            offset=len(self._open_buffer),
            length=len(chunk),
        )
        self._open_buffer.extend(chunk)
        return location

    def seal(self) -> Optional[int]:
        """Flush the open container to disk; returns its id (None if empty)."""
        if not self._open_buffer:
            return None
        sealed_id = self._open_id
        sealed_bytes = len(self._open_buffer)
        self._container_path(sealed_id).write_bytes(bytes(self._open_buffer))
        self._open_buffer = bytearray()
        self._open_id += 1
        self.stats["containers_sealed"] += 1
        _CONTAINER_EVENTS.labels(event="sealed").inc()
        _CONTAINER_SEAL_BYTES.inc(sealed_bytes)
        return sealed_id

    # -- reads ------------------------------------------------------------------

    @property
    def open_container_id(self) -> int:
        """Id of the still-open (unsealed) container.

        Reads of this id snapshot the open buffer and MUST NOT be cached
        by callers: later appends land in the same container, so a
        cached snapshot would serve stale bytes.
        """
        return self._open_id

    def load_container(self, container_id: int) -> bytes:
        """Fetch one whole container (open buffer or sealed file).

        Sealed containers go through the store's LRU read cache; the
        open container is snapshotted fresh on every call.

        Raises:
            KeyError: unknown container.
        """
        return self._load_container(container_id)

    def _load_container(self, container_id: int) -> bytes:
        if container_id == self._open_id:
            return bytes(self._open_buffer)
        cached = self._cache.get(container_id)
        if cached is not None:
            self._cache.move_to_end(container_id)
            self.stats["cache_hits"] += 1
            _CONTAINER_EVENTS.labels(event="cache_hit").inc()
            return cached
        path = self._container_path(container_id)
        if not path.exists():
            raise KeyError(f"container {container_id} does not exist")
        data = path.read_bytes()
        self.stats["container_reads"] += 1
        _CONTAINER_EVENTS.labels(event="read").inc()
        self._cache[container_id] = data
        while len(self._cache) > self.cache_containers:
            self._cache.popitem(last=False)
        return data

    def read(self, location: ChunkLocation) -> bytes:
        """Fetch one chunk by location.

        Raises:
            KeyError: unknown container.
            ValueError: location out of the container's bounds.
        """
        data = self._load_container(location.container_id)
        end = location.offset + location.length
        if end > len(data):
            raise ValueError(f"chunk location out of bounds: {location}")
        return data[location.offset : end]

    # -- introspection ------------------------------------------------------------

    def container_count(self) -> int:
        """Sealed containers on disk (excludes the open one)."""
        return len(list(self.directory.glob("container-*.bin")))

    def physical_bytes(self) -> int:
        """Bytes stored across sealed containers plus the open buffer."""
        sealed = sum(
            p.stat().st_size for p in self.directory.glob("container-*.bin")
        )
        return sealed + len(self._open_buffer)
