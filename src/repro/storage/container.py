"""Container store: packs unique chunks into fixed-size container files.

The provider packs unique ciphertext chunks (KB each) into fixed-size
containers (8 MB in the paper, §4) so disk I/O happens in container units.
This is the standard backup-store layout [Zhu et al., FAST '08] and is what
produces the *chunk fragmentation* effect of Experiment B.5: later snapshots
reference chunks scattered across many old containers, so restores touch
more containers and slow down.

Chunks are addressed by ``ChunkLocation(container_id, offset, length)``
where ``offset`` indexes into the container's *data section*. Reads fetch
whole containers through a small LRU cache, mirroring how a real provider
amortizes disk seeks.

Crash consistency (DESIGN.md §12). Sealed containers are self-verifying
and atomically published:

* **On-disk format (v2)**::

      [magic: 8] [data section] [TOC] [trailer: 32]

  The TOC holds one entry per chunk — ``fp_len varint || fingerprint ||
  offset varint || length varint || crc32(chunk) u32`` — and the trailer
  is ``data_len u64 || toc_len u64 || toc_crc u32 || chunk_count u32 ||
  magic``. Every chunk is individually checksummed and the TOC itself is
  checksummed, so torn writes and bit rot are always detectable
  (``repro fsck`` / the background scrubber verify them).

* **Atomic seal**: temp file → fsync → rename → directory fsync via the
  :mod:`repro.storage.crash` shim. A crash at any barrier leaves either
  no visible container or a complete one — never a torn visible file.

* **Monotonic id allocation**: every successfully sealed (and every
  quarantined) container id is committed to a small write-ahead log
  (``idalloc.log``) before the store acknowledges it. Startup recovery
  takes ``next_id = max(ids on disk, ids in the log) + 1``, so a crash —
  even one that later loses or quarantines the highest-numbered
  container file — can never reuse a committed id and silently overwrite
  ciphertext that old index entries might still reference.

* **Startup recovery**: stray ``*.tmp`` files from interrupted seals are
  removed, and any visible container that fails structural validation
  (bad magic/trailer/TOC checksum) is moved to ``quarantine/`` rather
  than served.
"""

from __future__ import annotations

import struct
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.storage import crash
from repro.storage.wal import OP_PUT, WriteAheadLog
from repro.utils.varint import decode_uvarint, encode_uvarint

DEFAULT_CONTAINER_BYTES = 8 << 20

_MAGIC = b"TEDCNT2\n"
_TRAILER = struct.Struct("<QQII8s")

_REGISTRY = obs_metrics.get_registry()
_CONTAINER_EVENTS = _REGISTRY.counter(
    "ted_container_events_total",
    "Container store activity (sealed flushes, disk reads, cache hits)",
    labelnames=("event",),
)
_CONTAINER_SEAL_BYTES = _REGISTRY.counter(
    "ted_container_sealed_bytes_total", "Bytes flushed in sealed containers"
)
_RECOVERY_QUARANTINED = _REGISTRY.counter(
    "ted_recovery_containers_quarantined_total",
    "Containers moved to quarantine by startup recovery or fsck",
)
_RECOVERY_TMP_REMOVED = _REGISTRY.counter(
    "ted_recovery_torn_tmp_removed_total",
    "Torn temp files from interrupted seals removed at startup",
)


class ContainerIntegrityError(RuntimeError):
    """A sealed container failed structural or checksum validation."""


@dataclass(frozen=True)
class ChunkLocation:
    """Physical address of a chunk inside the container store."""

    container_id: int
    offset: int
    length: int

    def to_bytes(self) -> bytes:
        """Serialize as fixed 16 bytes (id, offset, length as u32/u64/u32)."""
        return (
            self.container_id.to_bytes(4, "big")
            + self.offset.to_bytes(8, "big")
            + self.length.to_bytes(4, "big")
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ChunkLocation":
        """Inverse of :meth:`to_bytes`."""
        if len(data) != 16:
            raise ValueError("chunk location must be 16 bytes")
        return cls(
            container_id=int.from_bytes(data[:4], "big"),
            offset=int.from_bytes(data[4:12], "big"),
            length=int.from_bytes(data[12:], "big"),
        )


@dataclass(frozen=True)
class TocEntry:
    """One chunk's TOC record inside a sealed container."""

    fingerprint: bytes
    offset: int
    length: int
    crc: int


def _encode_toc(entries: List[TocEntry]) -> bytes:
    out = bytearray()
    for entry in entries:
        out.extend(encode_uvarint(len(entry.fingerprint)))
        out.extend(entry.fingerprint)
        out.extend(encode_uvarint(entry.offset))
        out.extend(encode_uvarint(entry.length))
        out.extend(entry.crc.to_bytes(4, "little"))
    return bytes(out)


def _decode_toc(blob: bytes, count: int) -> List[TocEntry]:
    entries: List[TocEntry] = []
    pos = 0
    for _ in range(count):
        fp_len, pos = decode_uvarint(blob, pos)
        fingerprint = blob[pos : pos + fp_len]
        if len(fingerprint) != fp_len:
            raise ValueError("TOC fingerprint truncated")
        pos += fp_len
        offset, pos = decode_uvarint(blob, pos)
        length, pos = decode_uvarint(blob, pos)
        if pos + 4 > len(blob):
            raise ValueError("TOC entry truncated")
        crc = int.from_bytes(blob[pos : pos + 4], "little")
        pos += 4
        entries.append(TocEntry(fingerprint, offset, length, crc))
    if pos != len(blob):
        raise ValueError("trailing bytes after TOC")
    return entries


def encode_container(data: bytes, entries: List[TocEntry]) -> bytes:
    """Assemble a complete v2 container file image."""
    toc = _encode_toc(entries)
    trailer = _TRAILER.pack(
        len(data), len(toc), zlib.crc32(toc), len(entries), _MAGIC
    )
    return _MAGIC + data + toc + trailer


def parse_container(blob: bytes) -> Tuple[bytes, List[TocEntry]]:
    """Parse a container image into (data section, TOC entries).

    Validates magic, trailer geometry, and the TOC checksum — but not the
    per-chunk checksums (that is the scrubber's deep pass).

    Raises:
        ContainerIntegrityError: on any structural or checksum failure.
    """
    minimum = len(_MAGIC) + _TRAILER.size
    if len(blob) < minimum:
        raise ContainerIntegrityError("container shorter than header+trailer")
    if blob[: len(_MAGIC)] != _MAGIC:
        raise ContainerIntegrityError("bad container magic")
    data_len, toc_len, toc_crc, count, magic = _TRAILER.unpack(
        blob[-_TRAILER.size :]
    )
    if magic != _MAGIC:
        raise ContainerIntegrityError("bad container trailer magic")
    if len(_MAGIC) + data_len + toc_len + _TRAILER.size != len(blob):
        raise ContainerIntegrityError("container length mismatch")
    toc_start = len(_MAGIC) + data_len
    toc = blob[toc_start : toc_start + toc_len]
    if zlib.crc32(toc) != toc_crc:
        raise ContainerIntegrityError("container TOC checksum failure")
    try:
        entries = _decode_toc(toc, count)
    except (ValueError, IndexError) as exc:
        raise ContainerIntegrityError(f"malformed container TOC: {exc}")
    for entry in entries:
        if entry.offset + entry.length > data_len:
            raise ContainerIntegrityError("TOC entry exceeds data section")
    return blob[len(_MAGIC) : toc_start], entries


@dataclass
class ContainerRecoveryReport:
    """What startup recovery found and repaired."""

    tmp_files_removed: int = 0
    quarantined: List[int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.quarantined is None:
            self.quarantined = []


class ContainerStore:
    """Append-only chunk storage in fixed-size container files.

    Args:
        directory: where container files live.
        container_bytes: data capacity per container (the paper uses 8 MB;
            tests scale this down). Capacity covers chunk payload only —
            the TOC and trailer ride on top.
        cache_containers: number of containers kept in the read LRU cache.
    """

    def __init__(
        self,
        directory,
        container_bytes: int = DEFAULT_CONTAINER_BYTES,
        cache_containers: int = 8,
    ) -> None:
        if container_bytes <= 0:
            raise ValueError("container_bytes must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.container_bytes = container_bytes
        self.cache_containers = cache_containers
        self._idalloc = WriteAheadLog(
            self.directory / "idalloc.log", scope="container.idalloc"
        )
        self.recovery = self._recover()
        self._open_id = self._discover_next_id()
        self._open_buffer = bytearray()
        self._open_toc: List[TocEntry] = []
        self._cache: OrderedDict[int, bytes] = OrderedDict()
        self.stats: Dict[str, int] = {
            "containers_sealed": 0,
            "container_reads": 0,
            "cache_hits": 0,
            "containers_quarantined": len(self.recovery.quarantined),
        }

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> ContainerRecoveryReport:
        """Remove torn seals and quarantine structurally invalid containers."""
        report = ContainerRecoveryReport()
        report.tmp_files_removed = crash.remove_stray_tmp_files(
            self.directory
        )
        if report.tmp_files_removed:
            _RECOVERY_TMP_REMOVED.inc(report.tmp_files_removed)
        for path in sorted(self.directory.glob("container-*.bin")):
            try:
                parse_container(path.read_bytes())
            except ContainerIntegrityError:
                self._quarantine(path)
                report.quarantined.append(int(path.stem.split("-")[1]))
        return report

    def _quarantine(self, path: Path) -> None:
        """Move an invalid container aside, committing its id first.

        The id commit must precede the move: once the file is gone, only
        the idalloc log prevents the id from being reused (and stale
        index entries from silently resolving into fresh ciphertext).
        """
        container_id = int(path.stem.split("-")[1])
        self._commit_id(container_id)
        quarantine_dir = self.directory / "quarantine"
        quarantine_dir.mkdir(exist_ok=True)
        path.replace(quarantine_dir / path.name)
        crash.fsync_dir(quarantine_dir)
        crash.fsync_dir(self.directory)
        _RECOVERY_QUARANTINED.inc()
        _CONTAINER_EVENTS.labels(event="quarantined").inc()

    def quarantine_container(self, container_id: int) -> None:
        """Quarantine one sealed container (used by fsck ``--repair``).

        Raises:
            KeyError: unknown container.
        """
        path = self._container_path(container_id)
        if not path.exists():
            raise KeyError(f"container {container_id} does not exist")
        self._cache.pop(container_id, None)
        self._quarantine(path)
        self.stats["containers_quarantined"] += 1

    def _commit_id(self, container_id: int) -> None:
        """Durably record that ``container_id`` has been allocated."""
        self._idalloc.append(
            OP_PUT, b"id", container_id.to_bytes(8, "big")
        )
        self._idalloc.sync()

    def _idalloc_high_water(self) -> int:
        """Highest container id ever committed (-1 when none)."""
        high = -1
        for op, key, value in WriteAheadLog.replay(self._idalloc.path):
            if op == OP_PUT and key == b"id" and len(value) == 8:
                high = max(high, int.from_bytes(value, "big"))
        return high

    def _discover_next_id(self) -> int:
        existing = [
            int(p.stem.split("-")[1])
            for p in self.directory.glob("container-*.bin")
        ]
        return max(existing + [self._idalloc_high_water()]) + 1

    def _container_path(self, container_id: int) -> Path:
        return self.directory / f"container-{container_id}.bin"

    # -- writes ---------------------------------------------------------------

    def append(self, chunk: bytes, fingerprint: bytes = b"") -> ChunkLocation:
        """Append a chunk; seals the open container when it fills.

        A chunk never spans containers: if it does not fit in the remaining
        space, the open container is sealed first. The optional
        ``fingerprint`` is recorded in the container TOC so fsck can map
        physical chunks back to index entries (and heal from redundant
        copies).

        Raises:
            ValueError: if a single chunk exceeds the container capacity.
        """
        if not chunk:
            raise ValueError("cannot store an empty chunk")
        if len(chunk) > self.container_bytes:
            raise ValueError(
                f"chunk of {len(chunk)} bytes exceeds container capacity "
                f"{self.container_bytes}"
            )
        if len(self._open_buffer) + len(chunk) > self.container_bytes:
            self.seal()
        location = ChunkLocation(
            container_id=self._open_id,
            offset=len(self._open_buffer),
            length=len(chunk),
        )
        self._open_toc.append(
            TocEntry(
                fingerprint=fingerprint,
                offset=location.offset,
                length=location.length,
                crc=zlib.crc32(chunk),
            )
        )
        self._open_buffer.extend(chunk)
        return location

    def seal(self) -> Optional[int]:
        """Atomically flush the open container; returns its id (None if empty).

        Write-barrier sequence (each step a named crash point, §12):
        temp write → fsync → rename → directory fsync → id commit to the
        idalloc log. The container only becomes readable after the
        rename, by which point its bytes are durable; the id becomes
        unreusable once either the file is visible or the commit record
        is durable, whichever the crash leaves behind.
        """
        if not self._open_buffer:
            return None
        sealed_id = self._open_id
        sealed_bytes = len(self._open_buffer)
        image = encode_container(bytes(self._open_buffer), self._open_toc)
        crash.atomic_write_bytes(
            self._container_path(sealed_id), image, scope="container.seal"
        )
        crash.crash_point("container.seal.before_commit")
        self._commit_id(sealed_id)
        self._open_buffer = bytearray()
        self._open_toc = []
        self._open_id += 1
        self.stats["containers_sealed"] += 1
        _CONTAINER_EVENTS.labels(event="sealed").inc()
        _CONTAINER_SEAL_BYTES.inc(sealed_bytes)
        return sealed_id

    # -- reads ------------------------------------------------------------------

    @property
    def open_container_id(self) -> int:
        """Id of the still-open (unsealed) container.

        Reads of this id snapshot the open buffer and MUST NOT be cached
        by callers: later appends land in the same container, so a
        cached snapshot would serve stale bytes.
        """
        return self._open_id

    def load_container(self, container_id: int) -> bytes:
        """Fetch one whole container's data section (open buffer or file).

        Sealed containers go through the store's LRU read cache; the
        open container is snapshotted fresh on every call.

        Raises:
            KeyError: unknown container.
            ContainerIntegrityError: the container file is corrupt.
        """
        return self._load_container(container_id)

    def _load_container(self, container_id: int) -> bytes:
        if container_id == self._open_id:
            return bytes(self._open_buffer)
        cached = self._cache.get(container_id)
        if cached is not None:
            self._cache.move_to_end(container_id)
            self.stats["cache_hits"] += 1
            _CONTAINER_EVENTS.labels(event="cache_hit").inc()
            return cached
        data, _ = self._read_container_file(container_id)
        self.stats["container_reads"] += 1
        _CONTAINER_EVENTS.labels(event="read").inc()
        self._cache[container_id] = data
        while len(self._cache) > self.cache_containers:
            self._cache.popitem(last=False)
        return data

    def _read_container_file(
        self, container_id: int
    ) -> Tuple[bytes, List[TocEntry]]:
        path = self._container_path(container_id)
        if not path.exists():
            raise KeyError(f"container {container_id} does not exist")
        return parse_container(path.read_bytes())

    def read(self, location: ChunkLocation) -> bytes:
        """Fetch one chunk by location.

        Raises:
            KeyError: unknown container.
            ValueError: location out of the container's bounds.
            ContainerIntegrityError: the container file is corrupt.
        """
        data = self._load_container(location.container_id)
        end = location.offset + location.length
        if end > len(data):
            raise ValueError(f"chunk location out of bounds: {location}")
        return data[location.offset : end]

    def toc(self, container_id: int) -> List[TocEntry]:
        """TOC entries for one container (open or sealed).

        Raises:
            KeyError: unknown container.
            ContainerIntegrityError: the container file is corrupt.
        """
        if container_id == self._open_id:
            return list(self._open_toc)
        _, entries = self._read_container_file(container_id)
        return entries

    def verify_container(self, container_id: int) -> List[TocEntry]:
        """Deep-verify one sealed container; returns the bad TOC entries.

        Re-reads the file (bypassing the cache) and checks every chunk's
        checksum against its TOC record.

        Raises:
            KeyError: unknown container.
            ContainerIntegrityError: structural corruption (no per-chunk
                verdict is possible).
        """
        data, entries = self._read_container_file(container_id)
        return [
            entry
            for entry in entries
            if zlib.crc32(data[entry.offset : entry.offset + entry.length])
            != entry.crc
        ]

    # -- introspection ------------------------------------------------------------

    def container_ids(self) -> List[int]:
        """Ids of sealed containers on disk, ascending."""
        return sorted(
            int(p.stem.split("-")[1])
            for p in self.directory.glob("container-*.bin")
        )

    def container_count(self) -> int:
        """Sealed containers on disk (excludes the open one)."""
        return len(list(self.directory.glob("container-*.bin")))

    def container_data_bytes(self, container_id: int) -> int:
        """Chunk-payload bytes in one sealed container (trailer read only).

        Raises:
            KeyError: unknown container.
            ContainerIntegrityError: unreadable trailer.
        """
        path = self._container_path(container_id)
        if not path.exists():
            raise KeyError(f"container {container_id} does not exist")
        return self._data_len(path)

    @staticmethod
    def _data_len(path: Path) -> int:
        size = path.stat().st_size
        if size < len(_MAGIC) + _TRAILER.size:
            raise ContainerIntegrityError(
                "container shorter than header+trailer"
            )
        with open(path, "rb") as fh:
            fh.seek(size - _TRAILER.size)
            data_len, _, _, _, magic = _TRAILER.unpack(fh.read(_TRAILER.size))
        if magic != _MAGIC:
            raise ContainerIntegrityError("bad container trailer magic")
        return data_len

    def physical_bytes(self) -> int:
        """Chunk bytes across sealed containers plus the open buffer.

        Counts the data sections only — the paper's physical storage
        metric covers ciphertext, not our TOC/trailer bookkeeping.
        """
        sealed = sum(
            self._data_len(p)
            for p in self.directory.glob("container-*.bin")
        )
        return sealed + len(self._open_buffer)

    def close(self) -> None:
        """Release the id-allocation log handle."""
        self._idalloc.close()
