"""Ring-routed sharded deduplication engine.

The provider side of ROADMAP item 2: one fingerprint index and one
container pool cannot serve millions of users, so the store is split
into N independent :class:`~repro.storage.dedup.DedupEngine` shards
under ``shards/<k>/``, each with its own LSM index, container pool,
WAL-backed id allocation, and crash recovery — the per-shard on-disk
format is byte-for-byte the single-engine format, so every existing
tool (fsck, scrub, crash recovery) works per shard unchanged.

Routing is the consistent-hash ring's job (``tedstore/ring.py``): a
cipher fingerprint always hashes to the same shard, so dedup decisions
are exact — the shard that owns a fingerprint sees *every* store of
it, and no fingerprint can ever be stored by two shards under one ring
epoch (DESIGN.md §15's routing invariant). Cross-epoch aliasing —
a reshard moving a fingerprint's ownership while a client cache still
remembers the old epoch — is handled by the cache's epoch invalidation
(:meth:`~repro.storage.dedup.FingerprintCache.advance_epoch`), not
here.

The ring object is injected rather than imported so this module stays
free of ``repro.tedstore`` dependencies; anything with
``shard_for_key``/``shards``/``epoch`` duck-types.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs import metrics as obs_metrics
from repro.storage.dedup import (
    ChunkLocation,
    ConcurrentDedupEngine,
    DedupEngine,
    DedupStats,
)

SHARDS_DIRNAME = "shards"

_REGISTRY = obs_metrics.get_registry()
_ROUTED_BATCHES = _REGISTRY.counter(
    "ted_shard_routed_batches_total",
    "Sub-batches routed to a shard by the consistent-hash ring",
    labelnames=("side", "shard"),
)
_ROUTED_KEYS = _REGISTRY.counter(
    "ted_shard_routed_keys_total",
    "Keys (fingerprints / hash vectors) routed to a shard",
    labelnames=("side", "shard"),
)
_IMBALANCE = _REGISTRY.gauge(
    "ted_shard_imbalance",
    "Max/mean ratio of per-shard routed-key counts (1.0 = perfectly even)",
    labelnames=("side",),
)


class ShardRouteMeter:
    """Shared routed-batch accounting for both sides of the deployment.

    Tracks cumulative per-shard key counts and keeps the
    ``ted_shard_imbalance`` gauge current; one instance per router
    (KM front or provider engine), labelled by ``side``.
    """

    def __init__(self, side: str, shard_ids: Sequence[int]) -> None:
        self._side = side
        self._counts: Dict[int, int] = {int(s): 0 for s in shard_ids}

    def record(self, shard: int, keys: int) -> None:
        self._counts[shard] = self._counts.get(shard, 0) + keys
        _ROUTED_BATCHES.labels(side=self._side, shard=str(shard)).inc()
        _ROUTED_KEYS.labels(side=self._side, shard=str(shard)).inc(keys)
        counts = self._counts.values()
        total = sum(counts)
        if total:
            mean = total / len(self._counts)
            _IMBALANCE.labels(side=self._side).set(max(counts) / mean)

    @property
    def counts(self) -> Dict[int, int]:
        return dict(self._counts)


class ShardedDedupEngine:
    """N ring-routed dedup engines presenting the single-engine API.

    Args:
        directory: storage root; shard ``k`` lives at
            ``<directory>/shards/<k>``.
        ring: placement — anything with ``shard_for_key(bytes) -> int``,
            ``shards`` (ids), and ``epoch``.
        container_bytes: per-shard container size budget.
        concurrent: wrap each shard in
            :class:`~repro.storage.dedup.ConcurrentDedupEngine`
            (striped per-fingerprint locks). The stripes are *per
            engine*; cross-shard atomicity is never needed because the
            ring routes a fingerprint to exactly one shard.

    Example:
        >>> from repro.tedstore.ring import HashRing
        >>> engine = ShardedDedupEngine(tmp, HashRing.build(3))
        >>> engine.store(b"f" * 32, b"data")
        True
    """

    def __init__(
        self,
        directory,
        ring,
        container_bytes: int = 8 << 20,
        concurrent: bool = False,
        stripes: int = 64,
    ) -> None:
        self.directory = Path(directory)
        self.ring = ring
        self.container_bytes = container_bytes
        self._leaves: Dict[int, DedupEngine] = {}
        self._routes: Dict[int, object] = {}
        for shard in ring.shards:
            leaf = DedupEngine(
                self.directory / SHARDS_DIRNAME / str(shard),
                container_bytes=container_bytes,
            )
            self._leaves[shard] = leaf
            self._routes[shard] = (
                ConcurrentDedupEngine(leaf, stripes=stripes)
                if concurrent
                else leaf
            )
        self._meter = ShardRouteMeter("provider", ring.shards)

    # -- topology ----------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The ring epoch placements were computed under."""
        return self.ring.epoch

    @property
    def shard_engines(self) -> List[DedupEngine]:
        """The leaf engines, shard-id order (fsck/scrub iterate these)."""
        return [self._leaves[s] for s in self.ring.shards]

    def shard_of(self, fingerprint: bytes) -> int:
        return self.ring.shard_for_key(fingerprint)

    def _route(self, fingerprint: bytes):
        return self._routes[self.ring.shard_for_key(fingerprint)]

    # -- single-engine API -------------------------------------------------

    def store(self, fingerprint: bytes, chunk: bytes) -> bool:
        shard = self.ring.shard_for_key(fingerprint)
        self._meter.record(shard, 1)
        return self._routes[shard].store(fingerprint, chunk)

    def contains(self, fingerprint: bytes) -> bool:
        return self._route(fingerprint).contains(fingerprint)

    def load(self, fingerprint: bytes) -> bytes:
        return self._route(fingerprint).load(fingerprint)

    def locate(self, fingerprint: bytes) -> ChunkLocation:
        return self._route(fingerprint).locate(fingerprint)

    def load_many(
        self,
        fingerprints: Sequence[bytes],
        lookahead_window: Optional[int] = None,
    ) -> List[bytes]:
        """Batch reads, grouped per shard, results in request order.

        Per-shard sub-batches preserve the caller's relative order, so
        each shard's container look-ahead sees the same access pattern
        a single engine would for those fingerprints.
        """
        groups: Dict[int, List[int]] = {}
        for position, fingerprint in enumerate(fingerprints):
            shard = self.ring.shard_for_key(fingerprint)
            groups.setdefault(shard, []).append(position)
        results: List[bytes] = [b""] * len(fingerprints)
        for shard in sorted(groups):
            positions = groups[shard]
            self._meter.record(shard, len(positions))
            chunks = self._routes[shard].load_many(
                [fingerprints[p] for p in positions],
                lookahead_window=lookahead_window,
            )
            for position, chunk in zip(positions, chunks):
                results[position] = chunk
        return results

    def flush(self) -> None:
        for shard in self.ring.shards:
            self._routes[shard].flush()

    def close(self) -> None:
        for shard in self.ring.shards:
            self._routes[shard].close()

    def physical_bytes(self) -> int:
        return sum(
            self._routes[s].physical_bytes() for s in self.ring.shards
        )

    # -- accounting --------------------------------------------------------

    @property
    def stats(self) -> DedupStats:
        """Aggregate logical/physical accounting across shards."""
        total = DedupStats()
        for leaf in self._leaves.values():
            total.logical_chunks += leaf.stats.logical_chunks
            total.logical_bytes += leaf.stats.logical_bytes
            total.unique_chunks += leaf.stats.unique_chunks
            total.unique_bytes += leaf.stats.unique_bytes
        return total

    def container_count(self) -> int:
        return sum(
            leaf.containers.container_count()
            for leaf in self._leaves.values()
        )

    def routed_counts(self) -> Dict[int, int]:
        """Cumulative keys routed per shard (imbalance diagnostics)."""
        return self._meter.counts


def shard_directories(directory) -> List[Tuple[int, Path]]:
    """``(shard_id, path)`` pairs under ``<directory>/shards``, sorted."""
    root = Path(directory) / SHARDS_DIRNAME
    if not root.is_dir():
        return []
    found: List[Tuple[int, Path]] = []
    for entry in root.iterdir():
        if entry.is_dir() and entry.name.isdigit():
            found.append((int(entry.name), entry))
    return sorted(found)


__all__ = [
    "SHARDS_DIRNAME",
    "ShardRouteMeter",
    "ShardedDedupEngine",
    "shard_directories",
]
