"""Write-ahead log for the LSM key-value store.

Every mutation is appended here before touching the memtable, so a crash
between the append and the next memtable flush loses nothing. Records are
length-prefixed and CRC-protected; recovery replays the log and stops
cleanly at the first torn or corrupt record (the LevelDB convention).

Record layout::

    [crc32: 4 bytes] [payload_len: 4 bytes] [payload]

where payload is ``op(1) || key_len varint || key || value_len varint ||
value`` and ``op`` is PUT (0) or DELETE (1).

Replay is deliberately forgiving about the log's *tail*: a crash mid-append
can leave a truncated record, a zero-filled region (filesystems often
pre-allocate blocks), or CRC-valid-but-short garbage. All of those mean
"the write never committed" and replay stops there without raising —
recovery must never die on the artifact of the crash it is recovering from
(DESIGN.md §12).
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from pathlib import Path
from typing import Iterator, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.storage import crash
from repro.utils.varint import decode_uvarint, encode_uvarint

_HEADER = struct.Struct("<II")

_REGISTRY = obs_metrics.get_registry()
_WAL_APPENDS = _REGISTRY.counter(
    "ted_wal_appends_total", "Records appended to the write-ahead log"
)
_WAL_FSYNCS = _REGISTRY.counter(
    "ted_wal_fsyncs_total", "fsync barriers issued by the write-ahead log"
)
_WAL_FSYNC_SECONDS = _REGISTRY.histogram(
    "ted_wal_fsync_seconds", "Latency of write-ahead-log fsync barriers"
)

OP_PUT = 0
OP_DELETE = 1


class WriteAheadLog:
    """Append-only, CRC-checked mutation log.

    Args:
        path: log file location (parent directories are created).
        scope: crash-point namespace for this log instance — the torn
            append point is ``<scope>.append`` (DESIGN.md §12).
    """

    def __init__(self, path: Path, scope: str = "wal") -> None:
        self.path = Path(path)
        self.scope = scope
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")

    def append(self, op: int, key: bytes, value: bytes = b"") -> None:
        """Append one mutation and flush it to the OS."""
        if op not in (OP_PUT, OP_DELETE):
            raise ValueError(f"unknown WAL op: {op}")
        payload = (
            bytes([op])
            + encode_uvarint(len(key))
            + key
            + encode_uvarint(len(value))
            + value
        )
        record = _HEADER.pack(zlib.crc32(payload), len(payload)) + payload
        crash.crashy_write(self._file, record, f"{self.scope}.append")
        self._file.flush()
        _WAL_APPENDS.inc()

    def sync(self) -> None:
        """fsync the log (durability barrier)."""
        self._file.flush()
        start = time.perf_counter()
        os.fsync(self._file.fileno())
        _WAL_FSYNCS.inc()
        _WAL_FSYNC_SECONDS.observe(time.perf_counter() - start)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def truncate(self) -> None:
        """Discard all records (called after a successful memtable flush).

        The truncation is fsynced (file and directory) before returning:
        without the barrier, a crash after the memtable flush could leave
        the old log contents on disk, and replay would resurrect — and
        double-apply — mutations that the flush already persisted.
        """
        crash.crash_point(f"{self.scope}.before_truncate")
        self._file.close()
        start = time.perf_counter()
        self._file = open(self.path, "wb")
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        self._file = open(self.path, "ab")
        # Durability of the (possibly re-created) directory entry.
        crash.fsync_dir(self.path.parent)
        _WAL_FSYNCS.inc(2)
        _WAL_FSYNC_SECONDS.observe(time.perf_counter() - start)

    @staticmethod
    def replay(path: Path) -> Iterator[Tuple[int, bytes, bytes]]:
        """Yield ``(op, key, value)`` for every intact record in the log.

        Stops silently at the first truncated, corrupt, or malformed
        record, which is the correct crash-recovery behaviour: a torn
        tail means the write never completed, and everything before it
        is intact. This covers truncation at *every* byte offset, a
        zero-filled tail (a length-0 record CRC-checks against the empty
        payload, so it needs an explicit guard), and CRC-valid payloads
        that fail structural decoding.
        """
        path = Path(path)
        if not path.exists():
            return
        data = path.read_bytes()
        offset = 0
        while offset + _HEADER.size <= len(data):
            crc, length = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            end = start + length
            if length == 0 or end > len(data):
                return  # torn or zero-filled tail
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                return  # corrupt tail
            try:
                op = payload[0]
                if op not in (OP_PUT, OP_DELETE):
                    return
                key_len, pos = decode_uvarint(payload, 1)
                key = payload[pos : pos + key_len]
                if len(key) != key_len:
                    return
                pos += key_len
                value_len, pos = decode_uvarint(payload, pos)
                value = payload[pos : pos + value_len]
                if len(value) != value_len:
                    return
            except (ValueError, IndexError):
                return  # structurally malformed despite matching CRC
            yield op, key, value
            offset = end


def replay_into(
    path: Path, apply_put, apply_delete
) -> Optional[int]:
    """Replay a WAL into callbacks; returns the number of records applied."""
    count = 0
    for op, key, value in WriteAheadLog.replay(path):
        if op == OP_PUT:
            apply_put(key, value)
        else:
            apply_delete(key)
        count += 1
    return count
