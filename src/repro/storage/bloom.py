"""Bloom filter attached to each SSTable to skip needless disk reads.

LevelDB gained per-table Bloom filters for exactly the workload the
fingerprint index sees: point lookups of keys that usually miss in most
tables. ``k`` hash probes are derived from a single 128-bit MurmurHash3
digest via the Kirsch–Mitzenmacher double-hashing trick
(``g_i = h1 + i * h2``), so membership tests cost one hash computation.
"""

from __future__ import annotations

import math

from repro.crypto.murmur3 import murmur3_x64_128


class BloomFilter:
    """Fixed-size Bloom filter over byte-string keys.

    Args:
        num_bits: size of the bit array (rounded up to a byte multiple).
        num_hashes: number of probes ``k``.

    Example:
        >>> bf = BloomFilter.with_capacity(100)
        >>> bf.add(b"fingerprint")
        >>> bf.may_contain(b"fingerprint")
        True
    """

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        if num_bits <= 0 or num_hashes <= 0:
            raise ValueError("num_bits and num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)

    @classmethod
    def with_capacity(
        cls, expected_items: int, false_positive_rate: float = 0.01
    ) -> "BloomFilter":
        """Size the filter for a target false-positive rate."""
        if expected_items <= 0:
            expected_items = 1
        if not 0 < false_positive_rate < 1:
            raise ValueError("false_positive_rate must be in (0, 1)")
        num_bits = max(
            8,
            int(
                -expected_items
                * math.log(false_positive_rate)
                / (math.log(2) ** 2)
            ),
        )
        num_hashes = max(1, round(num_bits / expected_items * math.log(2)))
        return cls(num_bits=num_bits, num_hashes=num_hashes)

    def _probes(self, key: bytes):
        digest = murmur3_x64_128(key)
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, key: bytes) -> None:
        """Insert a key."""
        for bit in self._probes(key):
            self._bits[bit >> 3] |= 1 << (bit & 7)

    def may_contain(self, key: bytes) -> bool:
        """False means definitely absent; True means probably present."""
        return all(
            self._bits[bit >> 3] & (1 << (bit & 7)) for bit in self._probes(key)
        )

    def to_bytes(self) -> bytes:
        """Serialize as ``num_bits(4) || num_hashes(2) || bit array``."""
        return (
            self.num_bits.to_bytes(4, "big")
            + self.num_hashes.to_bytes(2, "big")
            + bytes(self._bits)
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        """Inverse of :meth:`to_bytes`."""
        if len(data) < 6:
            raise ValueError("truncated bloom filter")
        num_bits = int.from_bytes(data[:4], "big")
        num_hashes = int.from_bytes(data[4:6], "big")
        instance = cls(num_bits=num_bits, num_hashes=num_hashes)
        expected = (num_bits + 7) // 8
        bits = data[6 : 6 + expected]
        if len(bits) != expected:
            raise ValueError("truncated bloom filter bit array")
        instance._bits = bytearray(bits)
        return instance
