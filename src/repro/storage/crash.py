"""Crash-point injection and the durable-write shim.

Crash consistency cannot be tested by hoping: every write barrier in the
storage layer (container seal, SSTable publish, WAL append, key-manager
snapshot) is threaded through this module so tests can *kill the process
model* at any named point and then prove recovery restores the invariants
of DESIGN.md §12. Two pieces:

* :class:`CrashInjector` — a process-global registry of armed crash
  points. Production code calls :func:`crash_point` (or writes through
  the shim below); when a test has armed that name, an
  :class:`InjectedCrash` is raised there, simulating power loss at that
  barrier. Arming with ``torn_bytes`` additionally truncates the write
  in flight, simulating a torn sector/partial page flush.

* the **durable-write shim** — :func:`atomic_write_bytes` (temp file →
  write → fsync → rename → directory fsync) plus :func:`fsync_dir` and
  :func:`crashy_write`. Each barrier inside the shim fires a crash point
  named ``<scope>.<step>`` so the crash matrix can enumerate every
  intermediate on-disk state the real sequence can produce:

  ========================  =====================================
  point                     on-disk state if the crash fires here
  ========================  =====================================
  ``<scope>.write``         temp file absent or *torn* (partial)
  ``<scope>.before_fsync``  temp file complete but not durable
  ``<scope>.before_rename`` temp file durable, target absent
  ``<scope>.before_dirsync``target present, dir entry not durable
  ========================  =====================================

The injector is deliberately not thread-pinned: TEDStore services handle
requests on worker threads, and a crash is a whole-process event. Tests
that arm points therefore run the workload they want to kill on whatever
thread it naturally executes.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from contextlib import contextmanager

#: The shim's per-scope barrier steps, in execution order.
ATOMIC_WRITE_STEPS: Tuple[str, ...] = (
    "write",
    "before_fsync",
    "before_rename",
    "before_dirsync",
)


def atomic_write_points(scope: str) -> Tuple[str, ...]:
    """Every crash point :func:`atomic_write_bytes` fires for ``scope``."""
    return tuple(f"{scope}.{step}" for step in ATOMIC_WRITE_STEPS)


class InjectedCrash(RuntimeError):
    """Raised at an armed crash point; simulates process death there."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at point {point!r}")
        self.point = point


@dataclass
class _Armed:
    """One armed crash point: fire on the ``hits``-th traversal."""

    hits: int
    torn_bytes: Optional[int] = None


class CrashInjector:
    """Registry of armed crash points (thread-safe).

    Example:
        >>> injector = CrashInjector()
        >>> injector.arm("demo.point")
        >>> try:
        ...     injector.fire("demo.point")
        ... except InjectedCrash as crash:
        ...     crash.point
        'demo.point'
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._armed: Dict[str, _Armed] = {}
        self._record = False
        self._seen: List[str] = []

    # -- arming -----------------------------------------------------------

    def arm(
        self, point: str, *, hits: int = 1, torn_bytes: Optional[int] = None
    ) -> None:
        """Arm ``point`` to crash on its ``hits``-th traversal.

        ``torn_bytes`` (only meaningful for write-step points) truncates
        the in-flight write to that many bytes before crashing, so the
        durable artifact is a torn prefix rather than nothing.
        """
        if hits < 1:
            raise ValueError("hits must be >= 1")
        if torn_bytes is not None and torn_bytes < 0:
            raise ValueError("torn_bytes must be >= 0")
        with self._lock:
            self._armed[point] = _Armed(hits=hits, torn_bytes=torn_bytes)

    def disarm(self, point: str) -> None:
        """Remove one armed point (no-op if not armed)."""
        with self._lock:
            self._armed.pop(point, None)

    def reset(self) -> None:
        """Disarm everything and clear the traversal record."""
        with self._lock:
            self._armed.clear()
            self._record = False
            self._seen.clear()

    # -- recording (crash-point discovery for the test matrix) ------------

    def start_recording(self) -> None:
        """Record the name of every crash point traversed from now on."""
        with self._lock:
            self._record = True
            self._seen.clear()

    def recorded_points(self) -> List[str]:
        """Names traversed since :meth:`start_recording`, in order."""
        with self._lock:
            return list(self._seen)

    # -- firing -----------------------------------------------------------

    def _traverse(self, point: str) -> Optional[_Armed]:
        """Count one traversal; return the spec if the crash fires now."""
        with self._lock:
            if self._record:
                self._seen.append(point)
            spec = self._armed.get(point)
            if spec is None:
                return None
            spec.hits -= 1
            if spec.hits > 0:
                return None
            del self._armed[point]
            return spec

    def fire(self, point: str) -> None:
        """Traverse ``point``; raise :class:`InjectedCrash` if armed."""
        if self._traverse(point) is not None:
            raise InjectedCrash(point)

    def torn_write_bytes(self, point: str, full_length: int) -> Optional[int]:
        """Traverse a write-step point; bytes to write before crashing.

        Returns ``None`` when the write should proceed normally. When the
        point is armed, returns how many bytes of the payload to write
        before raising (``torn_bytes`` clamped to the payload, or half
        the payload when the point was armed without ``torn_bytes``).
        The caller writes that prefix, flushes it, then calls
        :meth:`crash_now`.
        """
        spec = self._traverse(point)
        if spec is None:
            return None
        if spec.torn_bytes is None:
            return full_length // 2
        return min(spec.torn_bytes, full_length)

    @staticmethod
    def crash_now(point: str) -> None:
        """Raise the crash for a point already consumed via torn-write."""
        raise InjectedCrash(point)

    @contextmanager
    def armed(
        self, point: str, *, hits: int = 1, torn_bytes: Optional[int] = None
    ) -> Iterator[None]:
        """Arm ``point`` for the duration of a ``with`` block."""
        self.arm(point, hits=hits, torn_bytes=torn_bytes)
        try:
            yield
        finally:
            self.disarm(point)


_injector = CrashInjector()


def get_injector() -> CrashInjector:
    """The process-global crash injector (inert unless a test arms it)."""
    return _injector


def crash_point(point: str) -> None:
    """Fire one named crash point on the global injector."""
    _injector.fire(point)


# -- durable-write shim -------------------------------------------------------


def fsync_dir(directory: Path) -> None:
    """fsync a directory so renames/creates inside it are durable."""
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def crashy_write(fh, data: bytes, point: str) -> None:
    """Write ``data`` to ``fh``, honouring a torn-write armed at ``point``.

    A torn write flushes the partial prefix (it reached the disk; the
    tail did not) and then crashes.
    """
    torn = _injector.torn_write_bytes(point, len(data))
    if torn is None:
        fh.write(data)
        return
    fh.write(data[:torn])
    fh.flush()
    _injector.crash_now(point)


def atomic_write_bytes(path: Path, data: bytes, *, scope: str) -> None:
    """Atomically publish ``data`` at ``path`` (write barriers included).

    Sequence: write ``path.tmp`` → flush+fsync → rename over ``path`` →
    fsync the parent directory. A crash at any intermediate step leaves
    either no visible file or the old file — never a torn visible file.
    Crash points are named ``<scope>.<step>`` (see module docstring).
    """
    path = Path(path)
    tmp = path.parent / (path.name + ".tmp")
    with open(tmp, "wb") as fh:
        crashy_write(fh, data, f"{scope}.write")
        fh.flush()
        crash_point(f"{scope}.before_fsync")
        os.fsync(fh.fileno())
    crash_point(f"{scope}.before_rename")
    os.replace(tmp, path)
    crash_point(f"{scope}.before_dirsync")
    fsync_dir(path.parent)


def remove_stray_tmp_files(directory: Path) -> int:
    """Delete leftover ``*.tmp`` files from interrupted atomic writes.

    Returns the number removed. Safe by construction: a ``.tmp`` file is
    never referenced by any durable metadata.
    """
    removed = 0
    for stray in Path(directory).glob("*.tmp"):
        stray.unlink(missing_ok=True)
        removed += 1
    if removed:
        fsync_dir(Path(directory))
    return removed
