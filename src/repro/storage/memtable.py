"""In-memory write buffer for the LSM key-value store.

Holds the most recent mutations (including delete tombstones) until the
store flushes it to an immutable SSTable. Python dicts give O(1) point
lookups; sorted order is only needed at flush time, so we sort once there
rather than maintaining a tree.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

#: Sentinel distinguishing "deleted" from "absent" inside the table.
TOMBSTONE = None


class MemTable:
    """Mutation buffer with tombstone support."""

    def __init__(self) -> None:
        self._entries: Dict[bytes, Optional[bytes]] = {}
        self._approximate_bytes = 0

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite a key."""
        self._account(key, self._entries.get(key, b""), value)
        self._entries[key] = value

    def delete(self, key: bytes) -> None:
        """Record a tombstone (must survive flush to mask older SSTables)."""
        self._account(key, self._entries.get(key, b""), b"")
        self._entries[key] = TOMBSTONE

    def get(self, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """Look up a key.

        Returns:
            ``(found, value)``: ``found`` is True when this memtable has an
            opinion on the key (including a tombstone, in which case value is
            None); False means "ask older data".
        """
        if key in self._entries:
            return True, self._entries[key]
        return False, None

    def _account(self, key: bytes, old, new) -> None:
        old_len = len(old) if old else 0
        if key not in self._entries:
            self._approximate_bytes += len(key)
        self._approximate_bytes += (len(new) if new else 0) - old_len

    def approximate_bytes(self) -> int:
        """Rough memory footprint, used for the flush threshold."""
        return self._approximate_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def is_empty(self) -> bool:
        return not self._entries

    def sorted_items(self) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """Yield (key, value-or-tombstone) pairs in ascending key order."""
        for key in sorted(self._entries):
            yield key, self._entries[key]

    def clear(self) -> None:
        self._entries.clear()
        self._approximate_bytes = 0
