"""Provider-side deduplication engine.

Combines the fingerprint index (LSM KV store mapping ciphertext fingerprint
→ physical :class:`ChunkLocation`) with the container store. Deduplication
happens here — at the provider, over *ciphertext* chunks — which is the
architectural choice the paper makes to close client-side dedup side
channels (§2.2).

Tracks the logical/physical statistics the evaluation reports (deduplication
ratio, storage saving, actual storage blowup inputs).
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.obs import metrics as obs_metrics
from repro.storage.bloom import BloomFilter
from repro.storage.container import ContainerStore, ChunkLocation
from repro.storage.kvstore import KVStore

_REGISTRY = obs_metrics.get_registry()
_DEDUP_LOGICAL_CHUNKS = _REGISTRY.counter(
    "ted_dedup_logical_chunks_total", "Chunks offered for storage"
)
_DEDUP_LOGICAL_BYTES = _REGISTRY.counter(
    "ted_dedup_logical_bytes_total", "Bytes offered for storage"
)
_DEDUP_UNIQUE_CHUNKS = _REGISTRY.counter(
    "ted_dedup_unique_chunks_total", "Chunks physically written (first copy)"
)
_DEDUP_UNIQUE_BYTES = _REGISTRY.counter(
    "ted_dedup_unique_bytes_total", "Bytes physically written (first copy)"
)
_DEDUP_DUPLICATE_CHUNKS = _REGISTRY.counter(
    "ted_dedup_duplicate_chunks_total", "Chunks removed by deduplication"
)
_DEDUP_RATIO = _REGISTRY.gauge(
    "ted_dedup_ratio", "Logical/physical byte ratio (process-wide)"
)
_RECOVERY_INDEX_DROPPED = _REGISTRY.counter(
    "ted_recovery_index_entries_dropped_total",
    "Fingerprint-index entries dropped because they referenced "
    "missing or out-of-bounds chunks",
)


class RingEpochRegressionError(ValueError):
    """A peer reported a ring epoch *older* than one already observed.

    Epochs only move forward (every membership change increments them),
    so a lower epoch means the answering shard is serving a stale ring
    config — e.g. restarted from an old snapshot or partitioned away
    during a reshard. The client must not trust it, and must *not*
    throw away its own cache: the cache reflects the newer placement,
    which is still the authoritative one.
    """

    def __init__(self, reported: int, current: int) -> None:
        super().__init__(
            f"ring epoch moved backwards: {reported} < {current}"
        )
        self.reported = reported
        self.current = current


def record_dedup_store(size: int, unique: bool) -> None:
    """Record one store decision on the process-wide dedup instruments.

    Shared by :class:`DedupEngine` and the provider's in-memory mode so
    ``ted_dedup_*`` reflects deduplication regardless of backend.
    """
    _DEDUP_LOGICAL_CHUNKS.inc()
    _DEDUP_LOGICAL_BYTES.inc(size)
    if unique:
        _DEDUP_UNIQUE_CHUNKS.inc()
        _DEDUP_UNIQUE_BYTES.inc(size)
    else:
        _DEDUP_DUPLICATE_CHUNKS.inc()
    physical = _DEDUP_UNIQUE_BYTES.value
    if physical:
        _DEDUP_RATIO.set(_DEDUP_LOGICAL_BYTES.value / physical)


_CACHE_EVENTS = _REGISTRY.counter(
    "ted_client_fp_cache_events_total",
    "Client fingerprint-cache events",
    labelnames=("event",),
)


class FingerprintCache:
    """Client-side duplicate short-circuit: bloom-gated LRU over uploads.

    Maps a *(plaintext fingerprint, key seed)* pair to the ciphertext
    fingerprint the pair produced when it was last uploaded and
    acknowledged by the provider. The mapping is exact — identical
    (fingerprint, seed) means identical derived key, hence identical
    deterministic ciphertext — so a hit proves the ciphertext chunk is
    already stored at the provider and the client can skip both the
    encryption and the PUT round trip (PM-Dedup-style local duplicate
    detection, PAPERS.md) without changing a single stored byte.

    Entries MUST only be inserted after the provider acknowledged the
    chunk's PUT (the cache-coherence rule of DESIGN.md §10): the cache
    asserts presence-at-provider, not presence-in-flight. The provider
    never deletes chunks during a client session (GC is offline), so a
    hit can never go stale mid-upload.

    A Bloom filter over every key ever inserted fronts the LRU: most
    lookups are misses (unique chunks), and the filter turns those into
    one hash + bit probes instead of a lock + dict lookup. The filter
    saturates as the LRU evicts — false positives then fall through to
    the authoritative LRU, never the other way around.

    Thread-safe: lookups and inserts may come from any pipeline stage.
    """

    def __init__(
        self, capacity: int = 1 << 16, bloom_fp_rate: float = 0.01
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._lru: "OrderedDict[bytes, bytes]" = OrderedDict()
        # Size the bloom for several LRU generations so it stays useful
        # after evictions begin without growing unbounded state.
        self._bloom_fp_rate = bloom_fp_rate
        self._bloom = BloomFilter.with_capacity(
            capacity * 4, false_positive_rate=bloom_fp_rate
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.epoch = 0
        self.epoch_invalidations = 0

    @staticmethod
    def key(fingerprint: bytes, seed: bytes) -> bytes:
        """The cache key for one (plaintext fingerprint, seed) pair."""
        return fingerprint + b"\x00" + seed

    def lookup(self, fingerprint: bytes, seed: bytes) -> Optional[bytes]:
        """Ciphertext fingerprint if this exact pair was uploaded before."""
        key = self.key(fingerprint, seed)
        if not self._bloom.may_contain(key):
            # Definite miss: never inserted. Skip the lock entirely.
            with self._lock:
                self.misses += 1
            _CACHE_EVENTS.labels(event="miss").inc()
            return None
        with self._lock:
            cipher_fp = self._lru.get(key)
            if cipher_fp is None:
                self.misses += 1
            else:
                self._lru.move_to_end(key)
                self.hits += 1
        _CACHE_EVENTS.labels(event="hit" if cipher_fp else "miss").inc()
        return cipher_fp

    def insert(
        self, fingerprint: bytes, seed: bytes, cipher_fp: bytes
    ) -> None:
        """Record a provider-acknowledged upload of this pair."""
        key = self.key(fingerprint, seed)
        evicted = 0
        with self._lock:
            self._lru[key] = cipher_fp
            self._lru.move_to_end(key)
            while len(self._lru) > self.capacity:
                self._lru.popitem(last=False)
                self.evictions += 1
                evicted += 1
        # Bloom insertion outside the LRU lock: BloomFilter.add only sets
        # bits, so a racing lookup can at worst see a fresh key as a
        # definite miss — the safe direction.
        self._bloom.add(key)
        _CACHE_EVENTS.labels(event="insert").inc()
        if evicted:
            _CACHE_EVENTS.labels(event="evict").inc(evicted)

    def advance_epoch(self, epoch: int) -> int:
        """Invalidate everything when the provider's ring epoch moves.

        A cache hit asserts "this ciphertext fingerprint is stored at
        the provider *under the current placement*". A reshard changes
        placement: a fingerprint's owning shard may move, and the copy
        the cache remembers may be mid-migration or GC'd from its old
        shard. Entries cached under an older epoch therefore cannot be
        trusted to short-circuit an upload — dropping them costs a
        re-encrypt + PUT (which the provider dedups server-side), while
        keeping them could skip a PUT the new owner never saw. The
        bloom filter is rebuilt too, since it fronts the LRU.

        Returns the number of entries invalidated; same-epoch calls are
        no-ops so the pipeline can consult this on every upload.

        Raises:
            RingEpochRegressionError: ``epoch`` is lower than the epoch
                already observed. The cache is left untouched — the
                stale peer is wrong, not the cache (DESIGN.md §17).
        """
        with self._lock:
            if epoch == self.epoch:
                return 0
            if epoch < self.epoch:
                raise RingEpochRegressionError(epoch, self.epoch)
            invalidated = len(self._lru)
            self.epoch = epoch
            self.epoch_invalidations += invalidated
            self._lru.clear()
            self._bloom = BloomFilter.with_capacity(
                self.capacity * 4,
                false_positive_rate=self._bloom_fp_rate,
            )
        if invalidated:
            _CACHE_EVENTS.labels(event="epoch_invalidate").inc(invalidated)
        return invalidated

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus current size."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._lru),
                "epoch": self.epoch,
                "epoch_invalidations": self.epoch_invalidations,
            }


@dataclass
class DedupStats:
    """Running logical-vs-physical accounting."""

    logical_chunks: int = 0
    logical_bytes: int = 0
    unique_chunks: int = 0
    unique_bytes: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Logical/physical byte ratio (1.0 when nothing deduplicates)."""
        if self.unique_bytes == 0:
            return 1.0
        return self.logical_bytes / self.unique_bytes

    @property
    def storage_saving(self) -> float:
        """Fraction of logical bytes removed by deduplication."""
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - self.unique_bytes / self.logical_bytes


class DedupEngine:
    """Content-addressed chunk store with inline deduplication.

    Args:
        directory: root directory (index and containers live underneath).
        container_bytes: container capacity (see :class:`ContainerStore`).
        index: optionally inject a pre-configured KV store (ablations swap
            in a plain dict-backed index here).
    """

    def __init__(
        self,
        directory,
        container_bytes: int = 8 << 20,
        index: Optional[KVStore] = None,
        kvstore_options: Optional[Dict] = None,
        startup_reconcile: bool = True,
    ) -> None:
        directory = Path(directory)
        self.containers = ContainerStore(
            directory / "containers", container_bytes=container_bytes
        )
        self.index = index or KVStore(
            directory / "index", **(kvstore_options or {})
        )
        # Index <-> container reconciliation (DESIGN.md §12): after a
        # crash the replayed index may reference chunks that never became
        # durable (the open container died with the process) or that
        # recovery quarantined. Those entries are dropped — and counted —
        # so every surviving index entry resolves to real bytes.
        self.recovered_index_drops = (
            self._reconcile_index() if startup_reconcile else 0
        )
        self.stats = DedupStats()
        # Look-ahead restorers, keyed by window size. Persistent so the
        # container LRU stays warm across the recipe-ordered GetChunks
        # batches of one restore (and across restores of overlapping
        # snapshots) instead of starting cold on every call.
        self._restorers: Dict[int, "LookaheadRestorer"] = {}

    def _reconcile_index(self) -> int:
        """Drop index entries that no longer resolve to durable chunks."""
        sealed_data_len: Dict[int, int] = {}
        for container_id in self.containers.container_ids():
            sealed_data_len[container_id] = (
                self.containers.container_data_bytes(container_id)
            )
        dropped = 0
        for fingerprint, raw in list(self.index.items()):
            try:
                location = ChunkLocation.from_bytes(raw)
            except ValueError:
                location = None
            if (
                location is None
                or location.container_id not in sealed_data_len
                or location.offset + location.length
                > sealed_data_len[location.container_id]
            ):
                self.index.delete(fingerprint)
                dropped += 1
        if dropped:
            _RECOVERY_INDEX_DROPPED.inc(dropped)
        return dropped

    def store(self, fingerprint: bytes, chunk: bytes) -> bool:
        """Store one (ciphertext) chunk; returns True if it was new.

        Duplicate fingerprints cost one index lookup and no container I/O —
        the deduplication fast path.
        """
        self.stats.logical_chunks += 1
        self.stats.logical_bytes += len(chunk)
        if self.index.get(fingerprint) is not None:
            record_dedup_store(len(chunk), unique=False)
            return False
        location = self.containers.append(chunk, fingerprint)
        self.index.put(fingerprint, location.to_bytes())
        self.stats.unique_chunks += 1
        self.stats.unique_bytes += len(chunk)
        record_dedup_store(len(chunk), unique=True)
        return True

    def contains(self, fingerprint: bytes) -> bool:
        """Whether a chunk with this fingerprint is stored."""
        return self.index.get(fingerprint) is not None

    def load(self, fingerprint: bytes) -> bytes:
        """Fetch a chunk by fingerprint.

        Raises:
            KeyError: unknown fingerprint.
        """
        raw = self.index.get(fingerprint)
        if raw is None:
            raise KeyError(f"unknown fingerprint: {fingerprint.hex()}")
        return self.containers.read(ChunkLocation.from_bytes(raw))

    def locate(self, fingerprint: bytes) -> ChunkLocation:
        """Resolve a fingerprint to its physical location.

        Raises:
            KeyError: unknown fingerprint.
        """
        raw = self.index.get(fingerprint)
        if raw is None:
            raise KeyError(f"unknown fingerprint: {fingerprint.hex()}")
        return ChunkLocation.from_bytes(raw)

    def load_many(
        self, fingerprints, lookahead_window: Optional[int] = None
    ):
        """Fetch a batch of chunks, optionally with look-ahead scheduling.

        With ``lookahead_window`` set, container reads are batched through
        :class:`repro.storage.restore.LookaheadRestorer`, so a fragmented
        restore touches each container roughly once per window instead of
        once per cache miss (the B.5 restore-optimization ablation).

        Raises:
            KeyError: any unknown fingerprint.
        """
        locations = [self.locate(fp) for fp in fingerprints]
        if locations:
            from repro.storage.restore import (
                FragmentationAnalyzer,
                _RESTORE_FRAGMENTATION,
            )

            report = FragmentationAnalyzer.analyze(locations)
            _RESTORE_FRAGMENTATION.set(report.fragmentation_factor)
        if lookahead_window is None:
            return [self.containers.read(loc) for loc in locations]
        restorer = self._restorers.get(lookahead_window)
        if restorer is None:
            from repro.storage.restore import LookaheadRestorer

            restorer = LookaheadRestorer(
                self.containers, window_chunks=lookahead_window
            )
            self._restorers[lookahead_window] = restorer
        return restorer.restore_all(locations)

    def flush(self) -> None:
        """Seal the open container and flush the index."""
        self.containers.seal()
        self.index.flush()

    def close(self) -> None:
        """Flush and release resources."""
        self.flush()
        self.index.close()
        self.containers.close()

    def physical_bytes(self) -> int:
        """Bytes in the container store (the paper's physical storage size)."""
        return self.containers.physical_bytes()


class ConcurrentDedupEngine:
    """Thread-safe facade over :class:`DedupEngine` for concurrent tenants.

    :class:`DedupEngine` itself is single-threaded (the KV store swaps
    memtables on flush, the container store mutates one open container).
    The multi-tenant provider (DESIGN.md §13) shares one engine across
    many connection threads when cross-user deduplication is enabled, so
    this facade adds locking with enough granularity that concurrent
    tenants make real progress instead of queueing on one global lock:

    * **striped per-fingerprint locks** make the check-then-append of one
      fingerprint atomic (two tenants racing to store the same chunk must
      not both append it) without serializing distinct fingerprints;
    * an **index lock** covers every KV-store read/write — a lookup racing
      a memtable flush would observe a half-swapped table list;
    * a **container lock** covers appends and reads — the open container
      is a single mutable file.

    The stripes are **per engine**: they provide no atomicity across two
    engines, so they only suffice when a fingerprint can never be offered
    to two engines concurrently. Under sharding (DESIGN.md §15) that is
    the ring's routing invariant — one fingerprint, one owning shard per
    epoch — and migrations only change placement through ``repro
    reshard``, which runs against a quiesced store and bumps the ring
    epoch so client caches drop pre-migration placement knowledge
    (:meth:`FingerprintCache.advance_epoch`).

    The duplicate fast path — the common case in dedup-heavy workloads —
    takes only a stripe plus the short index lock, so one tenant's
    duplicate detection proceeds while another tenant streams container
    appends under the container lock.

    Lock order is strictly ``stripe → (index | container | stats)``;
    the inner locks are never nested in each other, so the hierarchy is
    deadlock-free.
    """

    def __init__(self, engine: DedupEngine, stripes: int = 64) -> None:
        if stripes < 1:
            raise ValueError("stripes must be at least 1")
        self._engine = engine
        self._stripes = tuple(threading.Lock() for _ in range(stripes))
        self._index_lock = threading.Lock()
        self._container_lock = threading.Lock()
        self._stats_lock = threading.Lock()

    @property
    def inner(self) -> DedupEngine:
        """The wrapped engine (scrub/fsck tooling reads through this)."""
        return self._engine

    @property
    def stats(self) -> DedupStats:
        return self._engine.stats

    @property
    def containers(self):
        return self._engine.containers

    @property
    def index(self):
        return self._engine.index

    def _stripe(self, fingerprint: bytes) -> threading.Lock:
        return self._stripes[zlib.crc32(fingerprint) % len(self._stripes)]

    def store(self, fingerprint: bytes, chunk: bytes) -> bool:
        """Store one chunk; returns True if it was new (thread-safe)."""
        with self._stripe(fingerprint):
            with self._index_lock:
                known = self._engine.index.get(fingerprint) is not None
            if known:
                with self._stats_lock:
                    self._engine.stats.logical_chunks += 1
                    self._engine.stats.logical_bytes += len(chunk)
                record_dedup_store(len(chunk), unique=False)
                return False
            with self._container_lock:
                location = self._engine.containers.append(chunk, fingerprint)
            with self._index_lock:
                self._engine.index.put(fingerprint, location.to_bytes())
            with self._stats_lock:
                self._engine.stats.logical_chunks += 1
                self._engine.stats.logical_bytes += len(chunk)
                self._engine.stats.unique_chunks += 1
                self._engine.stats.unique_bytes += len(chunk)
            record_dedup_store(len(chunk), unique=True)
            return True

    def contains(self, fingerprint: bytes) -> bool:
        with self._index_lock:
            return self._engine.index.get(fingerprint) is not None

    def load(self, fingerprint: bytes) -> bytes:
        with self._index_lock:
            raw = self._engine.index.get(fingerprint)
        if raw is None:
            raise KeyError(f"unknown fingerprint: {fingerprint.hex()}")
        with self._container_lock:
            return self._engine.containers.read(
                ChunkLocation.from_bytes(raw)
            )

    def locate(self, fingerprint: bytes) -> ChunkLocation:
        with self._index_lock:
            raw = self._engine.index.get(fingerprint)
        if raw is None:
            raise KeyError(f"unknown fingerprint: {fingerprint.hex()}")
        return ChunkLocation.from_bytes(raw)

    def load_many(self, fingerprints, lookahead_window=None):
        # Batch reads hold both component locks: the look-ahead restorer
        # mutates a shared container LRU, and reads of the open container
        # race appends. Restores therefore serialize against stores, but
        # not against the index-only duplicate fast path above.
        with self._index_lock, self._container_lock:
            return self._engine.load_many(
                fingerprints, lookahead_window=lookahead_window
            )

    def flush(self) -> None:
        with self._index_lock, self._container_lock:
            self._engine.flush()

    def close(self) -> None:
        with self._index_lock, self._container_lock:
            self._engine.close()

    def physical_bytes(self) -> int:
        with self._container_lock:
            return self._engine.physical_bytes()
