"""File recipes and key recipes (paper §2.2).

For every uploaded file the client produces:

* a **file recipe** — the ordered list of (chunk fingerprint, chunk size)
  needed to reassemble the file; and
* a **key recipe** — the ordered list of per-chunk encryption keys.

Both are encrypted under the client's *master key* before upload, because
the key recipe is literally the keys and the file recipe reveals the chunk
identities. Recipe encryption is randomized (fresh nonce per recipe, stored
alongside) — recipes are per-file metadata and are never deduplicated, so
determinism is not needed and would leak. An HMAC over the ciphertext makes
tampering detectable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.crypto import shactr
from repro.crypto.hashes import hmac_digest
from repro.utils.varint import decode_uvarint, encode_uvarint

_MAGIC_FILE = b"FR01"
_MAGIC_KEY = b"KR01"
_NONCE_BYTES = 16
_MAC_BYTES = 32


@dataclass
class FileRecipe:
    """Ordered chunk metadata for one file."""

    file_name: str
    entries: List[Tuple[bytes, int]] = field(default_factory=list)

    def add(self, fingerprint: bytes, size: int) -> None:
        """Append one chunk's (fingerprint, size)."""
        if size <= 0:
            raise ValueError("chunk size must be positive")
        self.entries.append((fingerprint, size))

    @property
    def file_size(self) -> int:
        """Total plaintext size implied by the recipe."""
        return sum(size for _, size in self.entries)

    def serialize(self) -> bytes:
        """Plaintext serialization (encrypt with :func:`seal` before upload)."""
        name = self.file_name.encode("utf-8")
        out = bytearray(_MAGIC_FILE)
        out.extend(encode_uvarint(len(name)))
        out.extend(name)
        out.extend(encode_uvarint(len(self.entries)))
        for fingerprint, size in self.entries:
            out.extend(encode_uvarint(len(fingerprint)))
            out.extend(fingerprint)
            out.extend(encode_uvarint(size))
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes) -> "FileRecipe":
        """Inverse of :meth:`serialize`."""
        if data[:4] != _MAGIC_FILE:
            raise ValueError("not a file recipe")
        name_len, pos = decode_uvarint(data, 4)
        name = data[pos : pos + name_len].decode("utf-8")
        pos += name_len
        count, pos = decode_uvarint(data, pos)
        recipe = cls(file_name=name)
        for _ in range(count):
            fp_len, pos = decode_uvarint(data, pos)
            fingerprint = data[pos : pos + fp_len]
            pos += fp_len
            size, pos = decode_uvarint(data, pos)
            recipe.entries.append((fingerprint, size))
        return recipe


@dataclass
class KeyRecipe:
    """Ordered per-chunk keys for one file."""

    keys: List[bytes] = field(default_factory=list)

    def add(self, key: bytes) -> None:
        """Append one chunk key."""
        if not key:
            raise ValueError("keys must be non-empty")
        self.keys.append(key)

    def serialize(self) -> bytes:
        """Plaintext serialization (encrypt with :func:`seal` before upload)."""
        out = bytearray(_MAGIC_KEY)
        out.extend(encode_uvarint(len(self.keys)))
        for key in self.keys:
            out.extend(encode_uvarint(len(key)))
            out.extend(key)
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes) -> "KeyRecipe":
        """Inverse of :meth:`serialize`."""
        if data[:4] != _MAGIC_KEY:
            raise ValueError("not a key recipe")
        count, pos = decode_uvarint(data, 4)
        recipe = cls()
        for _ in range(count):
            key_len, pos = decode_uvarint(data, pos)
            recipe.keys.append(data[pos : pos + key_len])
            pos += key_len
        return recipe


def seal(master_key: bytes, plaintext: bytes) -> bytes:
    """Encrypt-then-MAC a recipe under the client master key.

    Layout: ``nonce(16) || ciphertext || hmac(32)`` where the HMAC covers
    nonce and ciphertext.
    """
    nonce = os.urandom(_NONCE_BYTES)
    ciphertext = shactr.encrypt(master_key, nonce, plaintext)
    mac = hmac_digest(master_key, nonce + ciphertext)
    return nonce + ciphertext + mac


def unseal(master_key: bytes, sealed: bytes) -> bytes:
    """Verify and decrypt a sealed recipe.

    Raises:
        ValueError: wrong key or tampered data.
    """
    if len(sealed) < _NONCE_BYTES + _MAC_BYTES:
        raise ValueError("sealed recipe too short")
    nonce = sealed[:_NONCE_BYTES]
    ciphertext = sealed[_NONCE_BYTES:-_MAC_BYTES]
    mac = sealed[-_MAC_BYTES:]
    expected = hmac_digest(master_key, nonce + ciphertext)
    if not _constant_time_eq(mac, expected):
        raise ValueError("recipe authentication failed")
    return shactr.decrypt(master_key, nonce, ciphertext)


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    result = 0
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0
