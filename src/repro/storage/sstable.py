"""Immutable sorted string tables (SSTables) for the LSM key-value store.

An SSTable is written once by a memtable flush or a compaction and then only
read. On-disk layout::

    [magic: 8 bytes]
    [data block: records, sorted by key]
    [bloom filter block]
    [sparse index block]
    [footer: data_len(8) bloom_len(8) index_len(8) crc32(4) magic(8)]

Each record is ``key_len varint || key || flag(1) || value_len varint ||
value`` where ``flag`` 1 marks a tombstone. The sparse index stores every
``index_interval``-th key with its file offset, so a point lookup reads the
index into memory (cached), binary-searches it, and scans at most one
interval of the data block — the same structure LevelDB uses, minus
block compression.
"""

from __future__ import annotations

import struct
import zlib
from bisect import bisect_right
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.storage import crash
from repro.storage.bloom import BloomFilter
from repro.utils.varint import decode_uvarint, encode_uvarint

_MAGIC = b"REPROSST"
_FOOTER = struct.Struct("<QQQI8s")

FLAG_VALUE = 0
FLAG_TOMBSTONE = 1

#: A lookup result: (found, value). found=True with value=None is a tombstone.
LookupResult = Tuple[bool, Optional[bytes]]


def _encode_record(key: bytes, value: Optional[bytes]) -> bytes:
    if value is None:
        return encode_uvarint(len(key)) + key + bytes([FLAG_TOMBSTONE]) + encode_uvarint(0)
    return (
        encode_uvarint(len(key))
        + key
        + bytes([FLAG_VALUE])
        + encode_uvarint(len(value))
        + value
    )


def _decode_record(data: bytes, offset: int) -> Tuple[bytes, Optional[bytes], int]:
    key_len, pos = decode_uvarint(data, offset)
    key = data[pos : pos + key_len]
    pos += key_len
    flag = data[pos]
    pos += 1
    value_len, pos = decode_uvarint(data, pos)
    value = data[pos : pos + value_len]
    pos += value_len
    if flag == FLAG_TOMBSTONE:
        return key, None, pos
    return key, value, pos


def write_sstable(
    path: Path,
    items: Iterable[Tuple[bytes, Optional[bytes]]],
    index_interval: int = 16,
    bloom_fp_rate: float = 0.01,
) -> "SSTable":
    """Write sorted ``(key, value-or-None)`` pairs to a new SSTable file.

    Args:
        path: destination file (created/truncated).
        items: pairs in strictly ascending key order; ``None`` values are
            tombstones and are preserved (they mask older tables).
        index_interval: one sparse-index entry per this many records.
        bloom_fp_rate: target Bloom false-positive rate.

    Raises:
        ValueError: if keys are not strictly ascending.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    materialized = list(items)
    for (a, _), (b, _) in zip(materialized, materialized[1:]):
        if a >= b:
            raise ValueError("SSTable keys must be strictly ascending")

    bloom = BloomFilter.with_capacity(len(materialized), bloom_fp_rate)
    data = bytearray()
    index_entries: List[Tuple[bytes, int]] = []
    for i, (key, value) in enumerate(materialized):
        if i % index_interval == 0:
            index_entries.append((key, len(data)))
        bloom.add(key)
        data.extend(_encode_record(key, value))

    index_block = bytearray()
    for key, offset in index_entries:
        index_block.extend(encode_uvarint(len(key)))
        index_block.extend(key)
        index_block.extend(encode_uvarint(offset))

    bloom_block = bloom.to_bytes()
    body = bytes(data) + bloom_block + bytes(index_block)
    footer = _FOOTER.pack(
        len(data), len(bloom_block), len(index_block), zlib.crc32(body), _MAGIC
    )
    # Atomic publish (DESIGN.md §12): a crash mid-write must never leave
    # a torn .sst visible, or recovery would have to guess whether the
    # table's absence of keys is real.
    crash.atomic_write_bytes(
        path, _MAGIC + body + footer, scope="kvstore.sstable"
    )
    return SSTable(path)


class SSTable:
    """Reader for one on-disk SSTable."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        raw = self.path.read_bytes()
        if len(raw) < len(_MAGIC) + _FOOTER.size or raw[: len(_MAGIC)] != _MAGIC:
            raise ValueError(f"not an SSTable: {self.path}")
        data_len, bloom_len, index_len, crc, magic = _FOOTER.unpack(
            raw[-_FOOTER.size :]
        )
        if magic != _MAGIC:
            raise ValueError(f"bad SSTable footer magic: {self.path}")
        body = raw[len(_MAGIC) : -_FOOTER.size]
        if len(body) != data_len + bloom_len + index_len:
            raise ValueError(f"SSTable length mismatch: {self.path}")
        if zlib.crc32(body) != crc:
            raise ValueError(f"SSTable checksum failure: {self.path}")
        self._data = body[:data_len]
        self._bloom = BloomFilter.from_bytes(
            body[data_len : data_len + bloom_len]
        )
        self._index_keys: List[bytes] = []
        self._index_offsets: List[int] = []
        pos = 0
        index_block = body[data_len + bloom_len :]
        while pos < len(index_block):
            key_len, pos = decode_uvarint(index_block, pos)
            self._index_keys.append(index_block[pos : pos + key_len])
            pos += key_len
            offset, pos = decode_uvarint(index_block, pos)
            self._index_offsets.append(offset)

    def get(self, key: bytes) -> LookupResult:
        """Point lookup; ``(True, None)`` signals a tombstone."""
        if not self._index_keys or not self._bloom.may_contain(key):
            return False, None
        slot = bisect_right(self._index_keys, key) - 1
        if slot < 0:
            return False, None
        offset = self._index_offsets[slot]
        end = (
            self._index_offsets[slot + 1]
            if slot + 1 < len(self._index_offsets)
            else len(self._data)
        )
        while offset < end:
            record_key, value, offset = _decode_record(self._data, offset)
            if record_key == key:
                return True, value
            if record_key > key:
                return False, None
        return False, None

    def __iter__(self) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """Iterate all records (including tombstones) in key order."""
        offset = 0
        while offset < len(self._data):
            key, value, offset = _decode_record(self._data, offset)
            yield key, value

    def __len__(self) -> int:
        count = 0
        for _ in self:
            count += 1
        return count

    def file_bytes(self) -> int:
        """Size of the table file on disk."""
        return self.path.stat().st_size
