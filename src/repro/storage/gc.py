"""Reference counting and garbage collection for deduplicated storage.

Deduplication makes deletion hard: a chunk may back many files, so physical
space is only reclaimable when the *last* reference disappears, and even
then the chunk sits inside an immutable container among live chunks. This
module adds the standard backup-store solution on top of
:class:`~repro.storage.dedup.DedupEngine`:

* a persistent **reference-count index** (fingerprint → refcount), updated
  when files are added or deleted;
* **container utilization** tracking — live bytes per container; and
* **garbage collection** by container copy-forward: containers whose live
  ratio falls below a threshold are rewritten, live chunks migrating to
  fresh containers (updating the fingerprint index), dead containers
  deleted.

The paper's prototype has no deletion path at all; this is part of making
the reproduction adoptable rather than a paper experiment (DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.storage.container import ChunkLocation
from repro.storage.dedup import DedupEngine
from repro.storage.kvstore import KVStore


@dataclass
class GCReport:
    """Outcome of one garbage-collection pass."""

    containers_scanned: int
    containers_collected: int
    chunks_moved: int
    bytes_reclaimed: int


class RefcountedStore:
    """Deletion-capable wrapper around a dedup engine.

    Every stored chunk carries a reference count. ``put`` increments (and
    stores the chunk if new); ``release`` decrements; chunks at refcount
    zero become garbage that :meth:`collect` reclaims by rewriting
    under-utilized containers.

    Args:
        engine: the underlying dedup engine.
        refcount_dir: directory for the persistent refcount index.
        gc_threshold: collect containers whose live-byte ratio is below
            this (0.5 = rewrite when less than half the bytes are live).
    """

    def __init__(
        self,
        engine: DedupEngine,
        refcount_dir,
        gc_threshold: float = 0.5,
    ) -> None:
        if not 0.0 < gc_threshold <= 1.0:
            raise ValueError("gc_threshold must be in (0, 1]")
        self.engine = engine
        self.refcounts = KVStore(Path(refcount_dir))
        self.gc_threshold = gc_threshold

    # -- reference management ----------------------------------------------

    def _get_refcount(self, fingerprint: bytes) -> int:
        raw = self.refcounts.get(fingerprint)
        return int.from_bytes(raw, "big") if raw else 0

    def _set_refcount(self, fingerprint: bytes, value: int) -> None:
        if value <= 0:
            self.refcounts.delete(fingerprint)
        else:
            self.refcounts.put(fingerprint, value.to_bytes(8, "big"))

    def put(self, fingerprint: bytes, chunk: bytes) -> bool:
        """Store (or re-reference) a chunk; returns True if newly stored."""
        new = self.engine.store(fingerprint, chunk)
        self._set_refcount(fingerprint, self._get_refcount(fingerprint) + 1)
        return new

    def release(self, fingerprint: bytes) -> int:
        """Drop one reference; returns the remaining count.

        Raises:
            KeyError: if the chunk has no references.
        """
        current = self._get_refcount(fingerprint)
        if current <= 0:
            raise KeyError(
                f"no references to fingerprint {fingerprint.hex()}"
            )
        self._set_refcount(fingerprint, current - 1)
        return current - 1

    def release_file(self, fingerprints: Iterable[bytes]) -> int:
        """Release every chunk of a deleted file; returns garbage count."""
        garbage = 0
        for fingerprint in fingerprints:
            if self.release(fingerprint) == 0:
                garbage += 1
        return garbage

    def load(self, fingerprint: bytes) -> bytes:
        """Fetch a live chunk.

        Raises:
            KeyError: unknown or fully-released fingerprint.
        """
        if self._get_refcount(fingerprint) <= 0:
            raise KeyError(
                f"fingerprint {fingerprint.hex()} has no live references"
            )
        return self.engine.load(fingerprint)

    def refcount(self, fingerprint: bytes) -> int:
        """Current reference count (0 for unknown chunks)."""
        return self._get_refcount(fingerprint)

    # -- garbage collection -----------------------------------------------------

    def _live_map(self) -> Dict[int, List[Tuple[bytes, ChunkLocation]]]:
        """Group live chunks by their current container."""
        by_container: Dict[int, List[Tuple[bytes, ChunkLocation]]] = {}
        for fingerprint, raw in self.engine.index.items():
            if self._get_refcount(fingerprint) <= 0:
                continue
            location = ChunkLocation.from_bytes(raw)
            by_container.setdefault(location.container_id, []).append(
                (fingerprint, location)
            )
        return by_container

    def collect(self) -> GCReport:
        """Rewrite under-utilized sealed containers, dropping dead chunks.

        Live chunks from collected containers are appended to the open
        container (their index entries updated atomically per chunk before
        the old container is unlinked), so concurrent readers of *other*
        containers are unaffected.
        """
        self.engine.containers.seal()
        live_by_container = self._live_map()
        containers = self.engine.containers
        scanned = 0
        collected = 0
        moved = 0
        reclaimed = 0
        for path in sorted(containers.directory.glob("container-*.bin")):
            container_id = int(path.stem.split("-")[1])
            scanned += 1
            # Utilization is judged over chunk payload, not the TOC and
            # trailer the v2 format rides on top.
            total_bytes = containers.container_data_bytes(container_id)
            live = live_by_container.get(container_id, [])
            live_bytes = sum(loc.length for _, loc in live)
            if total_bytes == 0 or live_bytes / total_bytes >= self.gc_threshold:
                continue
            # Copy live chunks forward, then drop the container.
            for fingerprint, location in live:
                chunk = containers.read(location)
                new_location = containers.append(chunk, fingerprint)
                self.engine.index.put(fingerprint, new_location.to_bytes())
                moved += 1
            # Remove dead index entries pointing into this container.
            for fingerprint, raw in list(self.engine.index.items()):
                loc = ChunkLocation.from_bytes(raw)
                if (
                    loc.container_id == container_id
                    and self._get_refcount(fingerprint) <= 0
                ):
                    self.engine.index.delete(fingerprint)
            containers._cache.pop(container_id, None)
            path.unlink()
            collected += 1
            reclaimed += total_bytes - live_bytes
        containers.seal()
        return GCReport(
            containers_scanned=scanned,
            containers_collected=collected,
            chunks_moved=moved,
            bytes_reclaimed=reclaimed,
        )

    def close(self) -> None:
        """Flush both indexes."""
        self.refcounts.close()
        self.engine.close()
