"""Deduplicated-storage substrate: LSM index, containers, recipes, dedup."""

from repro.storage.bloom import BloomFilter
from repro.storage.gc import GCReport, RefcountedStore
from repro.storage.metadedup import (
    MetaDedupStore,
    pack_metadata_chunks,
    unpack_metadata_chunks,
)
from repro.storage.restore import (
    FragmentationAnalyzer,
    FragmentationReport,
    LookaheadRestorer,
)
from repro.storage.container import ChunkLocation, ContainerStore
from repro.storage.dedup import DedupEngine, DedupStats
from repro.storage.kvstore import KVStore
from repro.storage.memtable import MemTable
from repro.storage.recipe import FileRecipe, KeyRecipe, seal, unseal
from repro.storage.sstable import SSTable, write_sstable
from repro.storage.wal import WriteAheadLog

__all__ = [
    "BloomFilter",
    "GCReport",
    "RefcountedStore",
    "MetaDedupStore",
    "pack_metadata_chunks",
    "unpack_metadata_chunks",
    "FragmentationAnalyzer",
    "FragmentationReport",
    "LookaheadRestorer",
    "ChunkLocation",
    "ContainerStore",
    "DedupEngine",
    "DedupStats",
    "KVStore",
    "MemTable",
    "FileRecipe",
    "KeyRecipe",
    "seal",
    "unseal",
    "SSTable",
    "write_sstable",
    "WriteAheadLog",
]
