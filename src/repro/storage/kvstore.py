"""LSM-tree key-value store — the LevelDB stand-in for the fingerprint index.

TEDStore's provider keeps its fingerprint index in LevelDB (paper §4); the
B.5 experiment even attributes upload slowdown to LevelDB compaction cost as
the index grows. This store reproduces that architecture and therefore that
behaviour:

* writes go to a WAL, then a memtable;
* a full memtable flushes to an immutable L0 SSTable;
* reads check memtable → SSTables newest-first (Bloom filters skip most);
* when L0 accumulates ``compaction_trigger`` tables, they are merge-compacted
  into one, dropping shadowed versions and (at the bottom level) tombstones.

The store recovers from a crash by replaying the WAL over the tables found
on disk.
"""

from __future__ import annotations

import heapq
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.storage import crash
from repro.storage.memtable import MemTable
from repro.storage.sstable import SSTable, write_sstable
from repro.storage.wal import OP_DELETE, OP_PUT, WriteAheadLog

_REGISTRY = obs_metrics.get_registry()
_RECOVERY_TABLES_QUARANTINED = _REGISTRY.counter(
    "ted_recovery_sstables_quarantined_total",
    "Corrupt SSTables set aside by key-value-store startup recovery",
)


class KVStore:
    """Persistent byte-keyed, byte-valued store with LSM internals.

    Args:
        directory: storage directory (created if missing).
        memtable_bytes: flush threshold for the write buffer.
        compaction_trigger: number of L0 tables that triggers a compaction.
        sync_writes: fsync the WAL on every mutation (slow, durable).

    Example:
        >>> import tempfile
        >>> store = KVStore(tempfile.mkdtemp())
        >>> store.put(b"fp", b"location")
        >>> store.get(b"fp")
        b'location'
    """

    def __init__(
        self,
        directory,
        memtable_bytes: int = 1 << 20,
        compaction_trigger: int = 4,
        sync_writes: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.memtable_bytes = memtable_bytes
        self.compaction_trigger = compaction_trigger
        self.sync_writes = sync_writes
        self.stats: Dict[str, int] = {
            "flushes": 0,
            "compactions": 0,
            "table_misses": 0,
            "table_reads": 0,
        }
        self._memtable = MemTable()
        self._wal = WriteAheadLog(
            self.directory / "wal.log", scope="kvstore.wal"
        )
        self._tables: List[SSTable] = []  # newest first
        self._next_table_id = 0
        self._recover()

    # -- lifecycle --------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild from disk, tolerating the artifacts a crash leaves.

        Stray ``.tmp`` files (interrupted atomic table writes) are
        deleted; a corrupt SSTable is quarantined rather than fatal —
        with atomic publication it can only mean external damage, and
        recovery must not die on it. WAL replay stops at the first torn
        record by construction. Table-id allocation stays monotonic past
        quarantined ids.
        """
        crash.remove_stray_tmp_files(self.directory)
        paths = sorted(
            self.directory.glob("table-*.sst"),
            key=lambda p: int(p.stem.split("-")[1]),
            reverse=True,
        )
        if paths:
            self._next_table_id = (
                max(int(p.stem.split("-")[1]) for p in paths) + 1
            )
        self._tables = []
        for path in paths:
            try:
                self._tables.append(SSTable(path))
            except ValueError:
                quarantine = self.directory / "quarantine"
                quarantine.mkdir(exist_ok=True)
                path.replace(quarantine / path.name)
                crash.fsync_dir(quarantine)
                crash.fsync_dir(self.directory)
                _RECOVERY_TABLES_QUARANTINED.inc()
        for op, key, value in WriteAheadLog.replay(self._wal.path):
            if op == OP_PUT:
                self._memtable.put(key, value)
            else:
                self._memtable.delete(key)

    def close(self) -> None:
        """Flush the memtable and release the WAL file handle."""
        self.flush()
        self._wal.close()

    # -- mutations ---------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite a key."""
        self._wal.append(OP_PUT, key, value)
        if self.sync_writes:
            self._wal.sync()
        self._memtable.put(key, value)
        self._maybe_flush()

    def delete(self, key: bytes) -> None:
        """Delete a key (tombstoned until compaction)."""
        self._wal.append(OP_DELETE, key)
        if self.sync_writes:
            self._wal.sync()
        self._memtable.delete(key)
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if self._memtable.approximate_bytes() >= self.memtable_bytes:
            self.flush()

    def flush(self) -> None:
        """Write the memtable out as a new L0 SSTable.

        Ordering is the recovery invariant: the table is durably
        published *before* the WAL truncates. A crash between the two
        replays WAL records whose keys the new table already holds —
        put/delete replay is idempotent, so that is safe; the reverse
        order would lose them.
        """
        if self._memtable.is_empty():
            return
        crash.crash_point("kvstore.flush.before_table")
        path = self.directory / f"table-{self._next_table_id}.sst"
        self._next_table_id += 1
        table = write_sstable(path, self._memtable.sorted_items())
        self._tables.insert(0, table)
        self._memtable.clear()
        crash.crash_point("kvstore.flush.before_truncate")
        self._wal.truncate()
        self.stats["flushes"] += 1
        if len(self._tables) >= self.compaction_trigger:
            self.compact()

    # -- reads --------------------------------------------------------------

    def get(self, key: bytes, default: Optional[bytes] = None) -> Optional[bytes]:
        """Point lookup across memtable and tables (newest wins)."""
        found, value = self._memtable.get(key)
        if found:
            return value if value is not None else default
        for table in self._tables:
            self.stats["table_reads"] += 1
            found, value = table.get(key)
            if found:
                return value if value is not None else default
            self.stats["table_misses"] += 1
        return default

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Sorted scan over the live (non-deleted) contents."""
        sources: List[Iterator[Tuple[bytes, Optional[bytes]]]] = [
            iter(self._memtable.sorted_items())
        ]
        sources.extend(iter(t) for t in self._tables)
        # Merge by (key, source priority); priority 0 is newest. The helper
        # binds (priority, source) eagerly — a bare nested genexp would
        # late-bind the loop variables and mix up sources.
        def tagged(priority, source):
            for key, value in source:
                yield key, priority, value

        merged = heapq.merge(
            *(tagged(i, source) for i, source in enumerate(sources))
        )
        last_key: Optional[bytes] = None
        for key, _priority, value in merged:
            if key == last_key:
                continue
            last_key = key
            if value is not None:
                yield key, value

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    # -- compaction ----------------------------------------------------------

    def compact(self) -> None:
        """Merge all tables into one, dropping shadowed versions/tombstones."""
        if len(self._tables) <= 1:
            return
        merged: Dict[bytes, Optional[bytes]] = {}
        # Oldest first so newer tables overwrite.
        for table in reversed(self._tables):
            for key, value in table:
                merged[key] = value
        live = sorted(
            (k, v) for k, v in merged.items() if v is not None
        )
        old_paths = [t.path for t in self._tables]
        path = self.directory / f"table-{self._next_table_id}.sst"
        self._next_table_id += 1
        new_table = write_sstable(path, live)
        self._tables = [new_table]
        for old in old_paths:
            old.unlink(missing_ok=True)
        self.stats["compactions"] += 1

    # -- introspection --------------------------------------------------------

    def table_count(self) -> int:
        """Number of on-disk SSTables."""
        return len(self._tables)

    def disk_bytes(self) -> int:
        """Total bytes across SSTable files."""
        return sum(t.file_bytes() for t in self._tables)
