"""Scrub and fsck: verify every stored chunk, optionally self-heal.

Crash recovery (DESIGN.md §12) handles the damage a crash *predictably*
leaves — torn temp files, un-truncated WALs, index entries ahead of the
container store. This module handles the damage nothing predicts: bit rot,
a misdirected write, an operator truncating the wrong file. The container
v2 format makes every chunk individually checksummed, so verification is a
pure read-side pass:

* :func:`fsck` — one full check of a dedup engine's storage root. The
  structural pass validates each sealed container's framing (magic,
  trailer, TOC checksum); the deep pass re-reads every chunk and checks
  its CRC against the TOC; the index pass proves every fingerprint-index
  entry resolves into a valid container. With ``repair=True`` it also
  heals: structurally-corrupt containers are quarantined, bad chunks are
  re-pointed at a verified redundant copy when some other container
  holds the same fingerprint (dedup means the copy is byte-identical),
  and entries with no good copy are dropped so reads fail loudly with
  ``KeyError`` instead of silently returning garbage.

* :class:`BackgroundScrubber` — a daemon thread running periodic
  read-only fsck passes, surfacing damage through the ``ted_scrub_*``
  metrics long before a restore trips over it.

The CLI front-end is ``repro fsck`` (exit 0 clean / 1 damaged, ``--json``
for machine consumption) — see docs/RUNBOOK.md.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.storage.container import ChunkLocation, ContainerIntegrityError
from repro.storage.dedup import DedupEngine

_REGISTRY = obs_metrics.get_registry()
_SCRUB_PASSES = _REGISTRY.counter(
    "ted_scrub_passes_total", "Completed scrub/fsck passes"
)
_SCRUB_CHUNKS = _REGISTRY.counter(
    "ted_scrub_chunks_verified_total",
    "Chunk checksums verified by scrub/fsck",
)
_SCRUB_BAD_CHUNKS = _REGISTRY.counter(
    "ted_scrub_bad_chunks_total",
    "Chunks that failed checksum verification",
)
_SCRUB_STRUCTURAL = _REGISTRY.counter(
    "ted_scrub_structural_errors_total",
    "Containers that failed structural validation during scrub/fsck",
)
_SCRUB_HEALED = _REGISTRY.counter(
    "ted_scrub_chunks_healed_total",
    "Bad chunks healed by re-pointing at a verified redundant copy",
)
_SCRUB_DROPPED = _REGISTRY.counter(
    "ted_scrub_entries_dropped_total",
    "Index entries dropped by fsck --repair (no good copy existed)",
)
_SCRUB_SECONDS = _REGISTRY.histogram(
    "ted_scrub_pass_seconds",
    "Wall time of one scrub/fsck pass",
    buckets=obs_metrics.DURATION_BUCKETS_COARSE,
)


@dataclass
class BadChunk:
    """One chunk that failed verification."""

    container_id: int
    offset: int
    length: int
    fingerprint: str  # hex; "" when the writer recorded none
    referenced: bool = False
    healed: bool = False
    dropped: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "container_id": self.container_id,
            "offset": self.offset,
            "length": self.length,
            "fingerprint": self.fingerprint,
            "referenced": self.referenced,
            "healed": self.healed,
            "dropped": self.dropped,
        }


@dataclass
class FsckReport:
    """Outcome of one fsck pass."""

    containers_checked: int = 0
    chunks_verified: int = 0
    bad_chunks: List[BadChunk] = field(default_factory=list)
    structural_errors: List[int] = field(default_factory=list)
    index_entries_checked: int = 0
    dangling_index_entries: int = 0
    healed: int = 0
    dropped: int = 0
    repaired: bool = False
    seconds: float = 0.0

    @property
    def clean(self) -> bool:
        """True when nothing the store *serves* is damaged.

        A bad chunk that no live index entry references is reported but
        does not dirty the verdict: GC copy-forward and fsck's own
        ``--repair`` drops routinely leave dead chunks behind in sealed
        containers, and rot in garbage is unreachable by any read.
        """
        return (
            not self.structural_errors
            and self.dangling_index_entries == 0
            and not any(bad.referenced for bad in self.bad_chunks)
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary (the ``repro fsck --json`` payload)."""
        return {
            "clean": self.clean,
            "containers_checked": self.containers_checked,
            "chunks_verified": self.chunks_verified,
            "bad_chunks": [bad.as_dict() for bad in self.bad_chunks],
            "bad_chunk_count": len(self.bad_chunks),
            "structural_errors": self.structural_errors,
            "index_entries_checked": self.index_entries_checked,
            "dangling_index_entries": self.dangling_index_entries,
            "healed": self.healed,
            "dropped": self.dropped,
            "repaired": self.repaired,
            "seconds": self.seconds,
        }


def _find_redundant_copy(
    engine: DedupEngine,
    fingerprint: bytes,
    bad_container: int,
    structural_bad: List[int],
) -> Optional[ChunkLocation]:
    """Locate a *verified* copy of ``fingerprint`` in another container.

    Deduplication normally stores one copy per fingerprint, but GC
    copy-forward, crash replays, and pre-quarantine duplicates can leave
    extras; any copy whose CRC checks out is byte-identical by content
    addressing.
    """
    for container_id in engine.containers.container_ids():
        if container_id == bad_container or container_id in structural_bad:
            continue
        try:
            data = engine.containers.load_container(container_id)
            entries = engine.containers.toc(container_id)
        except (ContainerIntegrityError, KeyError):
            continue
        for entry in entries:
            if entry.fingerprint != fingerprint:
                continue
            chunk = data[entry.offset : entry.offset + entry.length]
            if zlib.crc32(chunk) == entry.crc:
                return ChunkLocation(
                    container_id=container_id,
                    offset=entry.offset,
                    length=entry.length,
                )
    return None


def fsck(
    engine: DedupEngine, *, repair: bool = False, deep: bool = True
) -> FsckReport:
    """Verify (and with ``repair``, heal) one dedup engine's storage.

    Args:
        engine: the engine to check; its open container buffer is not
            touched (seal/flush first for a complete check).
        repair: quarantine corrupt containers, re-point bad chunks at
            verified redundant copies, drop unhealable index entries.
        deep: verify every chunk's CRC (the expensive pass); ``False``
            checks container framing and index reachability only.

    Returns:
        The :class:`FsckReport`; ``report.clean`` is the verdict.
    """
    leaves = getattr(engine, "shard_engines", None)
    if leaves is not None:
        # Sharded engine: each leaf is a complete single-engine store
        # (own containers, index, WAL), so fsck runs per leaf and the
        # reports merge. Container ids may repeat across shards — the
        # lists keep every entry; ids are only unique per shard.
        start = time.perf_counter()
        merged = FsckReport(repaired=repair)
        for leaf in leaves:
            part = fsck(leaf, repair=repair, deep=deep)
            merged.containers_checked += part.containers_checked
            merged.chunks_verified += part.chunks_verified
            merged.bad_chunks.extend(part.bad_chunks)
            merged.structural_errors.extend(part.structural_errors)
            merged.index_entries_checked += part.index_entries_checked
            merged.dangling_index_entries += part.dangling_index_entries
            merged.healed += part.healed
            merged.dropped += part.dropped
        merged.seconds = time.perf_counter() - start
        return merged

    start = time.perf_counter()
    report = FsckReport(repaired=repair)
    containers = engine.containers
    bad_by_location: Dict[Tuple[int, int], BadChunk] = {}

    for container_id in containers.container_ids():
        report.containers_checked += 1
        try:
            entries = containers.toc(container_id)
        except ContainerIntegrityError:
            report.structural_errors.append(container_id)
            _SCRUB_STRUCTURAL.inc()
            continue
        if not deep:
            continue
        try:
            bad_entries = containers.verify_container(container_id)
        except ContainerIntegrityError:
            report.structural_errors.append(container_id)
            _SCRUB_STRUCTURAL.inc()
            continue
        report.chunks_verified += len(entries)
        _SCRUB_CHUNKS.inc(len(entries))
        for entry in bad_entries:
            bad = BadChunk(
                container_id=container_id,
                offset=entry.offset,
                length=entry.length,
                fingerprint=entry.fingerprint.hex(),
            )
            report.bad_chunks.append(bad)
            bad_by_location[(container_id, entry.offset)] = bad
            _SCRUB_BAD_CHUNKS.inc()

    if repair:
        for container_id in report.structural_errors:
            try:
                containers.quarantine_container(container_id)
            except KeyError:
                pass

    # Index pass: every entry must land inside an intact container — and
    # with ``repair``, entries over bad chunks are healed or dropped.
    structural = set(report.structural_errors)
    sealed = set(containers.container_ids())
    for fingerprint, raw in list(engine.index.items()):
        report.index_entries_checked += 1
        try:
            location = ChunkLocation.from_bytes(raw)
        except ValueError:
            location = None
        dangling = (
            location is None
            or location.container_id in structural
            or location.container_id not in sealed
        )
        bad = (
            bad_by_location.get((location.container_id, location.offset))
            if location is not None
            else None
        )
        if dangling:
            report.dangling_index_entries += 1
            if repair:
                replacement = _find_redundant_copy(
                    engine,
                    fingerprint,
                    location.container_id if location else -1,
                    report.structural_errors,
                )
                if replacement is not None:
                    engine.index.put(fingerprint, replacement.to_bytes())
                    report.healed += 1
                    _SCRUB_HEALED.inc()
                else:
                    engine.index.delete(fingerprint)
                    report.dropped += 1
                    _SCRUB_DROPPED.inc()
        elif bad is not None:
            bad.referenced = True
            if repair:
                replacement = _find_redundant_copy(
                    engine,
                    fingerprint,
                    location.container_id,
                    report.structural_errors,
                )
                if replacement is not None:
                    engine.index.put(fingerprint, replacement.to_bytes())
                    bad.healed = True
                    report.healed += 1
                    _SCRUB_HEALED.inc()
                else:
                    engine.index.delete(fingerprint)
                    bad.dropped = True
                    report.dropped += 1
                    _SCRUB_DROPPED.inc()
    if repair:
        engine.index.flush()

    report.seconds = time.perf_counter() - start
    _SCRUB_PASSES.inc()
    _SCRUB_SECONDS.observe(report.seconds)
    return report


def fsck_path(
    directory, *, repair: bool = False, deep: bool = True
) -> FsckReport:
    """Run :func:`fsck` over an on-disk storage root (``repro fsck``).

    Opens the root with a :class:`DedupEngine` — which runs normal
    startup recovery first (quarantine, WAL replay, index reconcile), so
    fsck on a crashed store reports the *post-recovery* state, the one
    the provider would actually serve. A root carrying ``ring.json``
    (a sharded store) is opened shard-aware so every shard is checked.
    """
    root = Path(directory)
    ring_path = root / "ring.json"
    if ring_path.is_file():
        # Local import: keeps storage/ importable without tedstore/.
        from repro.storage.sharded import ShardedDedupEngine
        from repro.tedstore.ring import load_ring

        engine = ShardedDedupEngine(root, load_ring(ring_path))
    else:
        engine = DedupEngine(root)
    try:
        return fsck(engine, repair=repair, deep=deep)
    finally:
        engine.close()


class BackgroundScrubber:
    """Periodic read-only fsck passes on a daemon thread.

    Args:
        engine: engine to scrub (shared with the serving path; all scrub
            reads go through the engine's ordinary read methods).
        interval_seconds: sleep between passes.
        deep: per-chunk CRC verification on each pass.

    Example:
        >>> import tempfile
        >>> engine = DedupEngine(tempfile.mkdtemp())
        >>> scrubber = BackgroundScrubber(engine, interval_seconds=3600)
        >>> scrubber.last_report is None
        True
    """

    def __init__(
        self,
        engine: DedupEngine,
        interval_seconds: float = 3600.0,
        deep: bool = True,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.engine = engine
        self.interval_seconds = interval_seconds
        self.deep = deep
        self.last_report: Optional[FsckReport] = None
        self.passes = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        """Start the scrub loop (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="ted-scrubber", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            self.last_report = fsck(
                self.engine, repair=False, deep=self.deep
            )
            self.passes += 1
            self._stop.wait(self.interval_seconds)

    def run_once(self) -> FsckReport:
        """One synchronous pass (tests and operator tooling)."""
        self.last_report = fsck(self.engine, repair=False, deep=self.deep)
        self.passes += 1
        return self.last_report

    def stop(self) -> None:
        """Stop the loop and join the thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
