"""Restore-path optimization: look-ahead container scheduling.

Experiment B.5 shows restores slowing down as snapshots age because of
*chunk fragmentation*: a later snapshot's chunks are scattered across
containers written during many earlier uploads, so a naive in-order restore
re-fetches the same containers repeatedly once they fall out of the small
LRU cache. The paper defers the fix to "rewriting and caching [46]"
(Lillibridge et al., FAST '13); this module implements the caching half:

* :class:`FragmentationAnalyzer` quantifies fragmentation for a recipe —
  containers touched, container switches along the stream, and the
  chunks-per-container-read ratio that predicts restore speed.
* :class:`LookaheadRestorer` restores a chunk sequence using a sliding
  look-ahead window: within the window, all chunks living in the same
  container are served from one container fetch, so each container is read
  ~once per window instead of once per cache eviction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence

from repro.storage.container import ChunkLocation, ContainerStore


@dataclass(frozen=True)
class FragmentationReport:
    """Fragmentation metrics for one restore sequence."""

    chunks: int
    containers_touched: int
    container_switches: int
    chunks_per_container: float

    @property
    def fragmentation_factor(self) -> float:
        """Container switches per chunk — 0 for perfectly sequential data,
        approaching 1 when every chunk lives in a different container than
        its predecessor (the paper's Figure 9 decline driver)."""
        if self.chunks <= 1:
            return 0.0
        return self.container_switches / (self.chunks - 1)


class FragmentationAnalyzer:
    """Compute fragmentation metrics from chunk locations."""

    @staticmethod
    def analyze(locations: Sequence[ChunkLocation]) -> FragmentationReport:
        """Analyze a restore sequence (recipe order)."""
        if not locations:
            return FragmentationReport(0, 0, 0, 0.0)
        containers = {loc.container_id for loc in locations}
        switches = sum(
            1
            for previous, current in zip(locations, locations[1:])
            if previous.container_id != current.container_id
        )
        return FragmentationReport(
            chunks=len(locations),
            containers_touched=len(containers),
            container_switches=switches,
            chunks_per_container=len(locations) / len(containers),
        )


class LookaheadRestorer:
    """Container-aware restore scheduler.

    Args:
        store: the container store to read from.
        window_chunks: look-ahead window size in chunks. Larger windows
            amortize container fetches better at the cost of memory
            (the fetched-container working set).
        cache_containers: containers kept across window boundaries.
    """

    def __init__(
        self,
        store: ContainerStore,
        window_chunks: int = 512,
        cache_containers: int = 4,
    ) -> None:
        if window_chunks <= 0:
            raise ValueError("window_chunks must be positive")
        if cache_containers < 0:
            raise ValueError("cache_containers cannot be negative")
        self.store = store
        self.window_chunks = window_chunks
        self.cache_containers = cache_containers
        self.stats = {"container_fetches": 0, "window_count": 0}

    def restore(
        self, locations: Sequence[ChunkLocation]
    ) -> Iterator[bytes]:
        """Yield chunk payloads in recipe order with batched container I/O."""
        cache: OrderedDict[int, bytes] = OrderedDict()
        for start in range(0, len(locations), self.window_chunks):
            window = locations[start : start + self.window_chunks]
            self.stats["window_count"] += 1
            # Fetch every container the window needs exactly once.
            needed: Dict[int, None] = OrderedDict()
            for location in window:
                needed.setdefault(location.container_id)
            for container_id in needed:
                if container_id not in cache:
                    cache[container_id] = self.store._load_container(
                        container_id
                    )
                    self.stats["container_fetches"] += 1
                else:
                    cache.move_to_end(container_id)
            for location in window:
                data = cache[location.container_id]
                end = location.offset + location.length
                if end > len(data):
                    raise ValueError(
                        f"chunk location out of bounds: {location}"
                    )
                yield data[location.offset : end]
            # Shrink the cache to the cross-window retention budget.
            while len(cache) > self.cache_containers:
                cache.popitem(last=False)

    def restore_all(self, locations: Sequence[ChunkLocation]) -> List[bytes]:
        """Materialized form of :meth:`restore`."""
        return list(self.restore(locations))
