"""Restore-path optimization: look-ahead container scheduling.

Experiment B.5 shows restores slowing down as snapshots age because of
*chunk fragmentation*: a later snapshot's chunks are scattered across
containers written during many earlier uploads, so a naive in-order restore
re-fetches the same containers repeatedly once they fall out of the small
LRU cache. The paper defers the fix to "rewriting and caching [46]"
(Lillibridge et al., FAST '13); this module implements the caching half:

* :class:`FragmentationAnalyzer` quantifies fragmentation for a recipe —
  containers touched, container switches along the stream, and the
  chunks-per-container-read ratio that predicts restore speed.
* :class:`LookaheadRestorer` restores a chunk sequence using a sliding
  look-ahead window: within the window, all chunks living in the same
  container are served from one container fetch, so each container is read
  ~once per window instead of once per cache eviction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence

from repro.obs import metrics as obs_metrics
from repro.storage.container import ChunkLocation, ContainerStore

_REGISTRY = obs_metrics.get_registry()
_RESTORE_CONTAINER_EVENTS = _REGISTRY.counter(
    "ted_restore_container_events_total",
    "Look-ahead restorer container accesses (fetches vs cache hits)",
    labelnames=("event",),
)
_RESTORE_WINDOWS = _REGISTRY.counter(
    "ted_restore_windows_total",
    "Look-ahead windows processed by the restorer",
)
_RESTORE_CHUNKS = _REGISTRY.counter(
    "ted_restore_chunks_total",
    "Chunks served through look-ahead restore scheduling",
)
_RESTORE_FRAGMENTATION = _REGISTRY.gauge(
    "ted_restore_fragmentation_factor",
    "Fragmentation factor of the most recent restore batch "
    "(container switches per chunk, 0 = sequential)",
)


@dataclass(frozen=True)
class FragmentationReport:
    """Fragmentation metrics for one restore sequence."""

    chunks: int
    containers_touched: int
    container_switches: int
    chunks_per_container: float

    @property
    def fragmentation_factor(self) -> float:
        """Container switches per chunk — 0 for perfectly sequential data,
        approaching 1 when every chunk lives in a different container than
        its predecessor (the paper's Figure 9 decline driver)."""
        if self.chunks <= 1:
            return 0.0
        return self.container_switches / (self.chunks - 1)


class FragmentationAnalyzer:
    """Compute fragmentation metrics from chunk locations."""

    @staticmethod
    def analyze(locations: Sequence[ChunkLocation]) -> FragmentationReport:
        """Analyze a restore sequence (recipe order)."""
        if not locations:
            return FragmentationReport(0, 0, 0, 0.0)
        containers = {loc.container_id for loc in locations}
        switches = sum(
            1
            for previous, current in zip(locations, locations[1:])
            if previous.container_id != current.container_id
        )
        return FragmentationReport(
            chunks=len(locations),
            containers_touched=len(containers),
            container_switches=switches,
            chunks_per_container=len(locations) / len(containers),
        )


class LookaheadRestorer:
    """Container-aware restore scheduler.

    The container LRU persists across :meth:`restore` calls, so a
    recipe-ordered stream of ``GetChunks`` batches (the pipelined
    download path issues one call per batch) keeps its working set warm
    between calls instead of refetching at every batch boundary. The
    still-open container is never cached: it is still being appended
    to, and a cached snapshot would serve stale bytes on the next call.

    Args:
        store: the container store to read from.
        window_chunks: look-ahead window size in chunks. Larger windows
            amortize container fetches better at the cost of memory
            (the fetched-container working set).
        cache_containers: containers kept across window boundaries.
    """

    def __init__(
        self,
        store: ContainerStore,
        window_chunks: int = 512,
        cache_containers: int = 4,
    ) -> None:
        if window_chunks <= 0:
            raise ValueError("window_chunks must be positive")
        if cache_containers < 0:
            raise ValueError("cache_containers cannot be negative")
        self.store = store
        self.window_chunks = window_chunks
        self.cache_containers = cache_containers
        self._cache: "OrderedDict[int, bytes]" = OrderedDict()
        self.stats = {
            "container_fetches": 0,
            "window_count": 0,
            "cache_hits": 0,
        }

    def restore(
        self, locations: Sequence[ChunkLocation]
    ) -> Iterator[bytes]:
        """Yield chunk payloads in recipe order with batched container I/O."""
        cache = self._cache
        for start in range(0, len(locations), self.window_chunks):
            window = locations[start : start + self.window_chunks]
            self.stats["window_count"] += 1
            _RESTORE_WINDOWS.inc()
            # Fetch every container the window needs exactly once. The
            # open container bypasses the cross-call cache (see class
            # docstring) but is still fetched only once per window.
            open_id = getattr(self.store, "open_container_id", None)
            window_data: Dict[int, bytes] = {}
            for location in window:
                container_id = location.container_id
                if container_id in window_data:
                    continue
                cached = cache.get(container_id)
                if cached is not None:
                    cache.move_to_end(container_id)
                    self.stats["cache_hits"] += 1
                    _RESTORE_CONTAINER_EVENTS.labels(
                        event="cache_hit"
                    ).inc()
                    window_data[container_id] = cached
                    continue
                data = self.store.load_container(container_id)
                self.stats["container_fetches"] += 1
                _RESTORE_CONTAINER_EVENTS.labels(event="fetch").inc()
                window_data[container_id] = data
                if open_id is None or container_id < open_id:
                    cache[container_id] = data
            for location in window:
                data = window_data[location.container_id]
                end = location.offset + location.length
                if end > len(data):
                    raise ValueError(
                        f"chunk location out of bounds: {location}"
                    )
                yield data[location.offset : end]
            _RESTORE_CHUNKS.inc(len(window))
            # Shrink the cache to the cross-window retention budget.
            while len(cache) > self.cache_containers:
                cache.popitem(last=False)

    def restore_all(self, locations: Sequence[ChunkLocation]) -> List[bytes]:
        """Materialized form of :meth:`restore`."""
        return list(self.restore(locations))
