"""Metadata deduplication via indirection (Metadedup, Li et al. MSST '19).

The TEDStore prototype "focuses on only the deduplication of data chunks,
but not metadata (e.g., file recipes)" (§4). For backup series this hurts:
every snapshot re-uploads a full file recipe + key recipe even though
consecutive snapshots share most of their chunk sequences. Metadedup — by
the same research group, cited as [43] — fixes this with indirection:

1. The (file recipe, key recipe) entry stream is split into fixed-arity
   **metadata chunks**.
2. Each metadata chunk is encrypted with a key derived from its own content
   (MLE on metadata), so identical recipe regions across snapshots encrypt
   identically and deduplicate like data chunks.
3. Per file, only a compact **meta recipe** — the metadata chunks'
   fingerprints and keys — is sealed under the client's master key.

Confidentiality note, as in Metadedup: the provider learns equality of
recipe *regions* (that is what enables the dedup); the content stays
encrypted, and the per-file meta recipe remains under the master key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.crypto import shactr
from repro.crypto.hashes import digest, hash_concat
from repro.storage.dedup import DedupEngine
from repro.storage.recipe import FileRecipe, KeyRecipe, seal, unseal
from repro.utils.varint import decode_uvarint, encode_uvarint

_META_MAGIC = b"MDR1"

#: One combined recipe entry: (ciphertext fingerprint, chunk size, key).
RecipeEntry = Tuple[bytes, int, bytes]


def _encode_entries(entries: List[RecipeEntry]) -> bytes:
    out = bytearray()
    out.extend(encode_uvarint(len(entries)))
    for fingerprint, size, key in entries:
        out.extend(encode_uvarint(len(fingerprint)))
        out.extend(fingerprint)
        out.extend(encode_uvarint(size))
        out.extend(encode_uvarint(len(key)))
        out.extend(key)
    return bytes(out)


def _decode_entries(data: bytes) -> List[RecipeEntry]:
    count, pos = decode_uvarint(data, 0)
    entries: List[RecipeEntry] = []
    for _ in range(count):
        fp_len, pos = decode_uvarint(data, pos)
        fingerprint = data[pos : pos + fp_len]
        pos += fp_len
        size, pos = decode_uvarint(data, pos)
        key_len, pos = decode_uvarint(data, pos)
        key = data[pos : pos + key_len]
        pos += key_len
        entries.append((fingerprint, size, key))
    return entries


def _segment_entries(
    entries: List[RecipeEntry], target_arity: int
) -> List[Tuple[int, int]]:
    """Content-defined segmentation of the recipe-entry stream.

    Fixed-arity splitting would misalign every metadata chunk after any
    insertion or deletion (the classic boundary-shift problem), destroying
    cross-snapshot metadata dedup. Instead, a metadata chunk ends at entries
    whose chunk fingerprint satisfies a divisor condition — so boundaries
    stick to content and unchanged recipe regions yield byte-identical
    metadata chunks in every snapshot (Metadedup's segment alignment).

    Returns ``(start, end)`` index pairs; average segment length is
    ``target_arity`` entries, with a minimum of 1 and a maximum of
    ``4 * target_arity``.
    """
    boundaries: List[Tuple[int, int]] = []
    start = 0
    for i, (fingerprint, _, _) in enumerate(entries):
        length = i + 1 - start
        value = int.from_bytes(fingerprint[-8:], "big")
        if (
            value % target_arity == target_arity - 1
            or length >= 4 * target_arity
        ):
            boundaries.append((start, i + 1))
            start = i + 1
    if start < len(entries):
        boundaries.append((start, len(entries)))
    return boundaries


def pack_metadata_chunks(
    file_recipe: FileRecipe,
    key_recipe: KeyRecipe,
    entries_per_chunk: int = 128,
) -> Tuple[List[Tuple[bytes, bytes]], bytes]:
    """Split recipes into encrypted, dedupable metadata chunks.

    Returns:
        ``(chunks, meta_plain)`` where ``chunks`` is a list of
        (fingerprint, ciphertext) pairs ready for the provider's normal
        chunk path, and ``meta_plain`` is the compact meta recipe (seal it
        under the master key before upload).

    Raises:
        ValueError: mismatched recipes or non-positive arity.
    """
    if entries_per_chunk <= 0:
        raise ValueError("entries_per_chunk must be positive")
    if len(file_recipe.entries) != len(key_recipe.keys):
        raise ValueError("file and key recipes disagree on chunk count")
    entries: List[RecipeEntry] = [
        (fingerprint, size, key)
        for (fingerprint, size), key in zip(
            file_recipe.entries, key_recipe.keys
        )
    ]
    chunks: List[Tuple[bytes, bytes]] = []
    pointers: List[Tuple[bytes, bytes]] = []
    for start, end in _segment_entries(entries, entries_per_chunk):
        plaintext = _encode_entries(entries[start:end])
        key = MetaDedupStore._metadata_key(plaintext)
        nonce = digest(b"metadedup-nonce" + key)[:16]
        ciphertext = shactr.encrypt(key, nonce, plaintext)
        fingerprint = digest(ciphertext)
        chunks.append((fingerprint, ciphertext))
        pointers.append((fingerprint, key))

    meta = bytearray(_META_MAGIC)
    meta.extend(encode_uvarint(len(pointers)))
    name = file_recipe.file_name.encode("utf-8")
    meta.extend(encode_uvarint(len(name)))
    meta.extend(name)
    for fingerprint, key in pointers:
        meta.extend(encode_uvarint(len(fingerprint)))
        meta.extend(fingerprint)
        meta.extend(encode_uvarint(len(key)))
        meta.extend(key)
    return chunks, bytes(meta)


def unpack_metadata_chunks(
    meta_plain: bytes, fetch
) -> Tuple[FileRecipe, KeyRecipe]:
    """Reassemble recipes from a meta recipe and a chunk-fetch callable.

    Args:
        meta_plain: the unsealed meta recipe from :func:`pack_metadata_chunks`.
        fetch: ``fetch(fingerprints) -> list[bytes]`` returning the
            metadata-chunk ciphertexts in order (the provider's normal
            chunk-download path).

    Raises:
        ValueError: corrupt meta recipe.
    """
    if meta_plain[:4] != _META_MAGIC:
        raise ValueError("not a meta recipe")
    count, pos = decode_uvarint(meta_plain, 4)
    name_len, pos = decode_uvarint(meta_plain, pos)
    original_name = meta_plain[pos : pos + name_len].decode("utf-8")
    pos += name_len
    pointers: List[Tuple[bytes, bytes]] = []
    for _ in range(count):
        fp_len, pos = decode_uvarint(meta_plain, pos)
        fingerprint = meta_plain[pos : pos + fp_len]
        pos += fp_len
        key_len, pos = decode_uvarint(meta_plain, pos)
        key = meta_plain[pos : pos + key_len]
        pos += key_len
        pointers.append((fingerprint, key))

    file_recipe = FileRecipe(file_name=original_name)
    key_recipe = KeyRecipe()
    ciphertexts = fetch([fp for fp, _ in pointers])
    for (fingerprint, key), ciphertext in zip(pointers, ciphertexts):
        nonce = digest(b"metadedup-nonce" + key)[:16]
        plaintext = shactr.decrypt(key, nonce, ciphertext)
        for chunk_fp, size, chunk_key in _decode_entries(plaintext):
            file_recipe.add(chunk_fp, size)
            key_recipe.add(chunk_key)
    return file_recipe, key_recipe


@dataclass
class MetadataStats:
    """Metadata-path accounting (the Metadedup evaluation's headline)."""

    logical_bytes: int = 0
    files: int = 0

    def saving(self, physical_bytes: int) -> float:
        """Fraction of metadata bytes removed by deduplication."""
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - physical_bytes / self.logical_bytes


class MetaDedupStore:
    """Deduplicated recipe storage on top of a dedup engine.

    Args:
        engine: the dedup engine metadata chunks are stored through. Use a
            dedicated engine (separate from data chunks) to keep the
            metadata saving measurable, or share the data engine — both
            are valid Metadedup deployments.
        entries_per_chunk: recipe entries per metadata chunk. Smaller
            chunks dedup better across partially-changed recipes; larger
            chunks reduce per-chunk overhead (Metadedup's segment-size
            knob).
    """

    def __init__(
        self, engine: DedupEngine, entries_per_chunk: int = 128
    ) -> None:
        if entries_per_chunk <= 0:
            raise ValueError("entries_per_chunk must be positive")
        self.engine = engine
        self.entries_per_chunk = entries_per_chunk
        self._meta_recipes = {}
        self.stats = MetadataStats()

    @staticmethod
    def _metadata_key(plaintext: bytes) -> bytes:
        """MLE on metadata chunks: the key is derived from the content."""
        return hash_concat([b"metadedup-key", plaintext])

    def store_recipes(
        self,
        file_name: str,
        file_recipe: FileRecipe,
        key_recipe: KeyRecipe,
        master_key: bytes,
    ) -> int:
        """Store a file's recipes with metadata deduplication.

        Returns:
            The number of metadata chunks the recipes were split into.

        Raises:
            ValueError: if the recipes disagree on the chunk count.
        """
        chunks, meta_plain = pack_metadata_chunks(
            file_recipe, key_recipe, self.entries_per_chunk
        )
        for fingerprint, ciphertext in chunks:
            self.engine.store(fingerprint, ciphertext)
            self.stats.logical_bytes += len(ciphertext)
        self._meta_recipes[file_name] = seal(master_key, meta_plain)
        self.stats.files += 1
        return len(chunks)

    def load_recipes(
        self, file_name: str, master_key: bytes
    ) -> Tuple[FileRecipe, KeyRecipe]:
        """Reassemble a file's recipes.

        Raises:
            KeyError: unknown file.
            ValueError: authentication failure or corrupt metadata.
        """
        sealed = self._meta_recipes[file_name]
        meta_plain = unseal(master_key, sealed)
        return unpack_metadata_chunks(
            meta_plain, fetch=lambda fps: [self.engine.load(fp) for fp in fps]
        )

    def metadata_saving(self) -> float:
        """Measured metadata storage saving from deduplication."""
        return self.stats.saving(self.engine.stats.unique_bytes)
