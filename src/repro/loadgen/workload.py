"""Declarative load-generator workload profiles.

A :class:`WorkloadProfile` describes a fleet-scale run the way the
paper's evaluation describes a trace: arrival process, concurrency,
file-size and dedup-locality distributions, upload/restore mix,
per-tenant skew, seeded fault mix, and the SLOs the run is judged
against. Profiles load from TOML (``repro loadgen --profile``) or plain
dicts, and every stochastic choice downstream derives from the single
``seed``, so a profile + seed names a reproducible run.

Two arrival modes (the classic load-testing dichotomy):

* **closed** — ``clients`` workers each issue the next operation as soon
  as the previous one finishes (optionally separated by
  ``think_seconds``). Throughput is an *output*; this is the FSL-style
  "N backup agents" shape.
* **open** — operations arrive on a Poisson process at ``arrival_rate``
  ops/s regardless of completions, dispatched to at most
  ``max_inflight`` workers through a bounded queue. Arrivals that find
  the queue full are *shed* and counted as errors — the open loop never
  blocks the arrival clock, so overload is measured instead of hidden
  (no coordinated omission).

Dedup locality follows the PM-Dedup-style edge/partial mixes
(PAPERS.md): payloads are composed from fixed-size units drawn from a
per-tenant pool, a cross-tenant shared pool, or fresh randomness —
``dup_chunk_prob``/``shared_prob`` set the partial-dedup level, and
``dup_file_prob`` re-uploads a whole earlier payload (the full-dedup
edge case).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Mapping, Tuple

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.10 CI
    tomllib = None

from repro.obs.slo import SLO
from repro.tedstore.faults import FaultPlan

MODES = ("closed", "open")


@dataclass(frozen=True)
class FileShape:
    """File-size and dedup-locality distribution for generated payloads."""

    min_kb: int = 8
    max_kb: int = 64
    unit_kb: int = 8
    dup_file_prob: float = 0.2
    dup_chunk_prob: float = 0.3
    shared_prob: float = 0.5
    pool_units: int = 256
    pool_files: int = 64

    def __post_init__(self) -> None:
        if not 0 < self.min_kb <= self.max_kb:
            raise ValueError("need 0 < min_kb <= max_kb")
        if self.unit_kb < 1 or self.unit_kb > self.min_kb:
            raise ValueError("need 1 <= unit_kb <= min_kb")
        for name in ("dup_file_prob", "dup_chunk_prob", "shared_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.pool_units < 1 or self.pool_files < 1:
            raise ValueError("pools must hold at least one entry")


@dataclass(frozen=True)
class OpMix:
    """Upload/restore split; weights normalize to 1."""

    upload: float = 0.7
    restore: float = 0.3

    def __post_init__(self) -> None:
        if self.upload < 0 or self.restore < 0:
            raise ValueError("mix weights cannot be negative")
        if self.upload + self.restore <= 0:
            raise ValueError("mix weights cannot all be zero")

    @property
    def upload_fraction(self) -> float:
        return self.upload / (self.upload + self.restore)


@dataclass(frozen=True)
class TenantShape:
    """How many tenants and how skewed the traffic across them is."""

    count: int = 2
    skew: float = 1.0  # Zipf-ish exponent: 0 = uniform
    cross_user_dedup: bool = True

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("need at least one tenant")
        if self.skew < 0:
            raise ValueError("skew cannot be negative")

    def weights(self) -> Tuple[float, ...]:
        """Per-tenant selection weights (tenant 0 is the hottest)."""
        return tuple(
            1.0 / (rank + 1) ** self.skew for rank in range(self.count)
        )


@dataclass(frozen=True)
class DeploymentShape:
    """Server-side topology the run is generated against.

    ``shards > 1`` builds the in-process deployment sharded — a
    ring-routed provider store and a :class:`~repro.tedstore.sharding.\
ShardedKeyManager` front (DESIGN.md §15) — so load profiles can gate
    the sharded path's throughput the same way they gate the single
    engine's. Ignored for TCP targets (the servers own their topology).
    """

    shards: int = 1
    ring_seed: int = 0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be at least 1")


@dataclass(frozen=True)
class FaultMix:
    """Seeded fault-injection rates applied to every client transport.

    Mirrors :class:`~repro.tedstore.faults.FaultPlan`; kept as a
    separate declarative shape so profiles stay plain data and the
    injectable ``sleep`` never appears in TOML.
    """

    drop_rate: float = 0.0
    close_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.0
    corrupt_rate: float = 0.0

    def enabled(self) -> bool:
        return any(
            (
                self.drop_rate,
                self.close_rate,
                self.delay_rate,
                self.corrupt_rate,
            )
        )

    def plan(self, seed: int) -> FaultPlan:
        return FaultPlan(
            drop_rate=self.drop_rate,
            close_rate=self.close_rate,
            delay_rate=self.delay_rate,
            delay_seconds=self.delay_seconds,
            corrupt_rate=self.corrupt_rate,
            seed=seed,
        )


@dataclass(frozen=True)
class WorkloadProfile:
    """One declarative load-generator run."""

    name: str = "adhoc"
    mode: str = "closed"
    clients: int = 4
    think_seconds: float = 0.0
    arrival_rate: float = 20.0
    max_inflight: int = 8
    queue_limit: int = 64
    duration_seconds: float = 5.0
    seed: int = 2013
    files: FileShape = field(default_factory=FileShape)
    mix: OpMix = field(default_factory=OpMix)
    tenants: TenantShape = field(default_factory=TenantShape)
    faults: FaultMix = field(default_factory=FaultMix)
    deployment: DeploymentShape = field(default_factory=DeploymentShape)
    slos: Tuple[SLO, ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.clients < 1:
            raise ValueError("clients must be at least 1")
        if self.think_seconds < 0:
            raise ValueError("think_seconds cannot be negative")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        ops = {slo.op for slo in self.slos}
        if len(ops) != len(self.slos):
            raise ValueError("duplicate SLO op in profile")

    def scaled(self, factor: float) -> "WorkloadProfile":
        """Shrink (or grow) the run while keeping its shape.

        Concurrency, arrival rate, and duration scale together — the
        smoke-scale knob the benchmarks and CI use (``--scale 0.15``
        mirrors ``REPRO_BENCH_SCALE``). Tenancy, mix, and SLOs are
        shape, not size, and stay put.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        if factor == 1.0:
            return self
        return replace(
            self,
            clients=max(1, round(self.clients * factor)),
            arrival_rate=max(0.5, self.arrival_rate * factor),
            max_inflight=max(1, round(self.max_inflight * factor)),
            duration_seconds=max(1.0, self.duration_seconds * factor),
        )

    # -- loading --------------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping) -> "WorkloadProfile":
        """Build a profile from a TOML-shaped mapping; unknown keys fail."""
        data = dict(data)
        kwargs: Dict[str, object] = {}
        for key in (
            "name",
            "mode",
            "clients",
            "think_seconds",
            "arrival_rate",
            "max_inflight",
            "queue_limit",
            "duration_seconds",
            "seed",
        ):
            if key in data:
                kwargs[key] = data.pop(key)
        if "files" in data:
            kwargs["files"] = FileShape(**data.pop("files"))
        if "mix" in data:
            kwargs["mix"] = OpMix(**data.pop("mix"))
        if "tenants" in data:
            kwargs["tenants"] = TenantShape(**data.pop("tenants"))
        if "faults" in data:
            kwargs["faults"] = FaultMix(**data.pop("faults"))
        if "deployment" in data:
            kwargs["deployment"] = DeploymentShape(**data.pop("deployment"))
        if "slo" in data:
            slos = []
            for op, targets in data.pop("slo").items():
                targets = dict(targets)
                p99_ms = targets.pop("p99_ms", None)
                max_error_ratio = targets.pop("max_error_ratio", None)
                window_seconds = targets.pop("window_seconds", 10.0)
                if targets:
                    raise ValueError(
                        f"unknown SLO keys for {op!r}: {sorted(targets)}"
                    )
                slos.append(
                    SLO(
                        op=op,
                        p99_seconds=(
                            p99_ms / 1000.0 if p99_ms is not None else None
                        ),
                        max_error_ratio=max_error_ratio,
                        window_seconds=window_seconds,
                    )
                )
            kwargs["slos"] = tuple(slos)
        if data:
            raise ValueError(f"unknown profile keys: {sorted(data)}")
        return cls(**kwargs)

    @classmethod
    def from_toml(cls, path) -> "WorkloadProfile":
        if tomllib is not None:
            with open(path, "rb") as handle:
                data = tomllib.load(handle)
        else:
            data = _parse_simple_toml(Path(path).read_text("utf-8"))
        profile = cls.from_dict(data)
        if profile.name == "adhoc":
            profile = replace(profile, name=Path(path).stem)
        return profile


def _parse_simple_toml(text: str) -> Dict:
    """Minimal TOML-subset parser for profile files on Python 3.10.

    Supports exactly what profiles use — ``[dotted.tables]`` and
    ``key = value`` lines with string/int/float/bool scalars — and
    raises on anything fancier, steering users to real TOML (3.11+).
    """
    root: Dict = {}
    table = root
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            table = root
            for part in line[1:-1].strip().split("."):
                table = table.setdefault(part.strip(), {})
            continue
        key, sep, value = line.partition("=")
        if not sep:
            raise ValueError(f"unparseable profile line: {raw!r}")
        key = key.strip()
        value = value.strip()
        if value.startswith(('"', "'")) and value.endswith(value[0]):
            table[key] = value[1:-1]
        elif value in ("true", "false"):
            table[key] = value == "true"
        else:
            try:
                table[key] = (
                    float(value) if "." in value or "e" in value.lower()
                    else int(value)
                )
            except ValueError:
                raise ValueError(
                    f"unsupported profile value {value!r} (the fallback "
                    "parser handles scalars only; use Python 3.11+ for "
                    "full TOML)"
                ) from None
    return root


__all__ = [
    "DeploymentShape",
    "FaultMix",
    "FileShape",
    "OpMix",
    "TenantShape",
    "WorkloadProfile",
]
