"""Load-run reporting: registry-sourced percentiles, SLO verdicts, JSON.

The report layer deliberately reads its numbers back out of the obs
registry (the cumulative ``ted_loadgen_*`` instruments the runner wrote)
rather than private runner state: the same percentiles an operator would
scrape from ``repro stats --format prom`` are the ones printed and
emitted to ``BENCH_load.json``, so the report is a consistency check of
the observability path, not a parallel bookkeeping system. The SLO
section comes from the tracker's windowed view (the state the run *ended*
in), and per-tenant rows from the runner's totals.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.loadgen.runner import RunTotals
from repro.loadgen.workload import WorkloadProfile
from repro.obs import metrics as obs_metrics
from repro.obs.slo import SLOStatus, SLOTracker

#: Default destination of the benchmark dump (repo root, next to the
#: other BENCH_*.json trajectories); REPRO_BENCH_LOAD_OUT overrides.
DEFAULT_BENCH_OUT = (
    Path(__file__).resolve().parent.parent.parent.parent / "BENCH_load.json"
)


@dataclass(frozen=True)
class OpReport:
    """Cumulative per-operation outcome of one run."""

    op: str
    ops: int
    errors: int
    error_ratio: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    ops_per_second: float
    mib_per_second: float


@dataclass
class LoadReport:
    """Everything one run produced, printable and JSON-serializable."""

    profile: WorkloadProfile
    duration_seconds: float
    ops_total: int
    errors_total: int
    shed_total: int
    bytes_total: int
    per_op: List[OpReport]
    per_tenant: Dict[str, Dict[str, int]]
    slo: List[SLOStatus]

    @property
    def breached(self) -> bool:
        return any(status.breached for status in self.slo)

    @classmethod
    def collect(
        cls,
        profile: WorkloadProfile,
        totals: RunTotals,
        tracker: SLOTracker,
        registry: Optional[obs_metrics.MetricsRegistry] = None,
    ) -> "LoadReport":
        """Assemble the report from the registry + tracker + raw totals."""
        registry = registry or obs_metrics.get_registry()
        duration = max(totals.duration_seconds, 1e-9)
        per_op: List[OpReport] = []
        seconds = registry.get("ted_loadgen_op_seconds")
        ops_counter = registry.get("ted_loadgen_ops_total")
        bytes_counter = registry.get("ted_loadgen_bytes_total")
        ops_by_label: Dict[str, Dict[str, float]] = {}
        if ops_counter is not None:
            for (op, status), child in ops_counter.children():
                ops_by_label.setdefault(op, {})[status] = child.value
        bytes_by_op: Dict[str, float] = {}
        if bytes_counter is not None:
            for (op,), child in bytes_counter.children():
                bytes_by_op[op] = child.value
        if seconds is not None:
            for (op,), child in seconds.children():
                count = child.count
                if count == 0:
                    continue
                outcomes = ops_by_label.get(op, {})
                errors = int(outcomes.get("error", 0))
                moved = bytes_by_op.get(op, 0.0)
                per_op.append(
                    OpReport(
                        op=op,
                        ops=count,
                        errors=errors,
                        error_ratio=errors / count,
                        p50_ms=child.quantile(0.5) * 1000,
                        p95_ms=child.quantile(0.95) * 1000,
                        p99_ms=child.quantile(0.99) * 1000,
                        mean_ms=(child.sum / count) * 1000,
                        ops_per_second=count / duration,
                        mib_per_second=moved / duration / (1 << 20),
                    )
                )
        per_op.sort(key=lambda r: r.op)
        return cls(
            profile=profile,
            duration_seconds=totals.duration_seconds,
            ops_total=totals.ops + totals.shed,
            errors_total=totals.errors,
            shed_total=totals.shed,
            bytes_total=totals.bytes_moved,
            per_op=per_op,
            per_tenant=dict(sorted(totals.per_tenant.items())),
            slo=tracker.evaluate(),
        )

    # -- rendering ------------------------------------------------------------

    def format(self) -> str:
        lines = [
            f"=== load report: {self.profile.name} "
            f"({self.profile.mode} loop, {self.profile.tenants.count} "
            f"tenants, seed {self.profile.seed}) ===",
            f"duration {self.duration_seconds:.2f}s, "
            f"{self.ops_total} ops ({self.errors_total} errors, "
            f"{self.shed_total} shed), "
            f"{self.bytes_total / (1 << 20):.1f} MiB moved",
            "",
            f"{'op':<10} {'ops':>7} {'err%':>6} {'p50ms':>8} "
            f"{'p95ms':>8} {'p99ms':>8} {'mean':>8} {'ops/s':>8} "
            f"{'MiB/s':>7}",
        ]
        for r in self.per_op:
            lines.append(
                f"{r.op:<10} {r.ops:>7} {r.error_ratio:>6.1%} "
                f"{r.p50_ms:>8.1f} {r.p95_ms:>8.1f} {r.p99_ms:>8.1f} "
                f"{r.mean_ms:>8.1f} {r.ops_per_second:>8.1f} "
                f"{r.mib_per_second:>7.2f}"
            )
        if self.per_tenant:
            lines.append("")
            lines.append(
                f"{'tenant':<10} {'uploads':>8} {'restores':>9} "
                f"{'errors':>7}"
            )
            for tenant, counts in self.per_tenant.items():
                lines.append(
                    f"{tenant:<10} {counts.get('upload', 0):>8} "
                    f"{counts.get('restore', 0):>9} "
                    f"{counts.get('errors', 0):>7}"
                )
        if self.slo:
            lines.append("")
            lines.append("SLO (windowed):")
            for status in self.slo:
                lines.append(f"  {status.describe()}")
        lines.append("")
        lines.append("SLO BREACHED" if self.breached else "all SLOs met")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "profile": self.profile.name,
            "mode": self.profile.mode,
            "seed": self.profile.seed,
            "tenants": self.profile.tenants.count,
            "duration_seconds": round(self.duration_seconds, 3),
            "ops_total": self.ops_total,
            "errors_total": self.errors_total,
            "shed_total": self.shed_total,
            "bytes_total": self.bytes_total,
            "breached": self.breached,
            "per_op": {
                r.op: {
                    "ops": r.ops,
                    "errors": r.errors,
                    "error_ratio": round(r.error_ratio, 6),
                    "p50_ms": round(r.p50_ms, 3),
                    "p95_ms": round(r.p95_ms, 3),
                    "p99_ms": round(r.p99_ms, 3),
                    "mean_ms": round(r.mean_ms, 3),
                    "ops_per_second": round(r.ops_per_second, 3),
                    "mib_per_second": round(r.mib_per_second, 4),
                }
                for r in self.per_op
            },
            "per_tenant": self.per_tenant,
            "slo": [
                {
                    "op": s.op,
                    "breached": s.breached,
                    "p99_ms": round(s.p99 * 1000, 3),
                    "error_ratio": round(s.error_ratio, 6),
                    "latency_burn_rate": round(s.latency_burn_rate, 3),
                    "error_burn_rate": round(s.error_burn_rate, 3),
                    "reasons": list(s.reasons),
                }
                for s in self.slo
            ],
        }


def write_bench(
    reports: Sequence[LoadReport], out: Optional[os.PathLike] = None
) -> Path:
    """Merge per-profile summaries into ``BENCH_load.json``.

    The document accumulates across calls (one section per profile name),
    matching the merge convention of ``benchmarks/emit.py``.
    """
    path = Path(
        out
        or os.environ.get("REPRO_BENCH_LOAD_OUT", str(DEFAULT_BENCH_OUT))
    )
    document: dict = {}
    if path.exists():
        try:
            document = json.loads(path.read_text())
        except ValueError:
            document = {}  # overwrite a corrupt dump rather than crash
    profiles = document.setdefault("profiles", {})
    for report in reports:
        profiles[report.profile.name] = report.to_dict()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True))
    return path


__all__ = ["LoadReport", "OpReport", "write_bench", "DEFAULT_BENCH_OUT"]
