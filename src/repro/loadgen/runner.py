"""Multi-tenant load runner: drives a TEDStore deployment per a profile.

The runner turns a :class:`~repro.loadgen.workload.WorkloadProfile` into
live traffic against either an in-process deployment (built on demand —
the zero-network-cost limit, same convention as the benchmarks) or a
running TCP deployment (``--km``/``--provider``). Each worker thread owns
one :class:`~repro.tedstore.client.TedStoreClient` per tenant it touches
(clients are not shared across threads), tenants share a per-tenant
master key so any worker can restore any file of that tenant, and every
operation outcome is recorded three ways at once:

* cumulative registry instruments (``ted_loadgen_*``) — the report and
  ``BENCH_load.json`` read these;
* the :class:`~repro.obs.slo.SLOTracker` windows — live p50/p99, error
  ratios, and burn-rate gauges;
* the optional :class:`~repro.obs.flight.FlightRecorder` — one ``op``
  event per operation plus periodic metric deltas, replayable with
  ``repro top --replay``.

Payload generation (dedup locality) lives in :class:`PayloadForge`:
files are composed of fixed-size units drawn from a per-tenant pool, a
cross-tenant shared pool, or fresh seeded randomness. Unit reuse gives
the chunker long identical runs, so the provider observes the partial-
dedup mixes the profile dialed in without the forge knowing anything
about chunk boundaries.
"""

from __future__ import annotations

import queue
import random
import tempfile
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.loadgen.workload import WorkloadProfile
from repro.obs import metrics as obs_metrics
from repro.obs.flight import FlightRecorder
from repro.obs.slo import SLOTracker
from repro.crypto.cipher import get_profile
from repro.tedstore.client import TedStoreClient
from repro.tedstore.faults import FaultyKeyManager, FaultyProvider
from repro.tedstore.inprocess import LocalKeyManager, LocalProvider
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.provider import ProviderService

_REGISTRY = obs_metrics.get_registry()
_OP_SECONDS = _REGISTRY.histogram(
    "ted_loadgen_op_seconds",
    "End-to-end latency of load-generator operations",
    labelnames=("op",),
)
_OPS = _REGISTRY.counter(
    "ted_loadgen_ops_total",
    "Load-generator operations by outcome",
    labelnames=("op", "status"),
)
_TENANT_OPS = _REGISTRY.counter(
    "ted_loadgen_tenant_ops_total",
    "Load-generator operations per tenant",
    labelnames=("tenant", "op"),
)
_BYTES = _REGISTRY.counter(
    "ted_loadgen_bytes_total",
    "Logical bytes moved by the load generator",
    labelnames=("op",),
)
_QUEUE_DEPTH = _REGISTRY.gauge(
    "ted_loadgen_queue_depth",
    "Open-loop dispatch queue depth",
)
_INFLIGHT = _REGISTRY.gauge(
    "ted_loadgen_inflight",
    "Operations currently executing",
)
_SHED = _REGISTRY.counter(
    "ted_loadgen_arrivals_shed_total",
    "Open-loop arrivals dropped because the dispatch queue was full",
)


class PayloadForge:
    """Seeded payload generator with tunable dedup locality. Thread-safe.

    One forge per tenant; ``shared_units`` is the cross-tenant pool every
    forge of a run shares (its own lock serializes access).
    """

    def __init__(
        self,
        shape,
        rng: random.Random,
        shared_units: List[bytes],
        shared_lock: threading.Lock,
    ) -> None:
        self._shape = shape
        self._rng = rng
        self._unit_bytes = shape.unit_kb << 10
        self._units: List[bytes] = []
        self._payloads: List[bytes] = []
        self._shared_units = shared_units
        self._shared_lock = shared_lock
        self._lock = threading.Lock()

    def _pool_unit(self) -> Optional[bytes]:
        use_shared = self._rng.random() < self._shape.shared_prob
        if use_shared:
            with self._shared_lock:
                if self._shared_units:
                    return self._rng.choice(self._shared_units)
        if self._units:
            return self._rng.choice(self._units)
        return None

    def _remember_unit(self, unit: bytes) -> None:
        pool = self._units
        if len(pool) < self._shape.pool_units:
            pool.append(unit)
        else:
            pool[self._rng.randrange(len(pool))] = unit
        with self._shared_lock:
            shared = self._shared_units
            if len(shared) < self._shape.pool_units:
                shared.append(unit)
            else:
                shared[self._rng.randrange(len(shared))] = unit

    def payload(self) -> bytes:
        """One file payload following the profile's dedup mix."""
        with self._lock:
            shape = self._shape
            if self._payloads and self._rng.random() < shape.dup_file_prob:
                return self._rng.choice(self._payloads)
            size_kb = self._rng.randint(shape.min_kb, shape.max_kb)
            units = max(1, (size_kb << 10) // self._unit_bytes)
            parts: List[bytes] = []
            for _ in range(units):
                unit = None
                if self._rng.random() < shape.dup_chunk_prob:
                    unit = self._pool_unit()
                if unit is None:
                    unit = self._rng.randbytes(self._unit_bytes)
                    self._remember_unit(unit)
                parts.append(unit)
            payload = b"".join(parts)
            if len(self._payloads) < shape.pool_files:
                self._payloads.append(payload)
            else:
                index = self._rng.randrange(len(self._payloads))
                self._payloads[index] = payload
            return payload


class _TenantCatalog:
    """Names a tenant has successfully uploaded (restore candidates)."""

    def __init__(self) -> None:
        self._names: List[str] = []
        self._lock = threading.Lock()

    def add(self, name: str) -> None:
        with self._lock:
            self._names.append(name)

    def pick(self, rng: random.Random) -> Optional[str]:
        with self._lock:
            if not self._names:
                return None
            return rng.choice(self._names)

    def __len__(self) -> int:
        with self._lock:
            return len(self._names)


class InProcessDeployment:
    """Shared KM + provider services, fresh local transports per client.

    ``[deployment] shards > 1`` swaps in the sharded topology: a
    ring-routed on-disk provider store under a temp dir (the in-memory
    provider has no engine to shard) and a
    :class:`~repro.tedstore.sharding.ShardedKeyManager` front, so load
    profiles exercise the DESIGN.md §15 routing path end to end.
    """

    def __init__(self, profile: WorkloadProfile) -> None:
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        shards = profile.deployment.shards
        if shards > 1:
            from repro.core.ted import TedKeyManager
            from repro.tedstore.ring import HashRing
            from repro.tedstore.sharding import ShardedKeyManager

            ring = HashRing.build(shards, seed=profile.deployment.ring_seed)
            self.key_manager = ShardedKeyManager(
                TedKeyManager(
                    secret=b"tedstore-default-secret",
                    blowup_factor=1.05,
                    batch_size=48_000,
                    sketch_width=2**21,
                ),
                ring,
            )
            self._tempdir = tempfile.TemporaryDirectory(
                prefix="loadgen-shards-"
            )
            self.provider = ProviderService(
                directory=self._tempdir.name,
                cross_user_dedup=profile.tenants.cross_user_dedup,
                shards=shards,
                ring_seed=profile.deployment.ring_seed,
            )
        else:
            self.key_manager = KeyManagerService()
            self.provider = ProviderService(
                in_memory=True,
                cross_user_dedup=profile.tenants.cross_user_dedup,
            )

    def client(
        self, profile: WorkloadProfile, tenant: str, worker: int
    ) -> TedStoreClient:
        km = LocalKeyManager(
            self.key_manager, client_id=f"loadgen-{worker}"
        )
        provider = LocalProvider(self.provider, tenant=tenant)
        if profile.faults.enabled():
            # Distinct seed per (worker, tenant) so schedules differ per
            # transport but replay identically run to run.
            # zlib.crc32, not hash(): PYTHONHASHSEED randomizes str hashes
            # per process, which would silently break replayability.
            fault_seed = (
                profile.seed * 1_000_003
                + worker * 8191
                + zlib.crc32(tenant.encode()) % 8191
            )
            km = FaultyKeyManager(km, profile.faults.plan(fault_seed))
            provider = FaultyProvider(
                provider, profile.faults.plan(fault_seed + 1)
            )
        return TedStoreClient(
            km,
            provider,
            master_key=_tenant_master_key(tenant),
            profile=get_profile("shactr"),
            batch_size=4096,
        )

    def close(self) -> None:
        self.provider.close()
        close_km = getattr(self.key_manager, "close", None)
        if callable(close_km):
            close_km()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None


class TcpDeployment:
    """Connects each worker client to already-running TCP servers."""

    def __init__(
        self,
        km_address: Tuple[str, int],
        provider_address: Tuple[str, int],
        auth_token: bytes = b"",
    ) -> None:
        self.km_address = km_address
        self.provider_address = provider_address
        self.auth_token = auth_token
        self._transports: List[object] = []
        self._lock = threading.Lock()

    def client(
        self, profile: WorkloadProfile, tenant: str, worker: int
    ) -> TedStoreClient:
        from repro.tedstore.network import RemoteKeyManager, RemoteProvider

        km = RemoteKeyManager(self.km_address)
        provider = RemoteProvider(
            self.provider_address,
            tenant=tenant,
            auth_token=self.auth_token,
        )
        with self._lock:
            self._transports.extend((km, provider))
        if profile.faults.enabled():
            # zlib.crc32, not hash(): PYTHONHASHSEED randomizes str hashes
            # per process, which would silently break replayability.
            fault_seed = (
                profile.seed * 1_000_003
                + worker * 8191
                + zlib.crc32(tenant.encode()) % 8191
            )
            km = FaultyKeyManager(km, profile.faults.plan(fault_seed))
            provider = FaultyProvider(
                provider, profile.faults.plan(fault_seed + 1)
            )
        return TedStoreClient(
            km,
            provider,
            master_key=_tenant_master_key(tenant),
            profile=get_profile("shactr"),
            batch_size=4096,
        )

    def close(self) -> None:
        with self._lock:
            transports, self._transports = self._transports, []
        for transport in transports:
            try:
                transport.close()
            except Exception:
                pass  # teardown after a faulted run; nothing to salvage


class FleetDeployment:
    """Connects each worker to a multi-process shard fleet (DESIGN.md §17).

    The provider side routes over the ring's endpoint map — one
    :class:`~repro.tedstore.fleet.MultiShardProvider` per worker, so
    every client carries its own per-shard breakers and sees the fleet's
    degraded-mode semantics (fail-fast typed errors on an open breaker)
    instead of hanging. The KM side connects to the front's TCP address,
    exactly like :class:`TcpDeployment`.

    This is how the chaos harness and the ``chaos-smoke`` CI job measure
    *degraded-mode throughput*: run a load profile against a fleet while
    a shard is down and the breaker/retry tuning below decides the
    worst-case stall per op.
    """

    def __init__(
        self,
        ring_path,
        km_address: Tuple[str, int],
        auth_token: bytes = b"",
        heartbeat_interval: float = 0.0,
        breaker_failures: int = 3,
        breaker_reset: float = 5.0,
        io_timeout: float = 60.0,
        connect_timeout: float = 10.0,
    ) -> None:
        from repro.tedstore.ring import load_ring

        self.ring = load_ring(ring_path)
        if not self.ring.endpoints:
            raise ValueError(
                f"{ring_path} publishes no shard endpoints; a fleet "
                "deployment needs a per-shard endpoint map"
            )
        self.km_address = km_address
        self.auth_token = auth_token
        self.heartbeat_interval = float(heartbeat_interval)
        self.breaker_failures = int(breaker_failures)
        self.breaker_reset = float(breaker_reset)
        self.io_timeout = float(io_timeout)
        self.connect_timeout = float(connect_timeout)
        self._transports: List[object] = []
        self._lock = threading.Lock()

    def client(
        self, profile: WorkloadProfile, tenant: str, worker: int
    ) -> TedStoreClient:
        from repro.tedstore.fleet import MultiShardProvider
        from repro.tedstore.network import RemoteKeyManager

        km = RemoteKeyManager(self.km_address)
        provider = MultiShardProvider(
            self.ring,
            tenant=tenant,
            auth_token=self.auth_token,
            heartbeat_interval=self.heartbeat_interval,
            breaker_failures=self.breaker_failures,
            breaker_reset=self.breaker_reset,
            io_timeout=self.io_timeout,
            connect_timeout=self.connect_timeout,
        )
        with self._lock:
            self._transports.extend((km, provider))
        return TedStoreClient(
            km,
            provider,
            master_key=_tenant_master_key(tenant),
            profile=get_profile("shactr"),
            batch_size=4096,
        )

    def close(self) -> None:
        with self._lock:
            transports, self._transports = self._transports, []
        for transport in transports:
            try:
                transport.close()
            except Exception:
                pass  # teardown after a degraded run; nothing to salvage


def _tenant_master_key(tenant: str) -> bytes:
    import hashlib

    return hashlib.sha256(b"loadgen-tenant-key:" + tenant.encode()).digest()


@dataclass
class RunTotals:
    """Raw outcome counts the runner hands to the report layer."""

    started: float = 0.0
    duration_seconds: float = 0.0
    ops: int = 0
    errors: int = 0
    shed: int = 0
    bytes_moved: int = 0
    per_tenant: Dict[str, Dict[str, int]] = field(default_factory=dict)


class _WorkerState:
    """Per-worker lazily-built clients plus a seeded RNG."""

    def __init__(self, runner: "LoadRunner", worker: int) -> None:
        self.runner = runner
        self.worker = worker
        self.rng = random.Random(runner.profile.seed * 65_537 + worker)
        self._clients: Dict[str, TedStoreClient] = {}

    def client(self, tenant: str) -> TedStoreClient:
        client = self._clients.get(tenant)
        if client is None:
            client = self.runner.deployment.client(
                self.runner.profile, tenant, self.worker
            )
            self._clients[tenant] = client
        return client


class LoadRunner:
    """Executes one profile and returns raw totals.

    Args:
        profile: the declarative run description.
        deployment: target factory; defaults to a fresh in-process
            deployment owned (and closed) by the runner.
        tracker: SLO tracker to feed; a fresh one is built from the
            profile's SLOs if omitted.
        flight: optional flight recorder receiving op events and
            periodic metric deltas.
        clock / sleep: injectable time sources (tests compress time).
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        deployment=None,
        tracker: Optional[SLOTracker] = None,
        flight: Optional[FlightRecorder] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.profile = profile
        self._owns_deployment = deployment is None
        self.deployment = deployment or InProcessDeployment(profile)
        self.tracker = tracker or SLOTracker(profile.slos, clock=clock)
        self.flight = flight
        self._clock = clock
        self._sleep = sleep
        self._tenants = [
            f"tenant{i:02d}" for i in range(profile.tenants.count)
        ]
        self._weights = profile.tenants.weights()
        self._catalogs = {t: _TenantCatalog() for t in self._tenants}
        self._forges: Dict[str, PayloadForge] = {}
        shared_units: List[bytes] = []
        shared_lock = threading.Lock()
        for index, tenant in enumerate(self._tenants):
            self._forges[tenant] = PayloadForge(
                profile.files,
                random.Random(profile.seed * 31 + index),
                shared_units,
                shared_lock,
            )
        self._seq = 0
        self._seq_lock = threading.Lock()
        self.totals = RunTotals()
        self._totals_lock = threading.Lock()
        self._stop = threading.Event()

    # -- op execution ---------------------------------------------------------

    def _next_name(self, tenant: str) -> str:
        with self._seq_lock:
            self._seq += 1
            return f"{tenant}/file-{self._seq:06d}"

    def _pick_tenant(self, rng: random.Random) -> str:
        return rng.choices(self._tenants, weights=self._weights, k=1)[0]

    def _pick_op(self, rng: random.Random, tenant: str) -> str:
        wants_upload = (
            rng.random() < self.profile.mix.upload_fraction
        )
        if not wants_upload and len(self._catalogs[tenant]) == 0:
            return "upload"  # nothing to restore yet
        return "upload" if wants_upload else "restore"

    def _run_op(self, state: _WorkerState, tenant: str, op: str) -> None:
        rng = state.rng
        ok = True
        error: Optional[str] = None
        nbytes = 0
        start = time.perf_counter()
        try:
            client = state.client(tenant)
            if op == "upload":
                name = self._next_name(tenant)
                payload = self._forges[tenant].payload()
                client.upload(name, payload)
                nbytes = len(payload)
                self._catalogs[tenant].add(name)
            else:
                name = self._catalogs[tenant].pick(rng)
                if name is None:
                    raise FileNotFoundError("empty catalog")
                nbytes = len(client.download(name))
        except Exception as exc:
            ok = False
            error = f"{type(exc).__name__}: {exc}"
        elapsed = time.perf_counter() - start

        _OP_SECONDS.labels(op=op).observe(elapsed)
        _OPS.labels(op=op, status="ok" if ok else "error").inc()
        _TENANT_OPS.labels(tenant=tenant, op=op).inc()
        _BYTES.labels(op=op).inc(nbytes)
        self.tracker.observe(op, elapsed, error=not ok)
        if self.flight is not None:
            self.flight.emit_op(op, tenant, elapsed, ok, nbytes, error)
        with self._totals_lock:
            self.totals.ops += 1
            self.totals.errors += 0 if ok else 1
            self.totals.bytes_moved += nbytes
            per_tenant = self.totals.per_tenant.setdefault(
                tenant, {"upload": 0, "restore": 0, "errors": 0}
            )
            per_tenant[op] += 1
            per_tenant["errors"] += 0 if ok else 1

    # -- closed loop ----------------------------------------------------------

    def _closed_worker(self, worker: int, deadline: float) -> None:
        state = _WorkerState(self, worker)
        profile = self.profile
        while not self._stop.is_set() and self._clock() < deadline:
            tenant = self._pick_tenant(state.rng)
            op = self._pick_op(state.rng, tenant)
            with _INFLIGHT.track():
                self._run_op(state, tenant, op)
            if profile.think_seconds:
                self._sleep(profile.think_seconds)

    # -- open loop ------------------------------------------------------------

    def _open_dispatcher(
        self, work: "queue.Queue", deadline: float
    ) -> None:
        rng = random.Random(self.profile.seed)
        next_arrival = self._clock()
        while not self._stop.is_set():
            now = self._clock()
            if now >= deadline:
                break
            if now < next_arrival:
                self._sleep(min(next_arrival - now, 0.05))
                continue
            next_arrival += rng.expovariate(self.profile.arrival_rate)
            tenant = self._pick_tenant(rng)
            op = self._pick_op(rng, tenant)
            try:
                work.put_nowait((tenant, op))
            except queue.Full:
                # Open loop never blocks the arrival clock: a full queue
                # is overload, recorded as a shed (and an SLO error).
                _SHED.inc()
                self.tracker.observe(op, 0.0, error=True)
                if self.flight is not None:
                    self.flight.emit_op(
                        op, tenant, 0.0, False, 0, error="shed: queue full"
                    )
                with self._totals_lock:
                    self.totals.shed += 1
                    self.totals.errors += 1
            _QUEUE_DEPTH.set(work.qsize())

    def _open_worker(self, worker: int, work: "queue.Queue") -> None:
        state = _WorkerState(self, worker)
        while True:
            item = work.get()
            if item is None:
                return
            tenant, op = item
            _QUEUE_DEPTH.set(work.qsize())
            with _INFLIGHT.track():
                self._run_op(state, tenant, op)

    # -- periodic flight heartbeat --------------------------------------------

    def _heartbeat(self, interval: float) -> None:
        """Tail metric deltas + SLO evaluations into the flight file."""
        while not self._stop.wait(interval):
            self.tracker.evaluate()  # refresh windowed SLO gauges
            self.flight.emit_metrics_delta()

    # -- entry point ----------------------------------------------------------

    def run(self) -> RunTotals:
        """Execute the profile to completion; returns raw totals."""
        profile = self.profile
        if self.flight is not None:
            self.flight.emit_meta(
                profile=profile.name,
                mode=profile.mode,
                seed=profile.seed,
                tenants=profile.tenants.count,
                started_unix=round(time.time(), 3),
            )
        started = self._clock()
        self.totals.started = started
        deadline = started + profile.duration_seconds
        threads: List[threading.Thread] = []
        work: Optional[queue.Queue] = None
        heartbeat: Optional[threading.Thread] = None
        try:
            if profile.mode == "closed":
                threads = [
                    threading.Thread(
                        target=self._closed_worker,
                        args=(i, deadline),
                        name=f"loadgen-closed-{i}",
                        daemon=True,
                    )
                    for i in range(profile.clients)
                ]
            else:
                work = queue.Queue(maxsize=profile.queue_limit)
                threads = [
                    threading.Thread(
                        target=self._open_worker,
                        args=(i, work),
                        name=f"loadgen-open-{i}",
                        daemon=True,
                    )
                    for i in range(profile.max_inflight)
                ]
                threads.append(
                    threading.Thread(
                        target=self._open_dispatcher,
                        args=(work, deadline),
                        name="loadgen-dispatch",
                        daemon=True,
                    )
                )
            if self.flight is not None:
                heartbeat = threading.Thread(
                    target=self._heartbeat,
                    args=(min(0.5, profile.duration_seconds / 4),),
                    name="loadgen-heartbeat",
                    daemon=True,
                )
                heartbeat.start()
            for thread in threads:
                thread.start()
            if profile.mode == "closed":
                for thread in threads:
                    thread.join()
            else:
                threads[-1].join()  # dispatcher observes the deadline
                for _ in range(profile.max_inflight):
                    work.put(None)
                for thread in threads[:-1]:
                    thread.join()
        finally:
            self._stop.set()
            if heartbeat is not None:
                heartbeat.join(timeout=2.0)
            self.totals.duration_seconds = self._clock() - started
            if self.flight is not None:
                self.flight.emit_metrics_delta()
                self.flight.emit_meta(
                    profile=profile.name,
                    finished=True,
                    ops=self.totals.ops,
                    errors=self.totals.errors,
                )
                self.flight.flush()
            if self._owns_deployment:
                self.deployment.close()
        return self.totals

    def stop(self) -> None:
        """Ask the run to wind down early (signal handlers, tests)."""
        self._stop.set()


__all__ = [
    "FleetDeployment",
    "InProcessDeployment",
    "LoadRunner",
    "PayloadForge",
    "RunTotals",
    "TcpDeployment",
]
