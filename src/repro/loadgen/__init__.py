"""Fleet-scale load generation against a TEDStore deployment (§14).

* :mod:`repro.loadgen.workload` — declarative profiles: arrival mode
  (open/closed loop), file-size and dedup-locality distributions,
  upload/restore mix, tenant skew, fault mixes, SLO targets.
* :mod:`repro.loadgen.runner` — the multi-tenant runner: worker threads,
  Poisson arrivals with shed-on-overload, payload forging, and triple
  recording (registry, SLO windows, flight recorder).
* :mod:`repro.loadgen.report` — registry-sourced report: per-op
  p50/p95/p99, throughput, error rates, SLO verdicts, and the
  ``BENCH_load.json`` emitter.

Surfaced as ``repro loadgen`` (run a profile, exit nonzero on SLO
breach) and ``repro top`` (live/replay per-op view of a flight file).
"""

from repro.loadgen.report import LoadReport, OpReport, write_bench
from repro.loadgen.runner import (
    InProcessDeployment,
    LoadRunner,
    PayloadForge,
    RunTotals,
    TcpDeployment,
)
from repro.loadgen.workload import (
    FaultMix,
    FileShape,
    OpMix,
    TenantShape,
    WorkloadProfile,
)

__all__ = [
    "FaultMix",
    "FileShape",
    "InProcessDeployment",
    "LoadReport",
    "LoadRunner",
    "OpMix",
    "OpReport",
    "PayloadForge",
    "RunTotals",
    "TcpDeployment",
    "TenantShape",
    "WorkloadProfile",
    "write_bench",
]
