"""The TED key manager: sketch-backed, tunable key-seed generation.

This is the paper's core contribution assembled from its three techniques:
sketch-based frequency counting (§3.3), probabilistic key generation (§3.4),
and automated parameter configuration (§3.5). One class serves both paper
variants:

* **BTED** — construct with a fixed balance parameter ``t``.
* **FTED** — construct with a storage blowup factor ``b``; ``t`` is then
  derived from plaintext frequencies, either once per snapshot from exact
  frequencies (the evaluation's "Nil" batching mode) or on-line per batch of
  key-generation requests (``batch_size`` set), starting from ``t = 1``.

The key manager never sees fingerprints — only the ``r`` short hashes each
client sends per chunk. Frequencies are estimated by updating the Count-Min
Sketch with those hashes; the FTED tuner additionally tracks the estimated
frequency per distinct short-hash tuple so it can rebuild the frequency
vector that the Eq. 6 optimization needs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import tuning
from repro.core.keygen import KeySeedGenerator
from repro.obs import metrics as obs_metrics
from repro.sketch.countmin import CountMinSketch
from repro.utils import kernels

DEFAULT_SKETCH_ROWS = 4
DEFAULT_SKETCH_WIDTH = 2**20

_REGISTRY = obs_metrics.get_registry()
_KEYGEN_REQUESTS = _REGISTRY.counter(
    "ted_keymanager_keygen_requests_total",
    "Key-seed generation requests handled",
)
_TUNES = _REGISTRY.counter(
    "ted_keymanager_tunes_total", "Automated parameter-tuning rounds"
)
_TUNE_SECONDS = _REGISTRY.histogram(
    "ted_keymanager_tune_seconds", "Latency of one Eq. 6 tuning solve"
)
_CURRENT_T = _REGISTRY.gauge(
    "ted_keymanager_t", "Balance parameter t chosen by the last tune"
)
_PREDICTED_KLD = _REGISTRY.gauge(
    "ted_keymanager_kld",
    "KL divergence predicted by the last tuning solution",
)


@dataclass
class KeyManagerStats:
    """Counters exposed for the evaluation harness."""

    requests: int = 0
    batches_tuned: int = 0
    t_history: List[int] = field(default_factory=list)


class TedKeyManager:
    """Serves key seeds for chunks identified by short hashes.

    Exactly one of ``t`` (BTED) or ``blowup_factor`` (FTED) must be given.

    Args:
        secret: the global secret ``kappa``.
        t: fixed balance parameter (BTED mode).
        blowup_factor: storage blowup factor ``b`` (FTED mode).
        batch_size: FTED only — retune ``t`` after this many requests
            (paper default 48,000); ``None`` means the caller tunes
            explicitly via :meth:`tune_from_frequencies` (the "Nil" mode).
        sketch_rows / sketch_width: CM-Sketch geometry (paper defaults
            r=4, w=2^20..2^25 depending on experiment).
        probabilistic: Eq. 3 seed selection on (True) or the deterministic
            ``k = k_x`` arm of Experiment A.3 (False).
        conservative_sketch: use the conservative-update sketch (ablation).
        rng: injectable randomness for reproducible runs.
        algorithm: hash profile ("sha256" secure / "md5" fast).

    Example:
        >>> km = TedKeyManager(secret=b"kappa", t=5)
        >>> seed = km.generate_seed([1, 2, 3, 4])
        >>> isinstance(seed, bytes)
        True
    """

    def __init__(
        self,
        secret: bytes,
        t: Optional[int] = None,
        blowup_factor: Optional[float] = None,
        batch_size: Optional[int] = None,
        sketch_rows: int = DEFAULT_SKETCH_ROWS,
        sketch_width: int = DEFAULT_SKETCH_WIDTH,
        probabilistic: bool = True,
        conservative_sketch: bool = False,
        rng: Optional[random.Random] = None,
        algorithm: str = "sha256",
    ) -> None:
        if (t is None) == (blowup_factor is None):
            raise ValueError(
                "configure exactly one of t (BTED) or blowup_factor (FTED)"
            )
        if t is not None and t < 1:
            raise ValueError("t must be >= 1")
        if blowup_factor is not None and blowup_factor < 1.0:
            raise ValueError("blowup_factor must be >= 1")
        if batch_size is not None:
            if blowup_factor is None:
                raise ValueError("batch_size only applies to FTED")
            if batch_size <= 0:
                raise ValueError("batch_size must be positive")

        self.secret = secret
        self.blowup_factor = blowup_factor
        self.batch_size = batch_size
        self.sketch = CountMinSketch(
            rows=sketch_rows,
            width=sketch_width,
            conservative=conservative_sketch,
        )
        self._seeder = KeySeedGenerator(
            secret=secret,
            probabilistic=probabilistic,
            rng=rng,
            algorithm=algorithm,
        )
        # FTED starts at t = 1 and raises it as evidence accumulates (§3.5).
        self.t = t if t is not None else 1
        self.stats = KeyManagerStats()
        self._requests_in_batch = 0
        # Estimated frequency per distinct short-hash tuple, maintained only
        # in FTED mode; this is the frequency vector fed to the optimizer.
        self._freq_by_identity: Dict[Tuple[int, ...], int] = {}

    @property
    def is_fted(self) -> bool:
        """True when ``t`` is auto-configured from a blowup factor."""
        return self.blowup_factor is not None

    # -- key generation --------------------------------------------------

    def generate_seed(self, short_hashes: Sequence[int]) -> bytes:
        """Handle one key-generation request.

        Updates the sketch with the chunk's short hashes, estimates its
        current frequency, and returns the selected key seed. In batched
        FTED mode, also retunes ``t`` at batch boundaries.
        """
        frequency = self.sketch.update(short_hashes)
        if self.is_fted:
            self._freq_by_identity[tuple(short_hashes)] = frequency
        seed = self._seeder.select_seed(short_hashes, frequency, self.t)
        self.stats.requests += 1
        _KEYGEN_REQUESTS.inc()
        if self.batch_size is not None:
            self._requests_in_batch += 1
            if self._requests_in_batch >= self.batch_size:
                self._retune_from_tracked()
                self._requests_in_batch = 0
        return seed

    def _batch_runs(self, total: int):
        """Split ``total`` requests into runs that never cross a retune.

        In sequential :meth:`generate_seed` order, FTED retunes ``t``
        the moment ``_requests_in_batch`` reaches ``batch_size`` — and
        every later request in the same call sees the *new* ``t``. The
        batched paths therefore slice their input at those exact
        boundaries: each run is processed with one sketch batch update
        under one constant ``t``, and the retune fires between runs,
        reproducing the sequential seed decisions bit-for-bit.
        """
        done = 0
        while done < total:
            if self.batch_size is not None:
                take = min(
                    total - done, self.batch_size - self._requests_in_batch
                )
            else:
                take = total - done
            yield done, done + take
            done += take

    def generate_seeds(
        self, batch: Sequence[Sequence[int]]
    ) -> List[bytes]:
        """Handle a batch of requests (one TEDStore round trip).

        With kernels enabled, each retune-free run of the batch goes
        through :meth:`CountMinSketch.update_batch` — one pass over the
        counter array instead of per-request scalar indexing — while
        seed selection, FTED frequency tracking, and batch-boundary
        retuning keep their exact sequential order and semantics.
        """
        if not kernels.kernels_enabled():
            return [self.generate_seed(hashes) for hashes in batch]
        seeds: List[bytes] = []
        for lo, hi in self._batch_runs(len(batch)):
            run = batch[lo:hi]
            frequencies = self.sketch.update_batch(run)
            select = self._seeder.select_seed
            t = self.t
            if self.is_fted:
                tracked = self._freq_by_identity
                for hashes, frequency in zip(run, frequencies):
                    tracked[tuple(hashes)] = frequency
                    seeds.append(select(hashes, frequency, t))
            else:
                for hashes, frequency in zip(run, frequencies):
                    seeds.append(select(hashes, frequency, t))
            self.stats.requests += len(run)
            _KEYGEN_REQUESTS.inc(len(run))
            if self.batch_size is not None:
                self._requests_in_batch += len(run)
                if self._requests_in_batch >= self.batch_size:
                    self._retune_from_tracked()
                    self._requests_in_batch = 0
        return seeds

    def estimate_batch(
        self, batch: Sequence[Sequence[int]]
    ) -> List[int]:
        """Observe a batch and return its per-chunk frequency estimates.

        The sharded key manager's observer path (DESIGN.md §15): shard
        key managers own the sketches but never select seeds — the
        sharded front collects these estimates and runs Eq. 3 selection
        itself so a single RNG stream and a single ``t`` govern the
        whole deployment, exactly as with one key manager. Performs the
        same per-request state mutations as :meth:`generate_seed`
        (sketch update, FTED frequency tracking, request counting)
        minus seed selection; batch-boundary retuning is the front's
        job, so observers are built with ``batch_size=None``.
        """
        if not kernels.kernels_enabled():
            estimates: List[int] = []
            for short_hashes in batch:
                frequency = self.sketch.update(short_hashes)
                if self.is_fted:
                    self._freq_by_identity[tuple(short_hashes)] = frequency
                self.stats.requests += 1
                _KEYGEN_REQUESTS.inc()
                estimates.append(frequency)
            return estimates
        estimates = self.sketch.update_batch(batch)
        if self.is_fted:
            tracked = self._freq_by_identity
            for short_hashes, frequency in zip(batch, estimates):
                tracked[tuple(short_hashes)] = frequency
        self.stats.requests += len(batch)
        _KEYGEN_REQUESTS.inc(len(batch))
        return estimates

    def observe_batch(self, batch: Sequence[Sequence[int]]) -> None:
        """Re-apply a batch's frequency effects without selecting seeds.

        This is the crash-recovery replay path (km_state): it performs
        exactly the state mutations of :meth:`generate_seed` — sketch
        update, FTED frequency tracking, request counting, batch-boundary
        retuning — but produces no seeds and counts no request metrics,
        so replaying every acked batch reconstructs the frequency state
        (and hence every future seed decision) bit-for-bit.
        """
        if not kernels.kernels_enabled():
            for short_hashes in batch:
                frequency = self.sketch.update(short_hashes)
                if self.is_fted:
                    self._freq_by_identity[tuple(short_hashes)] = frequency
                self.stats.requests += 1
                if self.batch_size is not None:
                    self._requests_in_batch += 1
                    if self._requests_in_batch >= self.batch_size:
                        self._retune_from_tracked()
                        self._requests_in_batch = 0
            return
        for lo, hi in self._batch_runs(len(batch)):
            run = batch[lo:hi]
            frequencies = self.sketch.update_batch(run)
            if self.is_fted:
                tracked = self._freq_by_identity
                for short_hashes, frequency in zip(run, frequencies):
                    tracked[tuple(short_hashes)] = frequency
            self.stats.requests += len(run)
            if self.batch_size is not None:
                self._requests_in_batch += len(run)
                if self._requests_in_batch >= self.batch_size:
                    self._retune_from_tracked()
                    self._requests_in_batch = 0

    # -- tuning ------------------------------------------------------------

    def tune_from_frequencies(self, frequencies: Sequence[int]) -> int:
        """FTED "Nil" mode: set ``t`` from an explicit frequency vector.

        The evaluation derives ``t`` from the exact frequencies of all
        plaintext chunks in a snapshot before encrypting it (§5.2).

        Returns:
            The new ``t``.

        Raises:
            RuntimeError: in BTED mode, where ``t`` is fixed by contract.
        """
        if not self.is_fted:
            raise RuntimeError("BTED uses a fixed t; tuning is disabled")
        start = time.perf_counter()
        solution = tuning.solve(frequencies, self.blowup_factor)
        self.t = solution.t
        self.stats.batches_tuned += 1
        self.stats.t_history.append(solution.t)
        _TUNES.inc()
        _TUNE_SECONDS.observe(time.perf_counter() - start)
        _CURRENT_T.set(solution.t)
        _PREDICTED_KLD.set(solution.predicted_kld)
        return solution.t

    def _retune_from_tracked(self) -> None:
        frequencies = list(self._freq_by_identity.values())
        if frequencies:
            self.tune_from_frequencies(frequencies)
        # Each tuning round consumes its batch's frequency vector: the map
        # is cleared so it stays bounded by the batch's distinct-chunk
        # count instead of growing with the whole stream, and stale
        # entries from old batches cannot skew later solves. Cumulative
        # frequency history still informs tuning through the sketch,
        # which keeps counting across batches.
        self._freq_by_identity.clear()

    def tune_from_stream(
        self, hash_vectors: Sequence[Sequence[int]]
    ) -> int:
        """FTED "Nil" mode: tune ``t`` from a full counting pass.

        Feeds every chunk's short hashes through the sketch, solves the
        optimization on the resulting *estimated* frequency vector, and
        resets the sketch so the subsequent encryption pass counts from
        zero. This is how the key manager tunes in practice — it never
        sees exact frequencies, only sketch estimates, which is exactly
        the over-estimation effect Experiment A.2 measures (smaller ``w``
        → inflated estimates → larger ``t``).

        Returns:
            The new ``t``.
        """
        if not self.is_fted:
            raise RuntimeError("BTED uses a fixed t; tuning is disabled")
        estimates: Dict[Tuple[int, ...], int] = {}
        for hashes in hash_vectors:
            estimates[tuple(hashes)] = self.sketch.update(hashes)
        self.sketch.reset()
        if not estimates:
            return self.t
        return self.tune_from_frequencies(list(estimates.values()))

    # -- lifecycle ---------------------------------------------------------

    def clone(self, rng: Optional[random.Random] = None) -> "TedKeyManager":
        """Copy this key manager's full frequency state.

        Used by analyses that need two *independent* encryption runs
        starting from identical accumulated state (Experiment A.3's
        cross-run difference rates under a long-lived key manager). The
        clone gets its own RNG so the probabilistic selections diverge.
        """
        twin = TedKeyManager(
            secret=self.secret,
            t=None if self.is_fted else self.t,
            blowup_factor=self.blowup_factor,
            batch_size=self.batch_size,
            sketch_rows=self.sketch.rows,
            sketch_width=self.sketch.width,
            probabilistic=self._seeder.probabilistic,
            conservative_sketch=self.sketch.conservative,
            rng=rng,
            algorithm=self._seeder.algorithm,
        )
        twin.t = self.t
        twin.sketch._counters = self.sketch._counters.copy()
        twin.sketch.total = self.sketch.total
        twin._freq_by_identity = dict(self._freq_by_identity)
        twin._requests_in_batch = self._requests_in_batch
        return twin

    def reset(self) -> None:
        """Clear all frequency state (a new deduplication domain).

        The evaluation deduplicates each snapshot independently, so the
        trade-off drivers reset the key manager between snapshots. ``t``
        returns to 1 in FTED mode.
        """
        self.sketch.reset()
        self._freq_by_identity.clear()
        self._requests_in_batch = 0
        if self.is_fted:
            self.t = 1
