"""Automated parameter configuration (paper §3.5, Eqs. 6–8).

Given the plaintext chunk-frequency vector and a user-chosen storage blowup
factor ``b``, TED picks the balance parameter ``t`` by solving::

    minimize KLD(f*)  subject to  sum f* = sum f,  0 <= f*_i <= f_i,  |f*| = n* = n·b

The relaxed problem is convex and its optimum has a water-filling shape
(Eq. 7): the ``m`` least-frequent plaintext chunks keep their frequencies,
and the remaining mass is spread evenly across the other ``n* - m``
ciphertext chunks. ``t`` is set to that even share (Eq. 8) — the cap on
duplicate copies per ciphertext chunk.

``m`` is the largest index (1-based, frequencies sorted ascending) such that
``f_m <= (sum_{j>m} f_j) / (n* - m)``. Invalidity propagates upward: if
``f_m`` exceeds the tail share at ``m``, then the share at ``m + 1`` is
strictly below ``f_m <= f_{m+1}``, so the valid set is a prefix and a linear
scan over prefix sums that stops at the first failure finds the optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class TuningSolution:
    """Solution of the Eq. 6 optimization.

    Attributes:
        t: the balance parameter (Eq. 8), always >= 1.
        m: number of uncapped plaintext chunks (Eq. 7).
        n_star: number of unique ciphertext chunks the solution targets.
        optimal_frequencies: the relaxed-optimal ciphertext frequency vector
            (floats; the paper rounds to integers afterwards).
        predicted_kld: KLD of the relaxed optimum (a lower bound on what the
            realized scheme achieves).
    """

    t: int
    m: int
    n_star: int
    optimal_frequencies: List[float]
    predicted_kld: float


def target_unique_ciphertexts(
    num_unique: int, total_copies: int, blowup_factor: float
) -> int:
    """Compute ``n* = n · b``, clamped to the feasible range ``[n, S]``.

    A snapshot cannot produce fewer unique ciphertexts than unique
    plaintexts, nor more unique ciphertexts than total chunk copies — the
    reason the FSL actual blowup saturates below ``b`` in Experiment A.1.
    """
    if num_unique <= 0:
        raise ValueError("need at least one unique chunk")
    if total_copies < num_unique:
        raise ValueError("total copies cannot be below unique count")
    if blowup_factor < 1.0:
        raise ValueError("blowup factor must be >= 1")
    n_star = int(round(num_unique * blowup_factor))
    return max(num_unique, min(n_star, total_copies))


def solve(frequencies: Sequence[int], blowup_factor: float) -> TuningSolution:
    """Solve the Eq. 6 optimization for a frequency vector and blowup ``b``.

    Args:
        frequencies: per-unique-plaintext-chunk duplicate counts (any order).
        blowup_factor: the user's storage blowup factor ``b`` (>= 1).

    Returns:
        The closed-form optimum and the derived balance parameter ``t``.
    """
    freqs = sorted(int(f) for f in frequencies)
    if not freqs:
        raise ValueError("frequency vector must be non-empty")
    if freqs[0] <= 0:
        raise ValueError("frequencies must be positive")
    n = len(freqs)
    total = sum(freqs)
    n_star = target_unique_ciphertexts(n, total, blowup_factor)

    # Largest m with f_m <= (total - prefix_m) / (n_star - m); the tail share
    # is what the remaining n_star - m ciphertext chunks each receive.
    prefix = 0
    best_m = 0
    best_share = total / n_star
    for m in range(1, n):
        prefix += freqs[m - 1]
        share = (total - prefix) / (n_star - m)
        if freqs[m - 1] <= share:
            best_m = m
            best_share = share
        else:
            break
    # m = n would leave the tail share undefined (and means no capping at
    # all); it is only reachable when n_star == n and all mass fits, in
    # which case m = n - 1 already yields f*_n = f_n.

    optimal = [float(f) for f in freqs[:best_m]]
    optimal.extend([best_share] * (n_star - best_m))
    t = max(1, math.ceil(best_share))

    predicted = _kld_of_relaxed(optimal, total)
    return TuningSolution(
        t=t,
        m=best_m,
        n_star=n_star,
        optimal_frequencies=optimal,
        predicted_kld=predicted,
    )


def configure_t(frequencies: Sequence[int], blowup_factor: float) -> int:
    """Convenience wrapper returning only ``t`` (Eq. 8)."""
    return solve(frequencies, blowup_factor).t


def _kld_of_relaxed(frequencies: List[float], total: int) -> float:
    n_star = len(frequencies)
    acc = 0.0
    for f in frequencies:
        if f > 0:
            p = f / total
            acc += p * math.log(p)
    return math.log(n_star) + acc
