"""Information-leakage metrics: KLD (Eq. 5) and attack success (Eq. 9).

The paper quantifies frequency leakage as the Kullback–Leibler distance of
the ciphertext-chunk frequency distribution from the uniform distribution::

    KLD = sum_i p*_i log(p*_i / (1/n*)) = log n* + sum_i p*_i log p*_i

where ``p*_i`` is the empirical probability of ciphertext chunk ``i`` among
``n*`` unique ciphertext chunks. KLD = 0 means the ciphertext frequencies
are perfectly uniform (SKE); larger values mean more exploitable skew.
Natural logarithms throughout (KLD in nats), matching the magnitudes the
paper reports (e.g. 1.72 for MLE on FSL).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

from scipy.stats import norm


def kld_from_frequencies(frequencies: Sequence[int]) -> float:
    """KLD (w.r.t. uniform) of a frequency vector of unique-chunk counts.

    Args:
        frequencies: one positive count per unique ciphertext chunk.

    Raises:
        ValueError: on empty input or non-positive counts.
    """
    freqs = list(frequencies)
    if not freqs:
        raise ValueError("frequency vector must be non-empty")
    total = 0
    for f in freqs:
        if f <= 0:
            raise ValueError("frequencies must be positive")
        total += f
    n_star = len(freqs)
    # KLD = log n* + sum p log p, computed stably in count space:
    # sum p log p = (sum f log f)/S - log S.
    sum_f_log_f = sum(f * math.log(f) for f in freqs)
    return math.log(n_star) + sum_f_log_f / total - math.log(total)


def kld_from_observations(observations: Iterable[bytes]) -> float:
    """KLD of an observed stream of ciphertext-chunk identities."""
    counts = Counter(observations)
    if not counts:
        raise ValueError("observation stream must be non-empty")
    return kld_from_frequencies(list(counts.values()))


def attack_success_probability(num_samples: int, kld: float) -> float:
    """Distinguishing-attack success probability (Eq. 9).

    Approximates the probability that an adversary with ``num_samples``
    sampled ciphertext chunks correctly distinguishes the scheme's frequency
    distribution from uniform: ``P ≈ 1 - Φ(-sqrt(2 S KLD) / 2)``. With
    KLD = 0 this is 0.5 — no advantage over a random guess.
    """
    if num_samples < 0:
        raise ValueError("num_samples must be non-negative")
    if kld < 0:
        raise ValueError("KLD cannot be negative")
    return float(1.0 - norm.cdf(-math.sqrt(2.0 * num_samples * kld) / 2.0))


def samples_for_success(target_probability: float, kld: float) -> float:
    """Samples needed to reach a target success probability (inverse of Eq. 9).

    Used for the §3.6 argument: the ratio of required samples between two
    schemes equals the inverse ratio of their KLDs.

    Raises:
        ValueError: if the target is not in (0.5, 1) or KLD is not positive.
    """
    if not 0.5 < target_probability < 1.0:
        raise ValueError("target probability must be in (0.5, 1)")
    if kld <= 0:
        raise ValueError("KLD must be positive for a finite sample count")
    z = float(norm.ppf(1.0 - target_probability))
    return (2.0 * z) ** 2 / (2.0 * kld)


def storage_blowup(
    unique_ciphertext_chunks: int, unique_plaintext_chunks: int
) -> float:
    """Actual storage blowup over exact deduplication (chunk-count form)."""
    if unique_plaintext_chunks <= 0:
        raise ValueError("need at least one unique plaintext chunk")
    if unique_ciphertext_chunks < unique_plaintext_chunks:
        raise ValueError(
            "ciphertext uniques cannot be fewer than plaintext uniques"
        )
    return unique_ciphertext_chunks / unique_plaintext_chunks
