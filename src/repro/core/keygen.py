"""TED key derivation (paper §3.2 and §3.4, Eqs. 1–4).

Three pieces, kept separate because the paper evaluates them separately:

* :func:`basic_key` — the strawman Eq. 1, ``K = H(kappa || P || floor(f/t))``,
  which leaks identical-file structure (design question Q2).
* :class:`KeySeedGenerator` — the key manager's side: computes key-seed
  candidates ``k_x = H(kappa || h_1 || ... || h_r || x)`` (Eq. 2) and selects
  one, either probabilistically from ``{k_0..k_x}`` (Eq. 3) or
  deterministically as ``k_x`` (the Experiment A.3 comparison arm).
* :func:`derive_key` — the client's side, ``K = H(k || P)`` (Eq. 4), so that
  neither the key manager nor an eavesdropper on its replies ever sees the
  actual chunk key.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.crypto.hashes import hash_concat


def frequency_bucket(frequency: int, t: int) -> int:
    """Compute ``x = floor(f / t)`` — the key-seed generation index.

    Raises:
        ValueError: for non-positive ``t`` or negative frequency.
    """
    if t <= 0:
        raise ValueError("balance parameter t must be positive")
    if frequency < 0:
        raise ValueError("frequency cannot be negative")
    return frequency // t


def basic_key(
    secret: bytes,
    fingerprint: bytes,
    frequency: int,
    t: int,
    algorithm: str = "sha256",
) -> bytes:
    """Eq. 1: ``K = H(kappa || P || floor(f/t))`` (the non-probabilistic
    strawman; identical files yield identical ciphertext sequences)."""
    x = frequency_bucket(frequency, t)
    return hash_concat([secret, fingerprint, x], algorithm=algorithm)


class KeySeedGenerator:
    """Key-manager-side seed generation over short hashes.

    Args:
        secret: the key manager's global secret ``kappa``.
        probabilistic: select the seed uniformly from ``{k_0..k_x}`` (Eq. 3)
            when True; return ``k_x`` deterministically when False.
        rng: randomness source for the probabilistic selection (injectable
            for reproducible experiments).
        algorithm: hash algorithm for Eq. 2 ("sha256" or "md5" matching the
            paper's secure/fast profiles).
    """

    def __init__(
        self,
        secret: bytes,
        probabilistic: bool = True,
        rng: Optional[random.Random] = None,
        algorithm: str = "sha256",
    ) -> None:
        if not secret:
            raise ValueError("the global secret must be non-empty")
        self.secret = secret
        self.probabilistic = probabilistic
        self.algorithm = algorithm
        self._rng = rng or random.Random()

    def candidate(self, short_hashes: Sequence[int], x: int) -> bytes:
        """Eq. 2: ``k_x = H(kappa || h_1 || ... || h_r || x)``."""
        if x < 0:
            raise ValueError("candidate index cannot be negative")
        parts = [self.secret]
        parts.extend(short_hashes)
        parts.append(x)
        return hash_concat(parts, algorithm=self.algorithm)

    def select_seed(
        self, short_hashes: Sequence[int], frequency: int, t: int
    ) -> bytes:
        """Eqs. 2–3: compute ``x = floor(f/t)`` and pick a seed.

        Probabilistic mode draws the generation index uniformly from
        ``[0, x]`` — duplicates therefore spread over up to ``x + 1``
        ciphertexts while still frequently reusing old seeds, which is what
        preserves deduplication.
        """
        x = frequency_bucket(frequency, t)
        if self.probabilistic and x > 0:
            x = self._rng.randint(0, x)
        return self.candidate(short_hashes, x)


def derive_key(
    seed: bytes, fingerprint: bytes, algorithm: str = "sha256"
) -> bytes:
    """Eq. 4 (client side): ``K = H(k || P)``.

    Binding the seed to the fingerprint stops the key manager — which only
    ever sees short hashes — from computing chunk keys itself.
    """
    if not seed:
        raise ValueError("seed must be non-empty")
    return hash_concat([seed, fingerprint], algorithm=algorithm)
