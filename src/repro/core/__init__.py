"""TED core: key derivation, tuning, leakage metrics, and the scheme zoo."""

from repro.core.keygen import (
    KeySeedGenerator,
    basic_key,
    derive_key,
    frequency_bucket,
)
from repro.core.kld import (
    attack_success_probability,
    kld_from_frequencies,
    kld_from_observations,
    samples_for_success,
    storage_blowup,
)
from repro.core.schemes import (
    CEScheme,
    ChunkRecord,
    EncryptionScheme,
    MLEScheme,
    MinHashScheme,
    SchemeOutput,
    SKEScheme,
    TedScheme,
)
from repro.core.ted import TedKeyManager
from repro.core.tuning import TuningSolution, configure_t, solve

__all__ = [
    "CEScheme",
    "KeySeedGenerator",
    "basic_key",
    "derive_key",
    "frequency_bucket",
    "attack_success_probability",
    "kld_from_frequencies",
    "kld_from_observations",
    "samples_for_success",
    "storage_blowup",
    "ChunkRecord",
    "EncryptionScheme",
    "MLEScheme",
    "MinHashScheme",
    "SchemeOutput",
    "SKEScheme",
    "TedScheme",
    "TedKeyManager",
    "TuningSolution",
    "configure_t",
    "solve",
]
