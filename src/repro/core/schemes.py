"""Encryption-scheme zoo for trace-driven analysis (paper §5.2).

The evaluation simulates each scheme over fingerprint traces: every trace
record ``(fingerprint, size)`` stands for one plaintext chunk copy, the key
is derived per the scheme's rule, and the resulting *ciphertext identity*
(what the provider would deduplicate on) is ``H(key || fingerprint)``.
Storage blowup and KLD fall out of the multiset of ciphertext identities.

Schemes:

* :class:`MLEScheme` — server-aided MLE: ``K = H(kappa || P)``. Exact
  deduplication, maximal frequency leakage.
* :class:`SKEScheme` — fresh random key per copy. Zero leakage (KLD 0), no
  deduplication.
* :class:`MinHashScheme` — MinHash encryption [Li et al., DSN '17]: chunks
  are grouped into variable-size segments; every chunk in a segment is keyed
  by the segment's minimum fingerprint.
* :class:`TedScheme` — BTED/FTED via :class:`repro.core.ted.TedKeyManager`.

All schemes share :class:`EncryptionScheme.process`, which returns a
:class:`SchemeOutput` carrying per-copy ciphertext identities plus the
byte-accounting needed for both chunk- and byte-based blowup.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.kld import kld_from_frequencies, storage_blowup
from repro.core.ted import TedKeyManager
from repro.core.keygen import derive_key
from repro.crypto.hashes import hash_concat
from repro.crypto.murmur3 import short_hashes

#: One plaintext chunk copy in a trace: (fingerprint bytes, chunk size).
ChunkRecord = Tuple[bytes, int]


@dataclass
class SchemeOutput:
    """Result of encrypting one snapshot under one scheme."""

    scheme: str
    ciphertext_ids: List[bytes]
    plaintext_unique: int
    plaintext_unique_bytes: int
    total_bytes: int
    ciphertext_sizes: Dict[bytes, int]

    def ciphertext_frequencies(self) -> List[int]:
        """Duplicate counts per unique ciphertext chunk."""
        return list(Counter(self.ciphertext_ids).values())

    @property
    def ciphertext_unique(self) -> int:
        """Number of unique ciphertext chunks."""
        return len(set(self.ciphertext_ids))

    def kld(self) -> float:
        """KLD of the ciphertext frequency distribution (Eq. 5)."""
        return kld_from_frequencies(self.ciphertext_frequencies())

    def blowup(self) -> float:
        """Chunk-count storage blowup over exact deduplication."""
        return storage_blowup(self.ciphertext_unique, self.plaintext_unique)

    def blowup_bytes(self) -> float:
        """Byte-accurate storage blowup over exact deduplication."""
        unique_bytes = sum(
            self.ciphertext_sizes[cid] for cid in set(self.ciphertext_ids)
        )
        return unique_bytes / self.plaintext_unique_bytes


class EncryptionScheme(ABC):
    """Common driver: derive a key per chunk copy, emit ciphertext ids."""

    name: str = "abstract"

    @abstractmethod
    def key_for(self, record: ChunkRecord, position: int) -> bytes:
        """Derive the encryption key for one chunk copy."""

    def start_snapshot(self, records: Sequence[ChunkRecord]) -> None:
        """Hook called before each snapshot (schemes reset state here)."""

    def process(self, records: Sequence[ChunkRecord]) -> SchemeOutput:
        """Encrypt a snapshot's chunk stream and collect identities."""
        self.start_snapshot(records)
        ciphertext_ids: List[bytes] = []
        sizes: Dict[bytes, int] = {}
        unique_fps: Dict[bytes, int] = {}
        total_bytes = 0
        for position, record in enumerate(records):
            fingerprint, size = record
            key = self.key_for(record, position)
            cid = hash_concat([key, fingerprint])
            ciphertext_ids.append(cid)
            sizes[cid] = size
            unique_fps[fingerprint] = size
            total_bytes += size
        return SchemeOutput(
            scheme=self.name,
            ciphertext_ids=ciphertext_ids,
            plaintext_unique=len(unique_fps),
            plaintext_unique_bytes=sum(unique_fps.values()),
            total_bytes=total_bytes,
            ciphertext_sizes=sizes,
        )


class MLEScheme(EncryptionScheme):
    """Server-aided MLE: deterministic content-derived keys."""

    name = "MLE"

    def __init__(self, secret: bytes = b"mle-global-secret") -> None:
        self.secret = secret

    def key_for(self, record: ChunkRecord, position: int) -> bytes:
        fingerprint, _ = record
        return hash_concat([self.secret, fingerprint])


class CEScheme(EncryptionScheme):
    """Convergent encryption: ``K = H(content)`` with no server secret.

    The original MLE instantiation (§2.1). Identical dedup/leakage profile
    to server-aided MLE in these trace experiments, but additionally open
    to *offline* brute-force attacks on predictable chunks — anyone can
    recompute the key of a guessed chunk. Included as the historical
    baseline; see :meth:`offline_bruteforce_key` for the attack surface.
    """

    name = "CE"

    def key_for(self, record: ChunkRecord, position: int) -> bytes:
        fingerprint, _ = record
        return hash_concat([fingerprint])

    @staticmethod
    def offline_bruteforce_key(candidate_fingerprint: bytes) -> bytes:
        """The key any adversary can derive for a guessed chunk — this is
        why DupLESS moved key generation behind a key server."""
        return hash_concat([candidate_fingerprint])


class SKEScheme(EncryptionScheme):
    """Symmetric-key encryption with a fresh random key per chunk copy."""

    name = "SKE"

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng or random.Random()

    def key_for(self, record: ChunkRecord, position: int) -> bytes:
        return self._rng.getrandbits(256).to_bytes(32, "big")


class MinHashScheme(EncryptionScheme):
    """MinHash encryption: segment-wise minimum-fingerprint keys.

    Segmentation is content-defined on the fingerprint stream: a segment
    ends at a chunk whose fingerprint satisfies a divisor condition, subject
    to byte min/avg/max bounds (paper defaults 512 KB / 1 MB / 2 MB).
    """

    name = "MinHash"

    def __init__(
        self,
        secret: bytes = b"minhash-global-secret",
        min_segment: int = 512 << 10,
        avg_segment: int = 1 << 20,
        max_segment: int = 2 << 20,
        avg_chunk: int = 8 << 10,
    ) -> None:
        if not 0 < min_segment <= avg_segment <= max_segment:
            raise ValueError("require min <= avg <= max segment sizes")
        self.secret = secret
        self.min_segment = min_segment
        self.avg_segment = avg_segment
        self.max_segment = max_segment
        # Boundary probability 1/divisor per chunk targets the average
        # segment size in chunks.
        self.divisor = max(1, avg_segment // avg_chunk)
        self._keys: List[bytes] = []

    def _segment_boundaries(
        self, records: Sequence[ChunkRecord]
    ) -> List[int]:
        """Return segment end indices (exclusive) over the record stream."""
        boundaries = []
        segment_bytes = 0
        for i, (fingerprint, size) in enumerate(records):
            segment_bytes += size
            value = int.from_bytes(fingerprint[-8:], "big")
            is_break = (
                segment_bytes >= self.min_segment
                and value % self.divisor == self.divisor - 1
            )
            if is_break or segment_bytes >= self.max_segment:
                boundaries.append(i + 1)
                segment_bytes = 0
        if not boundaries or boundaries[-1] != len(records):
            boundaries.append(len(records))
        return boundaries

    def start_snapshot(self, records: Sequence[ChunkRecord]) -> None:
        """Precompute the per-chunk segment keys for this snapshot."""
        self._keys = []
        start = 0
        for end in self._segment_boundaries(records):
            if end == start:
                continue
            minimum_fp = min(fp for fp, _ in records[start:end])
            segment_key = hash_concat([self.secret, minimum_fp])
            self._keys.extend([segment_key] * (end - start))
            start = end

    def key_for(self, record: ChunkRecord, position: int) -> bytes:
        return self._keys[position]


class TedScheme(EncryptionScheme):
    """TED (BTED or FTED) driven through the real key manager.

    In FTED "Nil" mode (``batch_size=None``), ``t`` is tuned once per
    snapshot from the snapshot's exact plaintext frequencies, exactly as the
    evaluation does (§5.2). With ``batch_size`` set, tuning happens on-line
    inside the key manager.
    """

    def __init__(
        self,
        key_manager: TedKeyManager,
        name: Optional[str] = None,
        reset_per_snapshot: bool = True,
    ) -> None:
        self.key_manager = key_manager
        # The evaluation deduplicates snapshots independently, so the
        # default resets frequency state per snapshot; a long-lived
        # deployment (one key manager across all backups) sets this False
        # and lets frequencies accumulate.
        self.reset_per_snapshot = reset_per_snapshot
        if name is None:
            if key_manager.is_fted:
                name = f"FTED(b={key_manager.blowup_factor})"
            else:
                name = f"BTED(t={key_manager.t})"
        self.name = name

    def start_snapshot(self, records: Sequence[ChunkRecord]) -> None:
        if self.reset_per_snapshot:
            self.key_manager.reset()
        if self.key_manager.is_fted and self.key_manager.batch_size is None:
            # "Nil" mode: a full counting pass through the sketch, then one
            # tuning solve — the key manager only ever sees sketch
            # estimates, which is what makes the sketch width matter
            # (Experiment A.2).
            self.key_manager.tune_from_stream(
                [self._short_hashes(fp) for fp, _ in records]
            )

    def _short_hashes(self, fingerprint: bytes):
        return short_hashes(
            fingerprint,
            self.key_manager.sketch.rows,
            self.key_manager.sketch.width,
        )

    def key_for(self, record: ChunkRecord, position: int) -> bytes:
        fingerprint, _ = record
        seed = self.key_manager.generate_seed(self._short_hashes(fingerprint))
        return derive_key(seed, fingerprint)
