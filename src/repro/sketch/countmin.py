"""Count-Min Sketch (Cormode & Muthukrishnan [23]) for chunk frequencies.

TED's key manager estimates the frequency of every chunk with an ``r x w``
counter array (paper §3.3): each of the ``r`` short hashes supplied by the
client indexes one counter per row; updates increment those counters, and
the estimate is the row-wise minimum. The estimate never under-counts, and
over-counts are bounded by ``n * e / w`` with probability at least
``1 - e^{-r}``.

Two update rules are provided:

* ``plain`` — increment all ``r`` hashed counters (the paper's rule).
* ``conservative`` — increment only the counters equal to the current
  minimum (conservative update / CU sketch), which strictly reduces
  over-estimation at identical memory cost. Exposed for the A.2 ablation
  called out in DESIGN.md §6.

The sketch accepts *pre-computed* short hashes, because in TED the client —
not the key manager — computes them (the key manager must not see chunk
identities), and also offers ``update_item``/``estimate_item`` conveniences
that hash internally via MurmurHash3 for standalone use.
"""

from __future__ import annotations

import math
import time
from typing import List, Sequence

import numpy as np

from repro.crypto.murmur3 import short_hashes
from repro.obs import metrics as obs_metrics
from repro.utils import kernels

_REGISTRY = obs_metrics.get_registry()
_SKETCH_UPDATES = _REGISTRY.counter(
    "ted_sketch_updates_total", "Count-Min Sketch update operations"
)
_SKETCH_ESTIMATES = _REGISTRY.counter(
    "ted_sketch_estimates_total", "Count-Min Sketch estimate operations"
)
_SKETCH_UPDATE_SECONDS = _REGISTRY.histogram(
    "ted_sketch_update_seconds", "Latency of one Count-Min Sketch update"
)
_SKETCH_ESTIMATE_SECONDS = _REGISTRY.histogram(
    "ted_sketch_estimate_seconds", "Latency of one Count-Min Sketch estimate"
)


class CountMinSketch:
    """Fixed-memory frequency estimator.

    Args:
        rows: number of hash rows ``r`` (the paper defaults to 4).
        width: counters per row ``w`` (the paper sweeps 2^21..2^25).
        conservative: use the conservative-update rule instead of the
            paper's plain rule.
        seed: seed for the internal hash chain (only used by the
            ``*_item`` convenience methods).

    Example:
        >>> sketch = CountMinSketch(rows=4, width=1024)
        >>> sketch.update_item(b"chunk")
        1
        >>> sketch.estimate_item(b"chunk")
        1
    """

    def __init__(
        self,
        rows: int = 4,
        width: int = 2**20,
        conservative: bool = False,
        seed: int = 0,
    ) -> None:
        if rows <= 0:
            raise ValueError("rows must be positive")
        if width <= 0:
            raise ValueError("width must be positive")
        self.rows = rows
        self.width = width
        self.conservative = conservative
        self.seed = seed
        self._counters = np.zeros((rows, width), dtype=np.uint32)
        self.total = 0  # total updates observed (the stream length n)

    # -- core API on pre-computed short hashes ---------------------------

    def _check_indices(self, indices: Sequence[int]) -> None:
        if len(indices) != self.rows:
            raise ValueError(
                f"expected {self.rows} short hashes, got {len(indices)}"
            )

    def update(self, indices: Sequence[int]) -> int:
        """Record one occurrence; returns the post-update estimate.

        Args:
            indices: one counter index per row, each in ``[0, width)``.
        """
        self._check_indices(indices)
        start = time.perf_counter()
        self.total += 1
        counters = self._counters
        if self.conservative:
            current = min(
                int(counters[row, idx]) for row, idx in enumerate(indices)
            )
            new_value = current + 1
            for row, idx in enumerate(indices):
                if counters[row, idx] < new_value:
                    counters[row, idx] = new_value
            result = new_value
        else:
            minimum = None
            for row, idx in enumerate(indices):
                value = int(counters[row, idx]) + 1
                counters[row, idx] = value
                if minimum is None or value < minimum:
                    minimum = value
            result = int(minimum)
        _SKETCH_UPDATES.inc()
        _SKETCH_UPDATE_SECONDS.observe(time.perf_counter() - start)
        return result

    def update_batch(
        self, batch: Sequence[Sequence[int]]
    ) -> List[int]:
        """Record one occurrence per item; returns post-update estimates.

        Result-identical to calling :meth:`update` once per item in
        order: for every item the estimate is the row-wise minimum of
        its counters *after* its own increment, including increments
        contributed by earlier items in the same batch that hashed to
        the same cells. The batched path reads all touched counters in
        one fancy-indexed gather, recovers the within-batch collision
        history from each occurrence's rank among equal (row, col)
        cells, and writes all increments back with one ``np.add.at`` —
        one pass over the counter array per batch instead of ``r``
        scalar reads and writes per item.

        The conservative-update rule keeps the sequential loop (its
        writes depend on each item's min, which depends on prior
        writes — there is no closed form over the batch).
        """
        if not batch:
            return []
        if self.conservative or not kernels.kernels_enabled():
            return [self.update(indices) for indices in batch]
        start = time.perf_counter()
        idx = np.asarray(batch, dtype=np.int64)
        if idx.ndim != 2 or idx.shape[1] != self.rows:
            raise ValueError(
                f"expected {self.rows} short hashes per item, got "
                f"shape {idx.shape}"
            )
        n = idx.shape[0]
        counters = self._counters
        rows_idx = np.broadcast_to(
            np.arange(self.rows, dtype=np.int64), (n, self.rows)
        )
        before = counters[rows_idx, idx].astype(np.int64)
        # Within-batch collision history: occurrence k of a given
        # (row, col) cell — in item order — lands on a counter already
        # raised k times by this batch. A stable argsort groups equal
        # cells while preserving item order inside each group, so the
        # rank is just the offset from the group start.
        flat = (rows_idx * self.width + idx).ravel()
        order = np.argsort(flat, kind="stable")
        sorted_keys = flat[order]
        group_start = np.zeros(flat.size, dtype=np.int64)
        new_group = np.empty(flat.size, dtype=bool)
        new_group[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_group[1:])
        positions = np.arange(flat.size, dtype=np.int64)
        group_start = np.maximum.accumulate(
            np.where(new_group, positions, 0)
        )
        rank = np.empty(flat.size, dtype=np.int64)
        rank[order] = positions - group_start
        estimates = (
            (before + rank.reshape(n, self.rows) + 1).min(axis=1)
        )
        np.add.at(counters, (rows_idx, idx), 1)
        self.total += n
        _SKETCH_UPDATES.inc(n)
        elapsed = time.perf_counter() - start
        _SKETCH_UPDATE_SECONDS.observe(elapsed)
        kernels.observe("sketch_update", n, int(idx.size) * 4, elapsed)
        return estimates.tolist()

    def estimate(self, indices: Sequence[int]) -> int:
        """Row-wise minimum estimate for the item hashed to ``indices``."""
        self._check_indices(indices)
        start = time.perf_counter()
        result = int(
            min(self._counters[row, idx] for row, idx in enumerate(indices))
        )
        _SKETCH_ESTIMATES.inc()
        _SKETCH_ESTIMATE_SECONDS.observe(time.perf_counter() - start)
        return result

    # -- convenience API hashing internally -------------------------------

    def hash_item(self, item: bytes) -> List[int]:
        """Compute this sketch's short hashes for ``item``."""
        return short_hashes(item, self.rows, self.width, seed=self.seed)

    def update_item(self, item: bytes) -> int:
        """Hash ``item`` and record one occurrence."""
        return self.update(self.hash_item(item))

    def estimate_item(self, item: bytes) -> int:
        """Hash ``item`` and return its frequency estimate."""
        return self.estimate(self.hash_item(item))

    # -- bookkeeping -------------------------------------------------------

    def error_bound(self) -> float:
        """Additive over-estimation bound ``n * e / w`` (paper §3.3)."""
        return self.total * math.e / self.width

    def memory_bytes(self) -> int:
        """Memory consumed by the counter array (4-byte counters)."""
        return int(self._counters.nbytes)

    def reset(self) -> None:
        """Zero all counters and the stream length."""
        self._counters.fill(0)
        self.total = 0

    def merge(self, other: "CountMinSketch") -> None:
        """Fold another sketch into this one (same geometry required).

        Merging plain-update sketches preserves estimates for the combined
        stream; merging is not defined for conservative sketches.
        """
        if (self.rows, self.width, self.seed) != (
            other.rows,
            other.width,
            other.seed,
        ):
            raise ValueError("cannot merge sketches with different geometry")
        if self.conservative or other.conservative:
            raise ValueError("conservative sketches are not mergeable")
        self._counters += other._counters
        self.total += other.total
