"""Exact frequency counter with the CountMinSketch interface.

Used as the ground-truth baseline in the sketch-accuracy experiments
(the "w = infinity" point of Experiment A.2) and in the trade-off analysis
where the paper derives ``t`` from exact per-snapshot frequencies.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict


class ExactCounter:
    """Dictionary-backed exact counter keyed by item bytes."""

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self.total = 0

    def update_item(self, item: bytes) -> int:
        """Record one occurrence; returns the exact post-update count."""
        self._counts[item] += 1
        self.total += 1
        return self._counts[item]

    def estimate_item(self, item: bytes) -> int:
        """Exact count of ``item`` (0 if never seen)."""
        return self._counts.get(item, 0)

    def counts(self) -> Dict[bytes, int]:
        """Copy of the full item → count map."""
        return dict(self._counts)

    def unique_items(self) -> int:
        """Number of distinct items observed."""
        return len(self._counts)

    def error_bound(self) -> float:
        """Exact counting has zero error (interface parity)."""
        return 0.0

    def reset(self) -> None:
        """Drop all counts."""
        self._counts.clear()
        self.total = 0
