"""Frequency-counting substrate: Count-Min Sketch and an exact baseline."""

from repro.sketch.countmin import CountMinSketch
from repro.sketch.exact import ExactCounter

__all__ = ["CountMinSketch", "ExactCounter"]
