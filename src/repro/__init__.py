"""repro — a from-scratch Python reproduction of TED / TEDStore.

Tunable Encrypted Deduplication (Li, Yang, Ren, Lee, Zhang; EuroSys 2020):
an encrypted-deduplication primitive whose key derivation depends on chunk
frequency, letting users trade storage efficiency against resistance to
frequency analysis via a single configurable storage blowup factor.

Quick start::

    from repro import TedKeyManager, TedScheme, generate_fsl_like

    dataset = generate_fsl_like(users=1, snapshots_per_user=1, scale=0.2)
    scheme = TedScheme(TedKeyManager(b"secret", blowup_factor=1.1))
    output = scheme.process(dataset.snapshots[0].records)
    print(output.kld(), output.blowup())

Package map:

* ``repro.core``      — TED key derivation, tuning, KLD, scheme zoo.
* ``repro.crypto``    — AES, modes, MurmurHash3, blind RSA/BLS, profiles.
* ``repro.sketch``    — Count-Min Sketch frequency counting.
* ``repro.chunking``  — Rabin fingerprinting + content-defined chunking.
* ``repro.storage``   — LSM fingerprint index, containers, recipes, dedup.
* ``repro.tedstore``  — the client / key-manager / provider prototype.
* ``repro.traces``    — snapshot model, formats, synthetic FSL/MS datasets.
* ``repro.analysis``  — drivers for every paper experiment (A.1–B.5).
"""

from repro.core import (
    CEScheme,
    MLEScheme,
    MinHashScheme,
    SKEScheme,
    TedKeyManager,
    TedScheme,
    attack_success_probability,
    configure_t,
    kld_from_frequencies,
    solve,
    storage_blowup,
)
from repro.sketch import CountMinSketch
from repro.tedstore import (
    KeyManagerService,
    ProviderService,
    TedStoreClient,
)
from repro.traces import (
    Dataset,
    Snapshot,
    generate_fsl_like,
    generate_ms_like,
)

__version__ = "1.0.0"

__all__ = [
    "CEScheme",
    "MLEScheme",
    "MinHashScheme",
    "SKEScheme",
    "TedKeyManager",
    "TedScheme",
    "attack_success_probability",
    "configure_t",
    "kld_from_frequencies",
    "solve",
    "storage_blowup",
    "CountMinSketch",
    "KeyManagerService",
    "ProviderService",
    "TedStoreClient",
    "Dataset",
    "Snapshot",
    "generate_fsl_like",
    "generate_ms_like",
    "__version__",
]
