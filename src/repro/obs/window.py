"""Sliding-window aggregation: live quantiles, rates, and counts.

The registry's :class:`~repro.obs.metrics.HistogramChild` is cumulative —
its quantiles describe the whole process lifetime, which is what benchmark
reports want but useless for a "p99 over the last 10 seconds" SLO view: an
hour of healthy traffic drowns a 10-second latency spike. This module adds
the windowed counterpart used by the SLO tracker (:mod:`repro.obs.slo`)
and the ``repro top`` live view.

Both classes use the same mechanism: the window is divided into a fixed
number of *slots*, each an independent aggregate stamped with the slot
epoch it was filled in. Writes land in the current slot (lazily zeroing it
when its epoch is stale), reads merge only slots whose epoch still falls
inside the window. That makes ``observe`` O(1), bounds memory at
``slots × buckets``, and gives the window a granularity of one slot — the
standard ring-of-sub-histograms design, deliberately chosen over exact
reservoir quantiles because the loadgen calls ``observe`` on every
operation from many threads.

The clock is injectable (monotonic seconds) so tests drive rotation
without sleeping.
"""

from __future__ import annotations

import bisect
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricError,
    bucket_quantile,
)


@dataclass(frozen=True)
class WindowSnapshot:
    """One consistent read of a windowed histogram."""

    count: int
    sum: float
    rate: float  # observations per second over the window
    p50: float
    p95: float
    p99: float


class _Slot:
    __slots__ = ("epoch", "counts", "count", "sum")

    def __init__(self, buckets: int) -> None:
        self.epoch = -1
        self.counts = [0] * buckets
        self.count = 0
        self.sum = 0.0

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        for i in range(len(self.counts)):
            self.counts[i] = 0
        self.count = 0
        self.sum = 0.0


class WindowedHistogram:
    """Latency histogram over a sliding time window.

    Args:
        window_seconds: span of history the estimates cover.
        slots: ring granularity; the effective window wobbles by up to
            one slot width (``window_seconds / slots``).
        bounds: finite bucket edges (defaults to the registry's log-scale
            latency buckets, so windowed and cumulative quantiles share
            resolution).
        clock: monotonic-seconds source, injectable for tests.
    """

    def __init__(
        self,
        window_seconds: float = 10.0,
        slots: int = 10,
        bounds: Sequence[float] = LATENCY_BUCKETS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_seconds <= 0:
            raise MetricError("window_seconds must be positive")
        if slots < 1:
            raise MetricError("need at least one slot")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricError("bounds must be sorted and unique")
        self.window_seconds = float(window_seconds)
        self._bounds = tuple(bounds)
        self._slot_seconds = self.window_seconds / slots
        self._slots = [_Slot(len(bounds) + 1) for _ in range(slots)]
        self._clock = clock
        self._lock = threading.Lock()

    def _current_slot(self) -> _Slot:
        epoch = int(self._clock() / self._slot_seconds)
        slot = self._slots[epoch % len(self._slots)]
        if slot.epoch != epoch:
            slot.reset(epoch)
        return slot

    def observe(self, value: float) -> None:
        """Record one observation at the current time."""
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            slot = self._current_slot()
            slot.counts[index] += 1
            slot.count += 1
            slot.sum += value

    def _merged(self) -> Tuple[List[int], int, float]:
        now_epoch = int(self._clock() / self._slot_seconds)
        oldest = now_epoch - len(self._slots) + 1
        counts = [0] * (len(self._bounds) + 1)
        count = 0
        total = 0.0
        for slot in self._slots:
            if slot.epoch < oldest or slot.epoch > now_epoch:
                continue
            for i, c in enumerate(slot.counts):
                counts[i] += c
            count += slot.count
            total += slot.sum
        return counts, count, total

    def count(self) -> int:
        with self._lock:
            return self._merged()[1]

    def rate(self) -> float:
        """Observations per second, averaged over the window."""
        with self._lock:
            return self._merged()[1] / self.window_seconds

    def quantile(self, q: float) -> float:
        """Windowed ``q``-quantile (same sentinels as the cumulative
        histogram: 0.0 when empty, clamped to the last finite edge)."""
        with self._lock:
            counts, _, _ = self._merged()
        return bucket_quantile(counts, self._bounds, q)

    def snapshot(self) -> WindowSnapshot:
        """Count, sum, rate, and p50/p95/p99 in one consistent read."""
        with self._lock:
            counts, count, total = self._merged()
        return WindowSnapshot(
            count=count,
            sum=total,
            rate=count / self.window_seconds,
            p50=bucket_quantile(counts, self._bounds, 0.5),
            p95=bucket_quantile(counts, self._bounds, 0.95),
            p99=bucket_quantile(counts, self._bounds, 0.99),
        )


class WindowedCounter:
    """Event count over a sliding time window (errors, arrivals, sheds)."""

    def __init__(
        self,
        window_seconds: float = 10.0,
        slots: int = 10,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_seconds <= 0:
            raise MetricError("window_seconds must be positive")
        if slots < 1:
            raise MetricError("need at least one slot")
        self.window_seconds = float(window_seconds)
        self._slot_seconds = self.window_seconds / slots
        # (epoch, count) pairs; a plain list ring mirroring _Slot.
        self._epochs = [-1] * slots
        self._counts = [0.0] * slots
        self._clock = clock
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("windowed counters only go up")
        epoch = int(self._clock() / self._slot_seconds)
        index = epoch % len(self._epochs)
        with self._lock:
            if self._epochs[index] != epoch:
                self._epochs[index] = epoch
                self._counts[index] = 0.0
            self._counts[index] += amount

    def value(self) -> float:
        """Total recorded inside the window."""
        now_epoch = int(self._clock() / self._slot_seconds)
        oldest = now_epoch - len(self._epochs) + 1
        with self._lock:
            return sum(
                count
                for epoch, count in zip(self._epochs, self._counts)
                if oldest <= epoch <= now_epoch
            )

    def rate(self) -> float:
        """Events per second, averaged over the window."""
        return self.value() / self.window_seconds


__all__ = [
    "WindowSnapshot",
    "WindowedCounter",
    "WindowedHistogram",
]
