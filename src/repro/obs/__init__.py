"""Observability layer: metrics registry, tracing, exporters (DESIGN.md §9).

* :mod:`repro.obs.metrics` — thread-safe Counter/Gauge/Histogram registry;
  every subsystem registers ``ted_<subsystem>_<name>`` instruments on the
  process-global default registry.
* :mod:`repro.obs.tracing` — spans with a contextvars current-span and a
  trace context that propagates across the TEDStore wire framing.
* :mod:`repro.obs.export` — Prometheus text, JSON snapshot, span trees.
* :mod:`repro.obs.window` — sliding-window quantiles/rates for live views.
* :mod:`repro.obs.slo` — per-op SLO targets, burn-rate gauges (§14).
* :mod:`repro.obs.flight` — bounded JSONL flight recorder + replay reader.
"""

from repro.obs.flight import FlightRecorder, iter_flight, read_ops
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricError,
    MetricsRegistry,
    get_registry,
    log_scale_buckets,
    set_registry,
)
from repro.obs.slo import SLO, SLOStatus, SLOTracker
from repro.obs.window import WindowedCounter, WindowedHistogram
from repro.obs.tracing import (
    Span,
    SpanContext,
    SpanRecorder,
    Tracer,
    add_event,
    decode_context,
    encode_context,
    get_tracer,
    set_tracer,
)

__all__ = [
    "FlightRecorder",
    "SLO",
    "SLOStatus",
    "SLOTracker",
    "WindowedCounter",
    "WindowedHistogram",
    "iter_flight",
    "read_ops",
    "LATENCY_BUCKETS",
    "MetricError",
    "MetricsRegistry",
    "get_registry",
    "log_scale_buckets",
    "set_registry",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "Tracer",
    "add_event",
    "decode_context",
    "encode_context",
    "get_tracer",
    "set_tracer",
]
