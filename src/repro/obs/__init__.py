"""Observability layer: metrics registry, tracing, exporters (DESIGN.md §9).

* :mod:`repro.obs.metrics` — thread-safe Counter/Gauge/Histogram registry;
  every subsystem registers ``ted_<subsystem>_<name>`` instruments on the
  process-global default registry.
* :mod:`repro.obs.tracing` — spans with a contextvars current-span and a
  trace context that propagates across the TEDStore wire framing.
* :mod:`repro.obs.export` — Prometheus text, JSON snapshot, span trees.
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricError,
    MetricsRegistry,
    get_registry,
    log_scale_buckets,
    set_registry,
)
from repro.obs.tracing import (
    Span,
    SpanContext,
    SpanRecorder,
    Tracer,
    add_event,
    decode_context,
    encode_context,
    get_tracer,
    set_tracer,
)

__all__ = [
    "LATENCY_BUCKETS",
    "MetricError",
    "MetricsRegistry",
    "get_registry",
    "log_scale_buckets",
    "set_registry",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "Tracer",
    "add_event",
    "decode_context",
    "encode_context",
    "get_tracer",
    "set_tracer",
]
