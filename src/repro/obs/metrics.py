"""Thread-safe metrics registry: counters, gauges, and histograms.

This is the measurement substrate for the whole reproduction (DESIGN.md §9).
Every subsystem registers named instruments on a process-global registry and
updates them on its hot paths; exporters (:mod:`repro.obs.export`) turn the
registry into Prometheus text or JSON, and the TEDStore wire ``stats``
message serves a registry snapshot.

Naming scheme: ``ted_<subsystem>_<name>`` with Prometheus conventions
(``_total`` suffix on counters, ``_seconds`` on latency histograms).
Cardinality rule: labels are bounded, enumerable sets (stage names, entity
roles) — never per-chunk or per-file values. Tenant ids are admitted as a
deliberate exception: a deployment serves a small, operator-curated tenant
set (DESIGN.md §13), so the ``tenant`` label stays bounded in practice;
per-file and per-chunk identifiers remain forbidden. The rule is enforced
mechanically: each instrument caps its distinct label combinations at
``max_children`` (default :data:`DEFAULT_MAX_CHILDREN`) and raises
:class:`MetricError` loudly on the first combination past the cap.

Instruments:

* :class:`Counter` — monotonically increasing value.
* :class:`Gauge` — value that can go up and down (current ``t``, dedup ratio).
* :class:`Histogram` — fixed log-scale buckets, built for latencies; exposes
  bucket counts plus interpolated quantiles.

All instruments are safe to update from multiple threads (TEDStore servers
handle each connection on its own thread). Creating an instrument that
already exists returns the existing one, so modules can declare their
instruments at import time without coordination.
"""

from __future__ import annotations

import bisect
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

Number = Union[int, float]


class MetricError(ValueError):
    """Raised on conflicting registrations or label misuse."""


def log_scale_buckets(
    start: float = 1e-5, factor: float = 2.0, count: int = 22
) -> Tuple[float, ...]:
    """Geometric bucket bounds: ``start * factor**i`` for ``i < count``.

    The default spans 10 µs to ~21 s, which covers everything from one
    sketch update to a full snapshot upload in pure Python.
    """
    if start <= 0 or factor <= 1.0 or count < 1:
        raise MetricError("need start > 0, factor > 1, count >= 1")
    return tuple(start * factor**i for i in range(count))


#: Default bounds for latency histograms (seconds).
LATENCY_BUCKETS = log_scale_buckets()

#: Coarse bounds for slow, infrequent operations (scrub passes, recovery):
#: 1 ms to ~70 min in x4 steps — fewer buckets where precision is wasted.
DURATION_BUCKETS_COARSE = log_scale_buckets(
    start=1e-3, factor=4.0, count=12
)


#: Per-instrument cap on distinct label-value combinations. A runaway
#: label (a per-file name, an unbounded tenant set) would otherwise grow
#: children — each a dict entry plus, for histograms, a bucket array —
#: until the process dies of memory, silently. Exceeding the cap raises
#: :class:`MetricError` loudly at the offending ``labels()`` call instead.
DEFAULT_MAX_CHILDREN = 1024


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote, and newline are the three characters the
    format reserves inside quoted label values.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labelnames: Sequence[str], values: Sequence[str]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(value)}"'
        for name, value in zip(labelnames, values)
    )
    return "{" + inner + "}"


def bucket_quantile(
    counts: Sequence[int], bounds: Sequence[float], q: float
) -> float:
    """Interpolated ``q``-quantile over histogram bucket ``counts``.

    ``counts`` has one slot per finite bound plus a trailing overflow
    slot. The return value is always finite; the documented sentinels are:

    * no observations → ``0.0``;
    * rank falls in the overflow bucket → the last finite bucket edge
      (``bounds[-1]``) — the histogram cannot resolve beyond it, and a
      finite clamp keeps SLO math and reports well-defined;
    * ``q == 0`` → the lower edge of the first occupied bucket;
    * ``q == 1`` → the upper edge of the last occupied bucket (or the
      overflow sentinel above).
    """
    if not 0.0 <= q <= 1.0:
        raise MetricError("quantile must be in [0, 1]")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    running = 0.0
    for i, count in enumerate(counts):
        if count == 0:
            continue
        if running + count >= rank:
            if i >= len(bounds):
                return bounds[-1]
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = bounds[i]
            fraction = max(0.0, (rank - running) / count)
            return lower + (upper - lower) * fraction
        running += count
    return bounds[-1]


class _Child:
    """One (label-value combination of an) instrument; holds the numbers."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock


class CounterChild(_Child):
    def __init__(self, lock: threading.Lock) -> None:
        super().__init__(lock)
        self._value: float = 0.0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise MetricError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class GaugeChild(_Child):
    def __init__(self, lock: threading.Lock) -> None:
        super().__init__(lock)
        self._value: float = 0.0

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: Number = 1) -> None:
        with self._lock:
            self._value -= amount

    @contextmanager
    def track(self, amount: Number = 1) -> Iterator[None]:
        """Count something in flight: ``inc`` on entry, ``dec`` on exit.

        Wrapping a queue's residency (enter on enqueue context, exit when
        the item is consumed) or a worker's busy section keeps the gauge
        equal to the current depth/occupancy without manual pairing.
        """
        self.inc(amount)
        try:
            yield
        finally:
            self.dec(amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class HistogramChild(_Child):
    def __init__(
        self, lock: threading.Lock, bounds: Tuple[float, ...]
    ) -> None:
        super().__init__(lock)
        self._bounds = bounds
        # One slot per finite bound plus the +Inf overflow slot.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: Number) -> None:
        """Record one observation."""
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager observing the elapsed wall-clock seconds."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def buckets(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style.

        The final pair uses ``float("inf")`` as its bound.
        """
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self._bounds, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating within buckets.

        Edge cases follow :func:`bucket_quantile`'s documented sentinels:
        an empty histogram returns ``0.0`` and ranks falling in the +Inf
        overflow bucket clamp to the last finite bucket edge — the result
        is always finite.
        """
        with self._lock:
            counts = list(self._counts)
        return bucket_quantile(counts, self._bounds, q)


_CHILD_FACTORIES = {
    "counter": lambda lock, bounds: CounterChild(lock),
    "gauge": lambda lock, bounds: GaugeChild(lock),
    "histogram": HistogramChild,
}


class Instrument:
    """A named metric family; labelled variants are created via ``labels``.

    An instrument declared without label names is its own single child:
    ``inc``/``set``/``observe`` apply directly. With label names, callers
    must select a child first (``instrument.labels(stage="chunking")``).
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
        max_children: int = DEFAULT_MAX_CHILDREN,
    ) -> None:
        if max_children < 1:
            raise MetricError("max_children must be positive")
        self.name = name
        self.kind = kind
        self.help = help
        self.max_children = max_children
        self.labelnames = tuple(labelnames)
        if kind == "histogram":
            bounds = tuple(buckets) if buckets is not None else LATENCY_BUCKETS
            if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
                raise MetricError("histogram buckets must be sorted and unique")
            self.buckets_bounds: Tuple[float, ...] = bounds
        else:
            self.buckets_bounds = ()
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], _Child] = {}
        if not self.labelnames:
            self._default = self._make_child()
            self._children[()] = self._default

    def _make_child(self) -> _Child:
        return _CHILD_FACTORIES[self.kind](self._lock, self.buckets_bounds)

    def labels(self, **labelvalues: str) -> _Child:
        """Fetch (creating on first use) the child for a label combination."""
        if set(labelvalues) != set(self.labelnames):
            raise MetricError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if len(self._children) >= self.max_children:
                    # Cardinality guard: refusing loudly beats exhausting
                    # memory one child at a time (the failure would
                    # otherwise surface far from the offending label).
                    raise MetricError(
                        f"{self.name} exceeded {self.max_children} label "
                        f"combinations (rejecting {key!r}); a label is "
                        "carrying unbounded values"
                    )
                child = self._make_child()
                self._children[key] = child
            return child

    def children(self) -> List[Tuple[Tuple[str, ...], _Child]]:
        """All (label_values, child) pairs, sorted by label values."""
        with self._lock:
            return sorted(self._children.items())

    # -- unlabelled convenience passthroughs -------------------------------

    def _only_child(self) -> _Child:
        if self.labelnames:
            raise MetricError(
                f"{self.name} is labelled by {self.labelnames}; "
                "call .labels(...) first"
            )
        return self._default

    def inc(self, amount: Number = 1) -> None:
        self._only_child().inc(amount)  # type: ignore[attr-defined]

    def set(self, value: Number) -> None:
        self._only_child().set(value)  # type: ignore[attr-defined]

    def dec(self, amount: Number = 1) -> None:
        self._only_child().dec(amount)  # type: ignore[attr-defined]

    def observe(self, value: Number) -> None:
        self._only_child().observe(value)  # type: ignore[attr-defined]

    def time(self):
        return self._only_child().time()  # type: ignore[attr-defined]

    def track(self, amount: Number = 1):
        return self._only_child().track(amount)  # type: ignore[attr-defined]

    @property
    def value(self) -> float:
        return self._only_child().value  # type: ignore[attr-defined]

    def quantile(self, q: float) -> float:
        return self._only_child().quantile(q)  # type: ignore[attr-defined]

    def reset(self) -> None:
        """Zero this instrument (drops labelled children)."""
        with self._lock:
            self._children.clear()
            if not self.labelnames:
                self._default = self._make_child()
                self._children[()] = self._default


class MetricsRegistry:
    """Process-wide collection of instruments.

    ``counter``/``gauge``/``histogram`` are get-or-create: re-registering
    the same name with the same shape returns the existing instrument;
    conflicting shapes raise :class:`MetricError`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Instrument] = {}

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
        max_children: int = DEFAULT_MAX_CHILDREN,
    ) -> Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != tuple(
                    labelnames
                ):
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            instrument = Instrument(
                name, kind, help, labelnames, buckets, max_children
            )
            self._instruments[name] = instrument
            return instrument

    def counter(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_children: int = DEFAULT_MAX_CHILDREN,
    ) -> Instrument:
        return self._register(
            name, "counter", help, labelnames, max_children=max_children
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        max_children: int = DEFAULT_MAX_CHILDREN,
    ) -> Instrument:
        return self._register(
            name, "gauge", help, labelnames, max_children=max_children
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
        max_children: int = DEFAULT_MAX_CHILDREN,
    ) -> Instrument:
        return self._register(
            name, "histogram", help, labelnames, buckets, max_children
        )

    def get(self, name: str) -> Optional[Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def instruments(self) -> List[Instrument]:
        with self._lock:
            return sorted(self._instruments.values(), key=lambda i: i.name)

    def reset(self) -> None:
        """Zero every instrument (used by tests and the trace CLI)."""
        for instrument in self.instruments():
            instrument.reset()

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Number]:
        """Flattened name → value map.

        Counters/gauges appear as ``name{labels}``; histograms expand to
        ``_count``, ``_sum``, and interpolated ``_p50``/``_p95``/``_p99``
        series — the quantiles are what rides the wire ``stats`` message.
        """
        out: Dict[str, Number] = {}
        for instrument in self.instruments():
            for values, child in instrument.children():
                suffix = _format_labels(instrument.labelnames, values)
                if instrument.kind == "histogram":
                    out[f"{instrument.name}_count{suffix}"] = child.count
                    out[f"{instrument.name}_sum{suffix}"] = child.sum
                    for q, tag in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                        out[f"{instrument.name}_{tag}{suffix}"] = (
                            child.quantile(q)
                        )
                else:
                    value = child.value
                    if value == int(value):
                        value = int(value)
                    out[f"{instrument.name}{suffix}"] = value
        return out

    def snapshot_pairs(self) -> List[Tuple[str, Number]]:
        """The snapshot as ordered pairs (the wire stats payload shape)."""
        return sorted(self.snapshot().items())


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (embedding hook).

    Must run before instrumented modules are imported — instruments are
    bound to the registry current at declaration time. Tests should prefer
    ``get_registry().reset()``.
    """
    global _default_registry
    _default_registry = registry
    return registry
