"""Flight recorder: bounded structured-JSONL event log for post-mortems.

A load run (or any long-lived deployment) appends one JSON object per
line to an on-disk file: per-operation outcomes, periodic metric deltas,
finished spans, and run metadata. The file is the durable complement of
the in-memory registry/recorder — after a run ends (or a process dies),
``repro top --replay <file>`` reconstructs the per-op latency timeline
from it.

Event shapes (every event carries ``ts`` — seconds, monotonic within the
file — and ``kind``):

* ``meta`` — run metadata (profile name, seed, started-at wall clock).
* ``op`` — one finished operation: ``op``, ``tenant``, ``seconds``,
  ``ok``, ``bytes``, optional ``error``.
* ``metrics`` — delta of registry counters since the previous
  ``metrics`` event (only changed series, so idle periods cost bytes
  proportional to activity, not registry size).
* ``span`` — one finished span (name, duration, status).

**Boundedness.** The recorder enforces a byte budget with two-file
rotation: when the active file would exceed half the budget it is
renamed to ``<path>.1`` (clobbering the previous rollover) and a fresh
active file is started. Total disk usage stays under ``max_bytes`` plus
one event, and the most recent half-budget of history is always intact.
:func:`iter_flight` reads the rollover first, then the active file, and
tolerates a torn final line (a crashed writer), mirroring the WAL
replay convention (DESIGN.md §12).
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional

from repro.obs import metrics as obs_metrics
from repro.obs.tracing import Span

ROTATED_SUFFIX = ".1"


class FlightRecorder:
    """Append-only, size-bounded JSONL event writer. Thread-safe.

    Args:
        path: active file path; the rollover lives at ``<path>.1``.
        max_bytes: total on-disk budget across both files.
        clock: timestamp source (monotonic seconds); injectable.
    """

    def __init__(
        self,
        path: os.PathLike,
        max_bytes: int = 8 << 20,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_bytes < 4096:
            raise ValueError("max_bytes must be at least 4096")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self._clock = clock
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file: Optional[io.TextIOWrapper] = open(
            self.path, "a", encoding="utf-8"
        )
        self._size = self.path.stat().st_size
        self._last_counters: Dict[str, float] = {}

    # -- core ----------------------------------------------------------------

    def emit(self, kind: str, **fields: object) -> None:
        """Write one event; rotates first if the budget would be crossed."""
        event = {"ts": round(self._clock(), 6), "kind": kind}
        event.update(fields)
        line = json.dumps(event, separators=(",", ":")) + "\n"
        encoded = len(line.encode("utf-8"))
        with self._lock:
            if self._file is None:
                return  # closed: late events are dropped, not crashes
            if self._size + encoded > self.max_bytes // 2:
                self._rotate_locked()
            self._file.write(line)
            self._size += encoded

    def _rotate_locked(self) -> None:
        self._file.close()
        os.replace(self.path, self.path.with_name(
            self.path.name + ROTATED_SUFFIX
        ))
        self._file = open(self.path, "a", encoding="utf-8")
        self._size = 0

    def flush(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- typed emitters -------------------------------------------------------

    def emit_meta(self, **fields: object) -> None:
        self.emit("meta", **fields)

    def emit_op(
        self,
        op: str,
        tenant: str,
        seconds: float,
        ok: bool,
        nbytes: int = 0,
        error: Optional[str] = None,
    ) -> None:
        fields: Dict[str, object] = {
            "op": op,
            "tenant": tenant,
            "seconds": round(seconds, 6),
            "ok": ok,
            "bytes": nbytes,
        }
        if error is not None:
            fields["error"] = error
        self.emit("op", **fields)

    def emit_metrics_delta(
        self, registry: Optional[obs_metrics.MetricsRegistry] = None
    ) -> None:
        """Record counter/gauge movement since the previous delta event.

        Histogram series are skipped (ops already carry exact latencies);
        unchanged series are skipped so steady state is nearly free.
        """
        registry = registry or obs_metrics.get_registry()
        current: Dict[str, float] = {}
        for instrument in registry.instruments():
            if instrument.kind == "histogram":
                continue
            for values, child in instrument.children():
                suffix = obs_metrics._format_labels(
                    instrument.labelnames, values
                )
                current[f"{instrument.name}{suffix}"] = child.value
        delta = {
            name: value
            for name, value in current.items()
            if self._last_counters.get(name) != value
        }
        self._last_counters = current
        if delta:
            self.emit("metrics", delta=delta)

    def emit_span(self, span: Span) -> None:
        self.emit(
            "span",
            name=span.name,
            trace=span.trace_id.hex(),
            seconds=round(span.duration or 0.0, 6),
            status=span.status,
        )


def iter_flight(path: os.PathLike) -> Iterator[dict]:
    """Yield every intact event from a flight file, oldest first.

    Reads ``<path>.1`` (the rollover) before ``<path>``. A torn final
    line — the writer died mid-append — is skipped silently; a torn line
    anywhere else raises ``ValueError`` (the file is damaged, not merely
    truncated).
    """
    path = Path(path)
    parts: List[Path] = []
    rotated = path.with_name(path.name + ROTATED_SUFFIX)
    if rotated.exists():
        parts.append(rotated)
    parts.append(path)
    if not path.exists() and not parts[:-1]:
        raise FileNotFoundError(path)
    for index, part in enumerate(parts):
        if not part.exists():
            continue
        lines = part.read_text(encoding="utf-8").splitlines()
        last_file = index == len(parts) - 1
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except ValueError:
                if last_file and lineno == len(lines) - 1:
                    return  # torn tail from a crashed writer
                raise ValueError(
                    f"damaged flight record at {part}:{lineno + 1}"
                )


def read_ops(path: os.PathLike) -> List[dict]:
    """Just the ``op`` events of a flight file, oldest first."""
    return [event for event in iter_flight(path) if event["kind"] == "op"]


__all__ = ["FlightRecorder", "iter_flight", "read_ops", "ROTATED_SUFFIX"]
