"""Tracing: spans, a contextvars-based current span, and wire propagation.

A *span* is one timed operation (an upload, one RPC, one keygen batch); a
*trace* is the tree of spans sharing a ``trace_id``. The current span lives
in a :mod:`contextvars` variable, so nesting works across ordinary calls
and in-process transports without plumbing; crossing the TEDStore wire is
explicit — the client encodes its current span context into the optional
trace field of the message framing and the server installs it as the
remote parent (:mod:`repro.tedstore.messages`).

Wire context format (version-tolerant, 25 bytes)::

    [version u8 = 1][trace_id 16 bytes][span_id 8 bytes]

Decoders return ``None`` for unknown versions or malformed blobs — a peer
that does not understand the context simply proceeds untraced, it never
fails the request.

Spans are recorded into a bounded in-memory :class:`SpanRecorder`; the
``repro trace`` CLI and the trace-propagation tests read trees out of it.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, List, Optional, Tuple

from repro.obs import metrics as obs_metrics

_SPANS_DROPPED = obs_metrics.get_registry().counter(
    "ted_trace_spans_dropped_total",
    "Finished spans evicted from a full SpanRecorder (oldest first)",
)

TRACE_CONTEXT_VERSION = 1
TRACE_ID_BYTES = 16
SPAN_ID_BYTES = 8
_CONTEXT_LEN = 1 + TRACE_ID_BYTES + SPAN_ID_BYTES


@dataclass(frozen=True)
class SpanContext:
    """The propagated identity of a span: which trace, which parent."""

    trace_id: bytes
    span_id: bytes

    @property
    def trace_id_hex(self) -> str:
        return self.trace_id.hex()

    @property
    def span_id_hex(self) -> str:
        return self.span_id.hex()


def encode_context(context: SpanContext) -> bytes:
    """Serialize a span context for the wire trace field."""
    return (
        bytes([TRACE_CONTEXT_VERSION]) + context.trace_id + context.span_id
    )


def decode_context(data: Optional[bytes]) -> Optional[SpanContext]:
    """Parse a wire trace field; ``None`` for absent/unknown/malformed.

    Tolerance is the contract: an old or corrupt context must degrade to
    "untraced", never to a protocol error.
    """
    if not data or len(data) != _CONTEXT_LEN:
        return None
    if data[0] != TRACE_CONTEXT_VERSION:
        return None
    return SpanContext(
        trace_id=bytes(data[1 : 1 + TRACE_ID_BYTES]),
        span_id=bytes(data[1 + TRACE_ID_BYTES :]),
    )


@dataclass
class Span:
    """One timed operation within a trace."""

    name: str
    trace_id: bytes
    span_id: bytes
    parent_span_id: Optional[bytes] = None
    start_time: float = 0.0
    end_time: Optional[float] = None
    attributes: Dict[str, object] = field(default_factory=dict)
    events: List[Tuple[float, str, Dict[str, object]]] = field(
        default_factory=list
    )
    status: str = "ok"
    error: Optional[str] = None

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def duration(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.start_time

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def add_event(self, name: str, **attributes: object) -> None:
        """Append a timestamped point event (retries, reconnects, ...)."""
        self.events.append((time.perf_counter(), name, attributes))

    def event_names(self) -> List[str]:
        return [name for _, name, _ in self.events]


class SpanRecorder:
    """Bounded, thread-safe store of finished spans (newest kept).

    Once full, recording a span evicts the oldest one; evictions are
    counted both per recorder (:attr:`dropped`) and on the process-global
    ``ted_trace_spans_dropped_total`` counter so the loss is visible in
    ``repro trace`` output and metric exports instead of silent.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self._dropped = 0
        self._lock = threading.Lock()

    def record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                self._dropped += 1
                _SPANS_DROPPED.inc()
            self._spans.append(span)

    @property
    def used(self) -> int:
        """Spans currently held (at most :attr:`capacity`)."""
        with self._lock:
            return len(self._spans)

    @property
    def dropped(self) -> int:
        """Spans evicted from this recorder since construction."""
        with self._lock:
            return self._dropped

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def for_trace(self, trace_id: bytes) -> List[Span]:
        """All recorded spans of one trace, in completion order."""
        return [s for s in self.spans() if s.trace_id == trace_id]

    def trace_ids(self) -> List[bytes]:
        """Distinct trace ids, oldest first."""
        seen: Dict[bytes, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


class Tracer:
    """Creates spans, tracks the current one, records finished ones.

    Args:
        recorder: destination for finished spans.
        id_source: ``f(num_bytes) -> bytes`` randomness hook; injectable
            for deterministic tests.
    """

    def __init__(
        self,
        recorder: Optional[SpanRecorder] = None,
        id_source: Callable[[int], bytes] = os.urandom,
    ) -> None:
        self.recorder = recorder or SpanRecorder()
        self._id_source = id_source
        self._current: contextvars.ContextVar[Optional[Span]] = (
            contextvars.ContextVar(f"repro-span-{id(self)}", default=None)
        )

    # -- current-span accessors ---------------------------------------------

    def current_span(self) -> Optional[Span]:
        return self._current.get()

    def current_context(self) -> Optional[SpanContext]:
        span = self._current.get()
        return span.context if span is not None else None

    def inject(self) -> Optional[bytes]:
        """The current span context encoded for the wire, if any."""
        context = self.current_context()
        return encode_context(context) if context is not None else None

    # -- span lifecycle ------------------------------------------------------

    @contextmanager
    def span(
        self,
        name: str,
        attributes: Optional[Dict[str, object]] = None,
        remote_parent: Optional[SpanContext] = None,
    ) -> Iterator[Span]:
        """Run a block under a new span.

        The parent is ``remote_parent`` when given (the server side of a
        wire hop), otherwise the current span of this context; with
        neither, the span starts a new trace.
        """
        if remote_parent is not None:
            trace_id = remote_parent.trace_id
            parent_id: Optional[bytes] = remote_parent.span_id
        else:
            parent = self._current.get()
            if parent is not None:
                trace_id = parent.trace_id
                parent_id = parent.span_id
            else:
                trace_id = self._id_source(TRACE_ID_BYTES)
                parent_id = None
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=self._id_source(SPAN_ID_BYTES),
            parent_span_id=parent_id,
            start_time=time.perf_counter(),
            attributes=dict(attributes or {}),
        )
        token = self._current.set(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            self._current.reset(token)
            span.end_time = time.perf_counter()
            self.recorder.record(span)


_default_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-global default tracer."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the default tracer (embedding/test hook)."""
    global _default_tracer
    _default_tracer = tracer
    return tracer


def add_event(name: str, **attributes: object) -> None:
    """Attach an event to the default tracer's current span, if any.

    The no-current-span case is a silent no-op so low-level code (the wire
    retry loop) can emit events unconditionally.
    """
    span = _default_tracer.current_span()
    if span is not None:
        span.add_event(name, **attributes)
