"""SLO tracking: per-op latency/error targets, live windows, burn rates.

An :class:`SLO` declares what "healthy" means for one operation — a p99
latency target and/or a maximum error ratio, both judged over a sliding
window (:mod:`repro.obs.window`). The :class:`SLOTracker` ingests one
``observe(op, seconds, error=...)`` call per operation, keeps the
windowed state, and publishes the judgement as ordinary registry gauges
so SLO health rides every existing surface (Prometheus text, the wire
``stats`` message, ``repro stats``):

* ``ted_slo_window_p99_seconds{op=}`` / ``..._p50_seconds`` — live
  windowed quantiles;
* ``ted_slo_error_ratio{op=}`` — windowed errors / operations;
* ``ted_slo_burn_rate{op=,kind=}`` — error-budget consumption rate
  (see below), ``kind`` ∈ {``latency``, ``error``};
* ``ted_slo_breached{op=}`` — 0/1, the gate the loadgen CLI exits on;
* ``ted_slo_breach_total{op=}`` — breach-transition counter.

**Burn rate** follows the SRE convention: how fast the error budget is
being spent, normalized so 1.0 means "exactly at target". For an error
SLO it is ``window_error_ratio / max_error_ratio``. For a p99 latency
SLO the budget is the 1% of requests allowed over the target, so the
burn is ``fraction_of_requests_over_target / 0.01``. A burn of 10 means
the budget for the window is being consumed ten times too fast.

Operations observed without a declared SLO still get windows and the
quantile/ratio gauges (the ``repro top`` view wants them) — they simply
can never breach.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs import metrics as obs_metrics
from repro.obs.window import WindowedCounter, WindowedHistogram

#: Tail fraction a p99 target budgets for: 1% of requests may exceed it.
_P99_BUDGET = 0.01

_REGISTRY = obs_metrics.get_registry()
_WINDOW_P50 = _REGISTRY.gauge(
    "ted_slo_window_p50_seconds",
    "Sliding-window p50 latency per tracked operation",
    labelnames=("op",),
)
_WINDOW_P99 = _REGISTRY.gauge(
    "ted_slo_window_p99_seconds",
    "Sliding-window p99 latency per tracked operation",
    labelnames=("op",),
)
_ERROR_RATIO = _REGISTRY.gauge(
    "ted_slo_error_ratio",
    "Sliding-window errors / operations per tracked operation",
    labelnames=("op",),
)
_BURN_RATE = _REGISTRY.gauge(
    "ted_slo_burn_rate",
    "Error-budget burn rate (1.0 = exactly at target)",
    labelnames=("op", "kind"),
)
_BREACHED = _REGISTRY.gauge(
    "ted_slo_breached",
    "1 while the operation is violating a declared SLO, else 0",
    labelnames=("op",),
)
_BREACHES = _REGISTRY.counter(
    "ted_slo_breach_total",
    "Healthy-to-breached transitions per operation",
    labelnames=("op",),
)


@dataclass(frozen=True)
class SLO:
    """Health targets for one operation, judged over a sliding window."""

    op: str
    p99_seconds: Optional[float] = None
    max_error_ratio: Optional[float] = None
    window_seconds: float = 10.0

    def __post_init__(self) -> None:
        if self.p99_seconds is None and self.max_error_ratio is None:
            raise ValueError(f"SLO for {self.op!r} declares no target")
        if self.p99_seconds is not None and self.p99_seconds <= 0:
            raise ValueError("p99_seconds must be positive")
        if self.max_error_ratio is not None and not (
            0.0 < self.max_error_ratio <= 1.0
        ):
            raise ValueError("max_error_ratio must be in (0, 1]")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")


@dataclass(frozen=True)
class SLOStatus:
    """One evaluation of one operation against its (possible) SLO."""

    op: str
    window_seconds: float
    count: int
    errors: int
    p50: float
    p95: float
    p99: float
    error_ratio: float
    latency_burn_rate: float
    error_burn_rate: float
    breached: bool
    reasons: tuple

    def describe(self) -> str:
        state = "BREACHED" if self.breached else "ok"
        detail = f" ({'; '.join(self.reasons)})" if self.reasons else ""
        return (
            f"{self.op}: {state}{detail} — window p99 "
            f"{self.p99 * 1000:.1f}ms, errors {self.error_ratio:.2%} "
            f"over {self.count} ops"
        )


class _OpState:
    def __init__(
        self,
        window_seconds: float,
        clock: Callable[[], float],
    ) -> None:
        self.latency = WindowedHistogram(
            window_seconds=window_seconds, clock=clock
        )
        self.errors = WindowedCounter(
            window_seconds=window_seconds, clock=clock
        )
        self.over_target = WindowedCounter(
            window_seconds=window_seconds, clock=clock
        )
        self.breached = False


class SLOTracker:
    """Ingests per-operation outcomes and judges them against SLOs.

    Args:
        slos: declared targets; operations not listed are tracked
            (windows, gauges) but never breach.
        clock: monotonic-seconds source shared by all windows,
            injectable for tests.
        default_window_seconds: window for operations without a
            declared SLO.
    """

    def __init__(
        self,
        slos: Sequence[SLO] = (),
        clock: Callable[[], float] = time.monotonic,
        default_window_seconds: float = 10.0,
    ) -> None:
        self._slos: Dict[str, SLO] = {}
        for slo in slos:
            if slo.op in self._slos:
                raise ValueError(f"duplicate SLO for op {slo.op!r}")
            self._slos[slo.op] = slo
        self._clock = clock
        self._default_window = default_window_seconds
        self._states: Dict[str, _OpState] = {}
        self._lock = threading.Lock()

    def slo_for(self, op: str) -> Optional[SLO]:
        return self._slos.get(op)

    def _state(self, op: str) -> _OpState:
        with self._lock:
            state = self._states.get(op)
            if state is None:
                slo = self._slos.get(op)
                window = (
                    slo.window_seconds if slo else self._default_window
                )
                state = _OpState(window, self._clock)
                self._states[op] = state
            return state

    def observe(self, op: str, seconds: float, error: bool = False) -> None:
        """Record one finished operation (latency always, error flagged)."""
        state = self._state(op)
        state.latency.observe(seconds)
        if error:
            state.errors.inc()
        slo = self._slos.get(op)
        if (
            slo is not None
            and slo.p99_seconds is not None
            and seconds > slo.p99_seconds
        ):
            state.over_target.inc()

    def evaluate(self) -> List[SLOStatus]:
        """Judge every tracked operation and refresh the SLO gauges."""
        with self._lock:
            items = sorted(self._states.items())
        out: List[SLOStatus] = []
        for op, state in items:
            snap = state.latency.snapshot()
            errors = int(state.errors.value())
            error_ratio = errors / snap.count if snap.count else 0.0
            slo = self._slos.get(op)
            reasons: List[str] = []
            latency_burn = 0.0
            error_burn = 0.0
            if slo is not None and snap.count:
                if slo.p99_seconds is not None:
                    over = state.over_target.value()
                    latency_burn = (over / snap.count) / _P99_BUDGET
                    if snap.p99 > slo.p99_seconds:
                        reasons.append(
                            f"p99 {snap.p99 * 1000:.1f}ms > target "
                            f"{slo.p99_seconds * 1000:.1f}ms"
                        )
                if slo.max_error_ratio is not None:
                    error_burn = error_ratio / slo.max_error_ratio
                    if error_ratio > slo.max_error_ratio:
                        reasons.append(
                            f"error ratio {error_ratio:.2%} > "
                            f"{slo.max_error_ratio:.2%}"
                        )
            breached = bool(reasons)
            if breached and not state.breached:
                _BREACHES.labels(op=op).inc()
            state.breached = breached
            window = (
                slo.window_seconds if slo else self._default_window
            )
            status = SLOStatus(
                op=op,
                window_seconds=window,
                count=snap.count,
                errors=errors,
                p50=snap.p50,
                p95=snap.p95,
                p99=snap.p99,
                error_ratio=error_ratio,
                latency_burn_rate=latency_burn,
                error_burn_rate=error_burn,
                breached=breached,
                reasons=tuple(reasons),
            )
            _WINDOW_P50.labels(op=op).set(snap.p50)
            _WINDOW_P99.labels(op=op).set(snap.p99)
            _ERROR_RATIO.labels(op=op).set(error_ratio)
            _BURN_RATE.labels(op=op, kind="latency").set(latency_burn)
            _BURN_RATE.labels(op=op, kind="error").set(error_burn)
            _BREACHED.labels(op=op).set(1 if breached else 0)
            out.append(status)
        return out

    def breached(self) -> bool:
        """Whether any operation currently violates its SLO."""
        return any(status.breached for status in self.evaluate())


__all__ = ["SLO", "SLOStatus", "SLOTracker"]
