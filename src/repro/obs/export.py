"""Exporters: Prometheus text format, JSON snapshots, span-tree rendering.

These turn the in-memory registry/recorder state into the three shapes
operators actually consume: a Prometheus scrape body, a machine-readable
JSON document (the benchmark emitter uses this), and an indented span tree
for the ``repro trace`` CLI.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import (
    MetricsRegistry,
    _format_labels,
    escape_label_value,
    get_registry,
)
from repro.obs.tracing import Span, SpanRecorder


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: Optional[MetricsRegistry] = None) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters/gauges emit one sample per label combination; histograms emit
    cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
    """
    registry = registry or get_registry()
    lines: List[str] = []
    for instrument in registry.instruments():
        # HELP/TYPE are emitted exactly once per metric family, before
        # its samples, regardless of how many labelled children exist.
        if instrument.help:
            escaped_help = instrument.help.replace("\\", "\\\\").replace(
                "\n", "\\n"
            )
            lines.append(f"# HELP {instrument.name} {escaped_help}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        for values, child in instrument.children():
            labels = _format_labels(instrument.labelnames, values)
            if instrument.kind == "histogram":
                for bound, cumulative in child.buckets():
                    pairs = [
                        (name, escape_label_value(value))
                        for name, value in zip(instrument.labelnames, values)
                    ]
                    pairs.append(("le", _format_value(bound)))
                    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
                    lines.append(
                        f"{instrument.name}_bucket{{{inner}}} {cumulative}"
                    )
                lines.append(
                    f"{instrument.name}_sum{labels} "
                    f"{_format_value(child.sum)}"
                )
                lines.append(f"{instrument.name}_count{labels} {child.count}")
            else:
                lines.append(
                    f"{instrument.name}{labels} {_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n"


def json_snapshot(registry: Optional[MetricsRegistry] = None) -> Dict:
    """Registry snapshot as a JSON-serializable document.

    Histograms appear flattened (``_count``/``_sum``/``_p50``/``_p95``/
    ``_p99``), matching what the wire stats message carries.
    """
    registry = registry or get_registry()
    return {"metrics": registry.snapshot()}


def json_snapshot_text(registry: Optional[MetricsRegistry] = None) -> str:
    """:func:`json_snapshot`, serialized with stable key order."""
    return json.dumps(json_snapshot(registry), indent=2, sort_keys=True)


# -- span trees ---------------------------------------------------------------


def _render_span(
    span: Span,
    children: Dict[Optional[bytes], List[Span]],
    depth: int,
    lines: List[str],
) -> None:
    duration = span.duration
    timing = f"{duration * 1000:.2f}ms" if duration is not None else "open"
    flags = "" if span.status == "ok" else f" !{span.status}: {span.error}"
    attrs = ""
    if span.attributes:
        attrs = " " + ", ".join(
            f"{k}={v}" for k, v in sorted(span.attributes.items())
        )
    lines.append(f"{'  ' * depth}- {span.name} [{timing}]{attrs}{flags}")
    for stamp, name, attributes in span.events:
        extra = ""
        if attributes:
            extra = " " + ", ".join(
                f"{k}={v}" for k, v in sorted(attributes.items())
            )
        lines.append(f"{'  ' * (depth + 1)}* event {name}{extra}")
    for child in children.get(span.span_id, []):
        _render_span(child, children, depth + 1, lines)


def format_trace(spans: Sequence[Span]) -> str:
    """Render one trace's spans as an indented tree.

    Spans whose parent is missing from ``spans`` (e.g. the parent ran in a
    peer process whose recorder we cannot see) are shown as roots.
    """
    if not spans:
        return "(no spans)"
    by_id = {span.span_id: span for span in spans}
    children: Dict[Optional[bytes], List[Span]] = {}
    roots: List[Span] = []
    for span in sorted(spans, key=lambda s: s.start_time):
        if span.parent_span_id is not None and span.parent_span_id in by_id:
            children.setdefault(span.parent_span_id, []).append(span)
        else:
            roots.append(span)
    lines = [f"trace {spans[0].trace_id.hex()}"]
    for root in roots:
        _render_span(root, children, 1, lines)
    return "\n".join(lines)


def format_recorder(recorder: SpanRecorder) -> str:
    """Render every trace in a recorder, oldest trace first."""
    parts = []
    for trace_id in recorder.trace_ids():
        parts.append(format_trace(recorder.for_trace(trace_id)))
    return "\n\n".join(parts) if parts else "(no traces recorded)"
