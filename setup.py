"""Shim for environments without the `wheel` package: enables the legacy
`setup.py develop` editable-install path. All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
