"""Workload profiles: validation, scaling, TOML loading."""

from __future__ import annotations

import pytest

from repro.loadgen.workload import (
    FaultMix,
    FileShape,
    OpMix,
    TenantShape,
    WorkloadProfile,
    _parse_simple_toml,
)


class TestShapes:
    def test_file_shape_validation(self):
        with pytest.raises(ValueError):
            FileShape(min_kb=0)
        with pytest.raises(ValueError):
            FileShape(min_kb=64, max_kb=8)
        with pytest.raises(ValueError):
            FileShape(unit_kb=16, min_kb=8)
        with pytest.raises(ValueError):
            FileShape(dup_chunk_prob=1.5)

    def test_op_mix_normalizes(self):
        assert OpMix(upload=3, restore=1).upload_fraction == 0.75
        with pytest.raises(ValueError):
            OpMix(upload=0, restore=0)
        with pytest.raises(ValueError):
            OpMix(upload=-1)

    def test_tenant_weights_skew(self):
        uniform = TenantShape(count=3, skew=0.0).weights()
        assert uniform == (1.0, 1.0, 1.0)
        skewed = TenantShape(count=3, skew=1.0).weights()
        assert skewed[0] > skewed[1] > skewed[2]
        with pytest.raises(ValueError):
            TenantShape(count=0)

    def test_fault_mix_plan_carries_seed(self):
        mix = FaultMix(drop_rate=0.1, delay_rate=0.2, delay_seconds=0.01)
        assert mix.enabled()
        plan = mix.plan(seed=99)
        assert plan.drop_rate == 0.1
        assert plan.seed == 99
        assert not FaultMix().enabled()


class TestProfile:
    def test_defaults_are_valid(self):
        profile = WorkloadProfile()
        assert profile.mode == "closed"
        assert profile.tenants.count == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(mode="burst")
        with pytest.raises(ValueError):
            WorkloadProfile(clients=0)
        with pytest.raises(ValueError):
            WorkloadProfile(duration_seconds=0)
        from repro.obs.slo import SLO

        slo = SLO(op="upload", p99_seconds=1.0)
        with pytest.raises(ValueError, match="duplicate SLO"):
            WorkloadProfile(slos=(slo, slo))

    def test_scaled_shrinks_size_but_not_shape(self):
        profile = WorkloadProfile(
            clients=100,
            arrival_rate=200.0,
            max_inflight=40,
            duration_seconds=60.0,
            tenants=TenantShape(count=5),
        )
        small = profile.scaled(0.1)
        assert small.clients == 10
        assert small.arrival_rate == pytest.approx(20.0)
        assert small.duration_seconds == pytest.approx(6.0)
        assert small.tenants.count == 5  # shape stays
        assert small.seed == profile.seed
        assert profile.scaled(1.0) is profile
        with pytest.raises(ValueError):
            profile.scaled(0)

    def test_scaled_never_drops_below_one_client(self):
        small = WorkloadProfile(clients=2).scaled(0.01)
        assert small.clients == 1
        assert small.duration_seconds >= 1.0

    def test_from_dict_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown profile keys"):
            WorkloadProfile.from_dict({"clientz": 4})
        with pytest.raises(ValueError, match="unknown SLO keys"):
            WorkloadProfile.from_dict(
                {"slo": {"upload": {"p99_msec": 50}}}
            )

    def test_from_dict_full(self):
        profile = WorkloadProfile.from_dict(
            {
                "name": "big",
                "mode": "open",
                "arrival_rate": 500.0,
                "files": {"min_kb": 16, "max_kb": 128, "unit_kb": 16},
                "mix": {"upload": 1, "restore": 1},
                "tenants": {"count": 8, "skew": 1.2},
                "faults": {"drop_rate": 0.01},
                "slo": {
                    "upload": {"p99_ms": 250, "max_error_ratio": 0.05},
                    "restore": {"p99_ms": 100},
                },
            }
        )
        assert profile.mode == "open"
        assert profile.files.min_kb == 16
        assert profile.mix.upload_fraction == 0.5
        assert profile.faults.enabled()
        slos = {slo.op: slo for slo in profile.slos}
        assert slos["upload"].p99_seconds == pytest.approx(0.25)
        assert slos["upload"].max_error_ratio == 0.05
        assert slos["restore"].max_error_ratio is None


class TestToml:
    PROFILE = """
# smoke profile
name = "smoke"
mode = "closed"
clients = 3
duration_seconds = 2.5

[files]
min_kb = 8
max_kb = 32

[tenants]
count = 2
cross_user_dedup = true

[slo.upload]
p99_ms = 500.0
max_error_ratio = 0.02
"""

    def test_from_toml(self, tmp_path):
        path = tmp_path / "smoke.toml"
        path.write_text(self.PROFILE)
        profile = WorkloadProfile.from_toml(path)
        assert profile.name == "smoke"
        assert profile.clients == 3
        assert profile.duration_seconds == 2.5
        assert profile.files.max_kb == 32
        assert profile.slos[0].p99_seconds == pytest.approx(0.5)

    def test_name_defaults_to_file_stem(self, tmp_path):
        path = tmp_path / "nightly.toml"
        path.write_text("clients = 2\n")
        assert WorkloadProfile.from_toml(path).name == "nightly"

    def test_fallback_parser_matches_tomllib_shape(self):
        # The 3.10 fallback must produce the same mapping tomllib would.
        data = _parse_simple_toml(self.PROFILE)
        assert data["name"] == "smoke"
        assert data["clients"] == 3
        assert data["duration_seconds"] == 2.5
        assert data["tenants"]["cross_user_dedup"] is True
        assert data["slo"]["upload"]["p99_ms"] == 500.0
        profile = WorkloadProfile.from_dict(data)
        assert profile.name == "smoke"

    def test_fallback_parser_rejects_fancy_values(self):
        with pytest.raises(ValueError, match="unsupported profile value"):
            _parse_simple_toml("x = [1, 2]\n")
        with pytest.raises(ValueError, match="unparseable"):
            _parse_simple_toml("just words\n")
