"""Load runner end to end: closed/open loops, forging, faults, replay."""

from __future__ import annotations

import random
import threading

import pytest

from repro.loadgen.report import LoadReport, write_bench
from repro.loadgen.runner import (
    InProcessDeployment,
    LoadRunner,
    PayloadForge,
)
from repro.loadgen.workload import (
    FaultMix,
    FileShape,
    OpMix,
    TenantShape,
    WorkloadProfile,
)
from repro.obs.flight import FlightRecorder, read_ops
from repro.obs.slo import SLO


def quick(**kwargs) -> WorkloadProfile:
    defaults = dict(
        clients=2,
        duration_seconds=0.8,
        files=FileShape(min_kb=8, max_kb=16),
        tenants=TenantShape(count=2),
    )
    defaults.update(kwargs)
    return WorkloadProfile(**defaults)


class TestPayloadForge:
    def _forge(self, **shape_kwargs):
        shape = FileShape(**shape_kwargs)
        return PayloadForge(
            shape, random.Random(7), [], threading.Lock()
        )

    def test_sizes_respect_shape(self):
        forge = self._forge(min_kb=8, max_kb=32, unit_kb=8)
        for _ in range(20):
            payload = forge.payload()
            assert 8 << 10 <= len(payload) <= 32 << 10
            assert len(payload) % (8 << 10) == 0

    def test_dup_file_prob_one_repeats_payloads(self):
        forge = self._forge(dup_file_prob=1.0)
        first = forge.payload()
        assert forge.payload() == first

    def test_unit_reuse_produces_duplicate_runs(self):
        # With dup_chunk_prob=1 every unit after the first comes from a
        # pool, so distinct payloads share identical byte runs.
        forge = self._forge(
            min_kb=32, max_kb=32, unit_kb=8,
            dup_file_prob=0.0, dup_chunk_prob=1.0, shared_prob=0.0,
        )
        a = forge.payload()
        b = forge.payload()
        units_a = {a[i:i + (8 << 10)] for i in range(0, len(a), 8 << 10)}
        units_b = {b[i:i + (8 << 10)] for i in range(0, len(b), 8 << 10)}
        assert units_a & units_b

    def test_deterministic_for_same_seed(self):
        shape = FileShape()
        one = PayloadForge(shape, random.Random(3), [], threading.Lock())
        two = PayloadForge(shape, random.Random(3), [], threading.Lock())
        assert one.payload() == two.payload()


class TestClosedLoop:
    def test_run_produces_ops_and_totals(self):
        runner = LoadRunner(quick())
        totals = runner.run()
        assert totals.ops > 0
        assert totals.duration_seconds > 0
        assert totals.bytes_moved > 0
        assert set(totals.per_tenant) <= {"tenant00", "tenant01"}

    def test_restores_round_trip(self):
        profile = quick(mix=OpMix(upload=0.5, restore=0.5))
        runner = LoadRunner(profile)
        totals = runner.run()
        restores = sum(
            t.get("restore", 0) for t in totals.per_tenant.values()
        )
        assert restores > 0
        assert totals.errors == 0

    def test_same_seed_same_op_sequence(self):
        # Totals vary with timing, but the op decision stream per worker
        # is pure RNG: two runners with one worker and the same seed ask
        # for the same (tenant, op) sequence.
        decisions = []
        for _ in range(2):
            runner = LoadRunner(quick(clients=1, seed=42))
            state_rng = random.Random(42 * 65_537 + 0)
            sequence = [
                (
                    runner._pick_tenant(state_rng),
                    runner._pick_op(state_rng, "tenant00"),
                )
                for _ in range(50)
            ]
            decisions.append(sequence)
        assert decisions[0] == decisions[1]

    def test_stop_ends_run_early(self):
        runner = LoadRunner(quick(duration_seconds=60.0))
        timer = threading.Timer(0.3, runner.stop)
        timer.start()
        totals = runner.run()
        timer.cancel()
        assert totals.duration_seconds < 10.0


class TestOpenLoop:
    def test_open_loop_runs_and_bounds_inflight(self):
        profile = quick(
            mode="open",
            arrival_rate=60.0,
            max_inflight=4,
            duration_seconds=1.0,
        )
        totals = LoadRunner(profile).run()
        assert totals.ops > 0

    def test_overload_sheds_instead_of_blocking(self):
        # One slow-ish worker, tiny queue, high arrival rate: the
        # dispatcher must shed rather than stall the arrival clock.
        profile = quick(
            mode="open",
            arrival_rate=500.0,
            max_inflight=1,
            queue_limit=2,
            duration_seconds=1.0,
            files=FileShape(min_kb=64, max_kb=64),
        )
        totals = LoadRunner(profile).run()
        assert totals.shed > 0
        assert totals.errors >= totals.shed


class TestFaultsAndSLO:
    def test_fault_mix_produces_errors_not_crashes(self):
        profile = quick(
            faults=FaultMix(drop_rate=0.05, close_rate=0.05),
            duration_seconds=1.0,
        )
        totals = LoadRunner(profile).run()
        assert totals.ops > 0
        assert totals.errors > 0

    def test_impossible_slo_breaches(self):
        profile = quick(slos=(SLO(op="upload", p99_seconds=1e-9),))
        runner = LoadRunner(profile)
        totals = runner.run()
        report = LoadReport.collect(profile, totals, runner.tracker)
        assert report.breached
        assert any(s.op == "upload" and s.breached for s in report.slo)

    def test_generous_slo_met(self):
        profile = quick(slos=(SLO(op="upload", p99_seconds=60.0),))
        runner = LoadRunner(profile)
        totals = runner.run()
        report = LoadReport.collect(profile, totals, runner.tracker)
        assert not report.breached


class TestReport:
    def test_report_reads_registry_and_formats(self):
        profile = quick()
        runner = LoadRunner(profile)
        totals = runner.run()
        report = LoadReport.collect(profile, totals, runner.tracker)
        ops = {r.op: r for r in report.per_op}
        assert "upload" in ops
        assert ops["upload"].p50_ms <= ops["upload"].p99_ms
        text = report.format()
        assert "load report" in text
        assert "tenant00" in text
        doc = report.to_dict()
        assert doc["ops_total"] >= totals.ops

    def test_write_bench_merges_profiles(self, tmp_path):
        out = tmp_path / "BENCH_load.json"
        profile = quick()
        runner = LoadRunner(profile)
        report = LoadReport.collect(profile, runner.run(), runner.tracker)
        write_bench([report], out)
        # A second write with another profile name accumulates.
        import dataclasses
        import json

        renamed = dataclasses.replace(report, profile=quick(name="other"))
        write_bench([renamed], out)
        doc = json.loads(out.read_text())
        assert set(doc["profiles"]) == {"adhoc", "other"}


class TestFlightIntegration:
    def test_flight_file_replays_the_run(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        profile = quick(duration_seconds=1.0)
        with FlightRecorder(path) as flight:
            runner = LoadRunner(profile, flight=flight)
            totals = runner.run()
        ops = read_ops(path)
        # Every completed operation left exactly one op event.
        assert len(ops) == totals.ops
        assert all(e["tenant"].startswith("tenant") for e in ops)
        timestamps = [e["ts"] for e in ops]
        assert timestamps == sorted(timestamps)

    def test_shared_deployment_not_closed_by_runner(self):
        deployment = InProcessDeployment(quick())
        runner = LoadRunner(quick(), deployment=deployment)
        runner.run()
        # A second runner can reuse the same deployment (and even
        # restore files the first runner uploaded via the catalogs of
        # its own run).
        totals = LoadRunner(quick(seed=99), deployment=deployment).run()
        assert totals.ops > 0
        deployment.close()
