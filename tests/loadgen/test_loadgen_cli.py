"""`repro loadgen` / `repro top`: flags, exit codes, replay output."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

SMOKE = """
name = "cli-smoke"
mode = "closed"
clients = 2
duration_seconds = 0.6

[files]
min_kb = 8
max_kb = 16

[slo.upload]
p99_ms = 60000.0
"""

BREACH = """
clients = 2
duration_seconds = 0.6

[slo.upload]
p99_ms = 0.001
"""


class TestParser:
    @pytest.mark.parametrize(
        "argv",
        [
            ["loadgen"],
            ["loadgen", "--profile", "x.toml", "--scale", "0.2"],
            ["loadgen", "--mode", "open", "--rate", "50", "--json"],
            ["top", "--replay", "f.jsonl"],
            ["top", "--follow", "f.jsonl", "--iterations", "3"],
        ],
    )
    def test_subcommands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)


class TestLoadgen:
    def test_profile_run_prints_report_and_exits_zero(
        self, tmp_path, capsys
    ):
        profile = tmp_path / "smoke.toml"
        profile.write_text(SMOKE)
        assert main(["loadgen", "--profile", str(profile)]) == 0
        out = capsys.readouterr().out
        assert "load report: cli-smoke" in out
        assert "p99ms" in out
        assert "all SLOs met" in out

    def test_slo_breach_exits_nonzero(self, tmp_path, capsys):
        profile = tmp_path / "breach.toml"
        profile.write_text(BREACH)
        assert main(["loadgen", "--profile", str(profile)]) == 1
        assert "SLO BREACHED" in capsys.readouterr().out

    def test_bad_profile_exits_two(self, tmp_path, capsys):
        profile = tmp_path / "bad.toml"
        profile.write_text("clientz = 3\n")
        assert main(["loadgen", "--profile", str(profile)]) == 2
        assert "bad profile" in capsys.readouterr().err

    def test_tcp_mode_requires_both_addresses(self, capsys):
        assert main(["loadgen", "--km", "127.0.0.1:1"]) == 2
        assert "--provider" in capsys.readouterr().err

    def test_json_output_and_bench_out(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_load.json"
        assert (
            main(
                [
                    "loadgen",
                    "--duration",
                    "0.6",
                    "--clients",
                    "2",
                    "--json",
                    "--bench-out",
                    str(bench),
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["ops_total"] > 0
        assert "upload" in doc["per_op"]
        bench_doc = json.loads(bench.read_text())
        assert "adhoc" in bench_doc["profiles"]

    def test_overrides_and_scale_applied(self, capsys):
        assert (
            main(
                [
                    "loadgen",
                    "--mode",
                    "open",
                    "--rate",
                    "40",
                    "--duration",
                    "4",
                    "--seed",
                    "77",
                    "--scale",
                    "0.25",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "open loop" in out
        assert "seed 77" in out


class TestTop:
    @pytest.fixture
    def flight_file(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        assert (
            main(
                [
                    "loadgen",
                    "--duration",
                    "0.8",
                    "--clients",
                    "2",
                    "--flight",
                    str(path),
                ]
            )
            == 0
        )
        return path

    def test_replay_reconstructs_timeline(self, flight_file, capsys):
        capsys.readouterr()  # drop the loadgen report
        assert main(["top", "--replay", str(flight_file)]) == 0
        out = capsys.readouterr().out
        assert "run: profile=adhoc" in out
        assert "upload" in out
        assert "p99ms" in out
        assert "ops over" in out

    def test_follow_bounded_iterations(self, flight_file, capsys):
        capsys.readouterr()
        assert (
            main(
                [
                    "top",
                    "--follow",
                    str(flight_file),
                    "--iterations",
                    "2",
                    "--refresh",
                    "0.01",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.count("-- last") == 2

    def test_missing_file_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["top", "--replay", str(missing)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_no_source_exits_two(self, capsys):
        assert main(["top"]) == 2
        assert "--replay" in capsys.readouterr().err
