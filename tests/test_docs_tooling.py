"""The documentation toolchain itself must stay green.

Runs the two doc tools exactly as CI does:

* ``tools/gen_metrics_doc.py --check`` — the committed
  ``docs/METRICS.md`` must match the live metrics registry (freshness
  gate);
* ``tools/check_docs.py`` — every markdown link and anchor across the
  default doc set must resolve.

Both tools import the full ``repro`` tree, which needs numpy (the
Count-Min sketch) and scipy (the KLD solver); environments without them
skip rather than fail tier-1.
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("numpy")
pytest.importorskip("scipy")

ROOT = Path(__file__).resolve().parent.parent


def _run(*argv):
    return subprocess.run(
        [sys.executable, *argv],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )


def test_metrics_doc_is_fresh():
    result = _run("tools/gen_metrics_doc.py", "--check")
    assert result.returncode == 0, (
        f"docs/METRICS.md is stale — regenerate with "
        f"`python tools/gen_metrics_doc.py`.\n"
        f"stdout: {result.stdout}\nstderr: {result.stderr}"
    )
    assert "up to date" in result.stdout


def test_metrics_doc_covers_restore_instruments(tmp_path):
    out = tmp_path / "METRICS.md"
    result = _run("tools/gen_metrics_doc.py", "--out", str(out))
    assert result.returncode == 0, result.stderr
    text = out.read_text()
    # Spot checks: one instrument per subsystem this PR touches.
    for name in (
        "ted_restore_fragmentation_factor",
        "ted_restore_container_events_total",
        "ted_pipeline_chunks_total",
    ):
        assert f"`{name}`" in text, f"{name} missing from generated doc"


def test_all_doc_links_resolve():
    result = _run("tools/check_docs.py")
    assert result.returncode == 0, (
        f"broken documentation links:\n{result.stderr}"
    )
    assert "all links resolve" in result.stdout


def test_link_checker_catches_breakage(tmp_path):
    bad = tmp_path / "BAD.md"
    bad.write_text(
        "# Title\n\nSee [missing](no-such-file.md) and "
        "[bad anchor](#nowhere).\n"
    )
    result = _run("tools/check_docs.py", str(bad))
    assert result.returncode == 1
    assert "no-such-file.md" in result.stderr
    assert "nowhere" in result.stderr
