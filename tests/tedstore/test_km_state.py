"""Durable key-manager state: snapshot/delta persistence and crash replay.

The contract under test (DESIGN.md §12): once a key-generation batch is
acked, a crashed-and-restarted key manager replays it — so the frequency
state, and therefore every *future* seed decision, is exactly what a
never-crashed key manager would have produced. Deterministic seed
selection (``probabilistic=False``) makes that comparable seed-for-seed.
"""

import random

import pytest

from repro.core.ted import TedKeyManager
from repro.storage import crash
from repro.storage.crash import InjectedCrash
from repro.tedstore.km_state import KeyManagerStateStore
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.messages import BatchedKeyGenRequest, KeyGenRequest

_WIDTH = 1024


def make_km():
    """FTED, deterministic seeds, retune every 64 requests."""
    return TedKeyManager(
        secret=b"km-state-secret",
        blowup_factor=1.05,
        batch_size=64,
        sketch_width=_WIDTH,
        probabilistic=False,
    )


def make_batches(count=10, chunks=20, seed=3):
    rng = random.Random(seed)
    return [
        [[rng.randrange(_WIDTH) for _ in range(4)] for _ in range(chunks)]
        for _ in range(count)
    ]


def km_state(km):
    """Complete frequency state, bit-for-bit comparable."""
    return (
        km.sketch._counters.tobytes(),
        km.sketch.total,
        km.t,
        dict(km._freq_by_identity),
        km._requests_in_batch,
        km.stats.requests,
    )


class TestRestoreEquivalence:
    def test_restore_matches_in_memory_state(self, tmp_path):
        batches = make_batches()
        baseline = make_km()
        for batch in batches:
            baseline.generate_seeds(batch)

        service = KeyManagerService(
            make_km(),
            state_store=KeyManagerStateStore(tmp_path, snapshot_every=3),
        )
        for batch in batches:
            service.handle_keygen(KeyGenRequest(hash_vectors=batch))
        # Process crash: no close(), no final snapshot.
        restored = KeyManagerService(
            make_km(), state_store=KeyManagerStateStore(tmp_path)
        )
        assert km_state(restored.key_manager) == km_state(baseline)
        # Future seeds are identical to the never-crashed run's.
        probe = make_batches(count=1, seed=99)[0]
        assert (
            restored.handle_keygen(KeyGenRequest(hash_vectors=probe)).seeds
            == baseline.generate_seeds(probe)
        )

    def test_snapshot_truncates_delta_log(self, tmp_path):
        store = KeyManagerStateStore(tmp_path, snapshot_every=2)
        service = KeyManagerService(make_km(), state_store=store)
        for batch in make_batches(count=4):
            service.handle_keygen(KeyGenRequest(hash_vectors=batch))
        assert (tmp_path / "snapshot.bin").exists()
        assert (tmp_path / "delta.log").stat().st_size == 0

    def test_close_snapshots_pending_state(self, tmp_path):
        batches = make_batches(count=3)
        baseline = make_km()
        for batch in batches:
            baseline.generate_seeds(batch)
        service = KeyManagerService(
            make_km(),
            state_store=KeyManagerStateStore(tmp_path, snapshot_every=100),
        )
        for batch in batches:
            service.handle_keygen(KeyGenRequest(hash_vectors=batch))
        service.close()
        restored = KeyManagerService(
            make_km(), state_store=KeyManagerStateStore(tmp_path)
        )
        assert restored.restore_report.snapshot_loaded
        assert restored.restore_report.deltas_replayed == 0
        assert km_state(restored.key_manager) == km_state(baseline)

    def test_last_sequence_survives_restart(self, tmp_path):
        service = KeyManagerService(
            make_km(),
            state_store=KeyManagerStateStore(tmp_path),
        )
        for sequence, batch in enumerate(make_batches(count=3)):
            service.handle_keygen_batched(
                BatchedKeyGenRequest(sequence=sequence, hash_vectors=batch),
                client_id="alice",
            )
        restored = KeyManagerService(
            make_km(), state_store=KeyManagerStateStore(tmp_path)
        )
        assert restored._last_sequence["alice"] == 2
        # A stale (reordered) batch is still rejected after restart.
        with pytest.raises(ValueError):
            restored.handle_keygen_batched(
                BatchedKeyGenRequest(
                    sequence=1, hash_vectors=make_batches(count=1)[0]
                ),
                client_id="alice",
            )

    def test_geometry_mismatch_raises(self, tmp_path):
        store = KeyManagerStateStore(tmp_path)
        service = KeyManagerService(make_km(), state_store=store)
        service.handle_keygen(
            KeyGenRequest(hash_vectors=make_batches(count=1)[0])
        )
        service.close()
        other = TedKeyManager(
            secret=b"km-state-secret",
            blowup_factor=1.05,
            sketch_width=2 * _WIDTH,
            probabilistic=False,
        )
        with pytest.raises(ValueError):
            KeyManagerStateStore(tmp_path).restore_into(other)

    def test_corrupt_snapshot_is_ignored(self, tmp_path):
        store = KeyManagerStateStore(tmp_path, snapshot_every=1)
        service = KeyManagerService(make_km(), state_store=store)
        service.handle_keygen(
            KeyGenRequest(hash_vectors=make_batches(count=1)[0])
        )
        snapshot = tmp_path / "snapshot.bin"
        blob = bytearray(snapshot.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        snapshot.write_bytes(bytes(blob))
        report = KeyManagerStateStore(tmp_path).restore_into(make_km())
        assert not report.snapshot_loaded

    def test_torn_delta_tail_replays_prefix(self, tmp_path):
        batches = make_batches(count=4)
        baseline = make_km()
        for batch in batches[:3]:
            baseline.generate_seeds(batch)
        service = KeyManagerService(
            make_km(),
            state_store=KeyManagerStateStore(tmp_path, snapshot_every=100),
        )
        for batch in batches:
            service.handle_keygen(KeyGenRequest(hash_vectors=batch))
        delta = tmp_path / "delta.log"
        delta.write_bytes(delta.read_bytes()[:-7])  # tear the last record
        restored = make_km()
        report = KeyManagerStateStore(tmp_path).restore_into(restored)
        assert report.deltas_replayed == 3
        assert km_state(restored) == km_state(baseline)

    def test_bounded_staleness_with_relaxed_sync(self, tmp_path):
        # sync_every > 1 defers fsync, but a *process* crash loses
        # nothing: appends are flushed to the OS before the ack.
        batches = make_batches(count=5)
        baseline = make_km()
        for batch in batches:
            baseline.generate_seeds(batch)
        service = KeyManagerService(
            make_km(),
            state_store=KeyManagerStateStore(
                tmp_path, snapshot_every=100, sync_every=4
            ),
        )
        for batch in batches:
            service.handle_keygen(KeyGenRequest(hash_vectors=batch))
        restored = make_km()
        KeyManagerStateStore(tmp_path).restore_into(restored)
        assert km_state(restored) == km_state(baseline)


CRASH_POINTS = [
    "km.delta.append",
    "km.snapshot.write",
    "km.snapshot.before_fsync",
    "km.snapshot.before_rename",
    "km.snapshot.before_dirsync",
    "km.delta.before_truncate",
]


class TestCrashMatrix:
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_kill_and_recover(self, tmp_path, point):
        """Crash at every persistence barrier; recovered state must equal
        a clean key manager fed exactly the batches whose effects became
        durable — never a torn in-between."""
        batches = make_batches(count=8)
        service = KeyManagerService(
            make_km(),
            state_store=KeyManagerStateStore(tmp_path, snapshot_every=2),
        )
        crash.get_injector().arm(point)
        acked = 0
        crashed = False
        for batch in batches:
            try:
                service.handle_keygen(KeyGenRequest(hash_vectors=batch))
                acked += 1
            except InjectedCrash:
                crashed = True
                break
        assert crashed, f"point {point} never fired"

        restored = KeyManagerService(
            make_km(), state_store=KeyManagerStateStore(tmp_path)
        )
        requests = restored.key_manager.stats.requests
        assert requests % 20 == 0
        durable_batches = requests // 20
        # Every acked batch is durable; the in-flight one may be too
        # (the crash fired after its delta append succeeded).
        assert durable_batches in (acked, acked + 1)
        reference = make_km()
        for batch in batches[:durable_batches]:
            reference.generate_seeds(batch)
        assert km_state(restored.key_manager) == km_state(reference)
        # Determinism going forward: the retried/next batch gets exactly
        # the seeds the reference state derives.
        nxt = batches[durable_batches]
        assert (
            restored.handle_keygen(KeyGenRequest(hash_vectors=nxt)).seeds
            == reference.generate_seeds(nxt)
        )

    def test_unacked_torn_batch_is_not_replayed(self, tmp_path):
        """A torn delta append (the ack never happened) must vanish: the
        retry then derives the same seeds the original attempt would
        have — no double-count, no divergence."""
        batches = make_batches(count=3)
        baseline = make_km()
        baseline_seeds = [baseline.generate_seeds(b) for b in batches]

        service = KeyManagerService(
            make_km(),
            state_store=KeyManagerStateStore(tmp_path, snapshot_every=100),
        )
        got = [
            service.handle_keygen(KeyGenRequest(hash_vectors=b)).seeds
            for b in batches[:2]
        ]
        crash.get_injector().arm("km.delta.append", torn_bytes=9)
        with pytest.raises(InjectedCrash):
            service.handle_keygen(KeyGenRequest(hash_vectors=batches[2]))

        restored = KeyManagerService(
            make_km(), state_store=KeyManagerStateStore(tmp_path)
        )
        retry = restored.handle_keygen(
            KeyGenRequest(hash_vectors=batches[2])
        ).seeds
        assert got == baseline_seeds[:2]
        assert retry == baseline_seeds[2]
