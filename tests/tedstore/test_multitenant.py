"""Multi-tenant provider: HELLO handshake, isolation, quotas, bugfixes.

Covers the DESIGN.md §13 surface end to end over the real TCP transport:
concurrent tenants under the per-tenant/striped locks, recipe namespace
isolation, quota rejection before any storage mutation, per-tenant auth,
the typed ``MSG_NOT_FOUND`` reply, the corrupt-recipe-blob quarantine,
re-entrant ``close()``, and the old-server HELLO downgrade.
"""

import random
import socket
import struct
import threading

import pytest

from repro.storage.kvstore import KVStore
from repro.tedstore import messages as m
from repro.tedstore.client import TedStoreClient
from repro.tedstore.inprocess import LocalProvider
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.network import (
    RemoteProvider,
    _Connection,
    serve_provider,
)
from repro.tedstore.provider import (
    AuthenticationError,
    ProviderService,
    QuotaExceededError,
    _decode_recipes,
    _encode_recipes,
)
from repro.tedstore.retry import RetryPolicy
from repro.core.ted import TedKeyManager

_W = 2**14
_FAST_RETRY = dict(base_delay=0.01, max_delay=0.05, deadline=5.0)

TENANTS = ("t-alpha", "t-bravo", "t-charlie", "t-delta")


def _tenant_client(address, tenant, key_service, transports):
    provider = RemoteProvider(address, tenant=tenant)
    transports.append(provider)
    return TedStoreClient(
        key_service,
        provider,
        master_key=bytes([sum(tenant.encode()) % 251 + 1]) * 32,
        profile=__import__(
            "repro.crypto.cipher", fromlist=["SHACTR"]
        ).SHACTR,
        sketch_width=_W,
        batch_size=200,
    )


class TestConcurrentTenantsOverTcp:
    def test_four_tenants_upload_simultaneously(self, tmp_path):
        """≥4 tenants over real sockets: per-tenant counters stay exact
        and no tenant can see another's recipes."""
        from repro.tedstore.inprocess import LocalKeyManager

        service = ProviderService(directory=tmp_path, cross_user_dedup=True)
        handle = serve_provider(service)
        transports = []
        # Shared + private blocks so cross-tenant dedup has work to do.
        rng = random.Random(5)
        shared = [rng.randbytes(1500) for _ in range(10)]
        datasets = {}
        for tenant in TENANTS:
            trng = random.Random(tenant)
            private = [trng.randbytes(1500) for _ in range(4)]
            pool = shared + private
            datasets[tenant] = b"".join(
                pool[trng.randrange(len(pool))] for _ in range(120)
            )
        errors = []

        def worker(tenant):
            try:
                key_service = LocalKeyManager(
                    KeyManagerService(
                        TedKeyManager(secret=tenant.encode(), t=5,
                                      sketch_width=_W)
                    )
                )
                client = _tenant_client(
                    handle.address, tenant, key_service, transports
                )
                client.upload(f"{tenant}-doc", datasets[tenant])
                assert client.download(f"{tenant}-doc") == datasets[tenant]
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in TENANTS
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, errors

            # Per-tenant accounting: every offered chunk is either stored
            # or a duplicate, and each tenant uploaded exactly one file.
            for tenant in TENANTS:
                stats = dict(service.tenant_stats(tenant))
                assert stats["files"] == 1
                assert stats["logical_chunks"] > 0
                assert (
                    stats["stored_chunks"] + stats["duplicate_chunks"]
                    == stats["logical_chunks"]
                )
                assert stats["logical_bytes"] == len(datasets[tenant])

            # The aggregate view sums the tenants (plus eager default).
            total = dict(service.stats())
            assert total["files"] == len(TENANTS)
            assert total["tenants"] == len(TENANTS) + 1

            # No cross-tenant recipe visibility, whatever the dedup mode.
            peek = RemoteProvider(handle.address, tenant=TENANTS[0])
            transports.append(peek)
            with pytest.raises(FileNotFoundError):
                peek.get_recipes(
                    m.GetRecipes(file_name=f"{TENANTS[1]}-doc")
                )
        finally:
            for transport in transports:
                transport.close()
            handle.stop()
            service.close()

    def test_typed_not_found_over_wire(self, tmp_path):
        service = ProviderService(in_memory=True)
        handle = serve_provider(service)
        provider = RemoteProvider(handle.address, tenant="t-alpha")
        try:
            with pytest.raises(FileNotFoundError):
                provider.get_recipes(m.GetRecipes(file_name="nope"))
            with pytest.raises(KeyError) as excinfo:
                provider.get_chunks(m.GetChunks(fingerprints=[b"absent"]))
            # The old path leaked KeyError repr quotes ("b'absent'") via
            # MSG_ERROR; the typed reply carries the clean message.
            assert "not found:" not in str(excinfo.value)
            # The connection survives a typed miss (stream still in sync).
            provider.put_chunks(
                m.PutChunks(chunks=[(b"fp1", b"payload")])
            )
            got = provider.get_chunks(m.GetChunks(fingerprints=[b"fp1"]))
            assert got.chunks == [b"payload"]
        finally:
            provider.close()
            handle.stop()
            service.close()

    def test_hello_rebinds_after_reconnect(self, tmp_path):
        service = ProviderService(in_memory=True)
        handle = serve_provider(service)
        provider = RemoteProvider(
            handle.address,
            tenant="t-alpha",
            retry_policy=RetryPolicy(max_attempts=6, **_FAST_RETRY),
        )
        try:
            assert provider.hello_ok is not None
            assert provider.hello_ok.tenant == "t-alpha"
            provider.put_recipes(
                m.PutRecipes(
                    file_name="f", sealed_file_recipe=b"x",
                    sealed_key_recipe=b"y",
                )
            )
            # Kill every server-side socket; the next call reconnects and
            # must re-HELLO before the retried request is served.
            handle._server.close_active_connections()
            got = provider.get_recipes(m.GetRecipes(file_name="f"))
            assert got.sealed_file_recipe == b"x"
            assert dict(service.tenant_stats("t-alpha"))["files"] == 1
        finally:
            provider.close()
            handle.stop()
            service.close()


class TestQuotas:
    def test_byte_quota_rejected_before_mutation(self, tmp_path):
        service = ProviderService(
            directory=tmp_path, quota_bytes=1000, cross_user_dedup=True
        )
        transport = LocalProvider(service, tenant="t-alpha")
        service.tenant_stats("t-alpha")  # materialize the namespace
        before = dict(service.stats())
        with pytest.raises(QuotaExceededError):
            transport.put_chunks(
                m.PutChunks(chunks=[(b"f" * 32, b"x" * 2000)])
            )
        # Whole-batch rejection: counters, index, and containers untouched.
        assert dict(service.stats()) == before
        stats = dict(service.tenant_stats("t-alpha"))
        assert stats["logical_bytes"] == 0
        assert stats["stored_chunks"] == 0
        # Under-quota traffic still lands.
        response = transport.put_chunks(
            m.PutChunks(chunks=[(b"f" * 32, b"x" * 900)])
        )
        assert response.stored == 1
        service.close()

    def test_byte_quota_over_wire_is_remote_error(self, tmp_path):
        service = ProviderService(in_memory=True, quota_bytes=10)
        handle = serve_provider(service)
        provider = RemoteProvider(handle.address, tenant="t-alpha")
        try:
            with pytest.raises(RuntimeError, match="quota exceeded"):
                provider.put_chunks(
                    m.PutChunks(chunks=[(b"fp", b"z" * 100)])
                )
        finally:
            provider.close()
            handle.stop()
            service.close()

    def test_file_quota_limits_new_files_only(self):
        service = ProviderService(in_memory=True, quota_files=1)
        transport = LocalProvider(service, tenant="t-alpha")
        recipe = dict(sealed_file_recipe=b"a", sealed_key_recipe=b"b")
        transport.put_recipes(m.PutRecipes(file_name="one", **recipe))
        with pytest.raises(QuotaExceededError):
            transport.put_recipes(m.PutRecipes(file_name="two", **recipe))
        # Overwriting an existing file is not a new file.
        transport.put_recipes(m.PutRecipes(file_name="one", **recipe))
        assert dict(service.tenant_stats("t-alpha"))["files"] == 1
        service.close()

    def test_quotas_are_per_tenant(self):
        service = ProviderService(in_memory=True, quota_bytes=100)
        alpha = LocalProvider(service, tenant="t-alpha")
        bravo = LocalProvider(service, tenant="t-bravo")
        alpha.put_chunks(m.PutChunks(chunks=[(b"a", b"x" * 90)]))
        with pytest.raises(QuotaExceededError):
            alpha.put_chunks(m.PutChunks(chunks=[(b"b", b"x" * 20)]))
        # Bravo has its own budget.
        response = bravo.put_chunks(m.PutChunks(chunks=[(b"c", b"x" * 90)]))
        assert response.stored == 1
        service.close()


class TestAuthAndValidation:
    def test_auth_token_enforced_over_wire(self):
        service = ProviderService(
            in_memory=True, auth_tokens={"t-alpha": b"sekrit"}
        )
        handle = serve_provider(service)
        try:
            with pytest.raises(RuntimeError, match="authentication failed"):
                RemoteProvider(
                    handle.address, tenant="t-alpha", auth_token=b"wrong"
                )
            provider = RemoteProvider(
                handle.address, tenant="t-alpha", auth_token=b"sekrit"
            )
            assert provider.hello_ok.tenant == "t-alpha"
            provider.close()
            # Unlisted tenants connect without a token.
            other = RemoteProvider(handle.address, tenant="t-bravo")
            assert other.hello_ok.tenant == "t-bravo"
            other.close()
        finally:
            handle.stop()
            service.close()

    def test_local_transport_authenticates_too(self):
        service = ProviderService(
            in_memory=True, auth_tokens={"t-alpha": b"sekrit"}
        )
        with pytest.raises(AuthenticationError):
            LocalProvider(service, tenant="t-alpha", auth_token=b"no")
        LocalProvider(service, tenant="t-alpha", auth_token=b"sekrit")
        service.close()

    @pytest.mark.parametrize(
        "bad", ["", "../escape", "a/b", ".hidden", "x" * 65, "sp ace"]
    )
    def test_tenant_ids_must_be_path_safe(self, bad):
        service = ProviderService(in_memory=True)
        with pytest.raises(ValueError):
            service.validate_tenant(bad)
        with pytest.raises(ValueError):
            service.handle_put_chunks(m.PutChunks(chunks=[]), tenant=bad)
        service.close()


class TestRecipeDecodeBugfix:
    def test_truncated_blob_raises(self):
        blob = _encode_recipes(b"file-recipe", b"key-recipe")
        assert _decode_recipes(blob) == (b"file-recipe", b"key-recipe")
        # Chop bytes off: the uvarint length now overruns the blob. The
        # old decoder silently returned a short file recipe and an empty
        # key recipe — now it must refuse.
        with pytest.raises(ValueError, match="corrupt recipe blob"):
            _decode_recipes(blob[:6])

    def test_startup_quarantines_corrupt_blob(self, tmp_path, capsys):
        service = ProviderService(directory=tmp_path)
        transport = LocalProvider(service)
        transport.put_recipes(
            m.PutRecipes(
                file_name="good", sealed_file_recipe=b"F" * 40,
                sealed_key_recipe=b"K" * 40,
            )
        )
        service.close()
        # Corrupt the durable blob for one file out-of-band.
        store = KVStore(tmp_path / "recipes")
        good = store.get(b"good")
        store.put(b"bad", good[: len(good) // 4])
        store.close()

        reopened = ProviderService(directory=tmp_path)
        err = capsys.readouterr().err
        assert "quarantined corrupt recipe blob" in err
        assert "'bad'" in err
        # The good recipe still serves; the bad one is a loud miss, not
        # silently wrong bytes.
        got = reopened.handle_get_recipes(m.GetRecipes(file_name="good"))
        assert got.sealed_file_recipe == b"F" * 40
        with pytest.raises(FileNotFoundError):
            reopened.handle_get_recipes(m.GetRecipes(file_name="bad"))
        stats = dict(reopened.tenant_stats())
        assert stats["quarantined_recipes"] == 1
        reopened.close()


class TestCloseSemantics:
    def test_close_is_reentrant(self, tmp_path):
        service = ProviderService(directory=tmp_path, scrub_interval=60.0)
        service.close()
        service.close()  # second call is a no-op, not an error

    def test_scrubber_stopped_even_if_engine_close_raises(self, tmp_path):
        service = ProviderService(directory=tmp_path, scrub_interval=60.0)
        scrubber = service.scrubber
        assert scrubber is not None

        def boom():
            raise OSError("disk fell out")

        service.engine.close = boom
        with pytest.raises(OSError, match="disk fell out"):
            service.close()
        # The scrubber is stopped and joined despite the close failure.
        assert scrubber._thread is None
        assert scrubber._stop.is_set()
        # And close() stays re-entrant after a failed sweep.
        service.close()

    def test_requests_after_close_fail_cleanly(self):
        service = ProviderService(in_memory=True)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.handle_put_chunks(
                m.PutChunks(chunks=[]), tenant="t-new"
            )


class TestHelloDowngrade:
    def test_default_tenant_downgrades_against_old_server(self):
        server = _OldStyleServer()
        server.start()
        try:
            conn = _Connection(
                server.address,
                retry_policy=RetryPolicy(max_attempts=4, **_FAST_RETRY),
                entity="provider",
                propagate_trace=False,
                hello=m.Hello(tenant="default", auth_token=b"tok"),
            )
            try:
                # The old server rejected MSG_HELLO; the default-tenant
                # client latched the handshake off and proceeded.
                assert conn.counters["hello_downgrades"] == 1
                assert conn.hello_ok is None
                reply_type, payload = conn.call(m.MSG_STATS_REQUEST, b"")
                assert m.decode_stats(payload) == [("old", 1)]
            finally:
                conn.close()
        finally:
            server.stop()

    def test_named_tenant_refuses_old_server(self):
        server = _OldStyleServer()
        server.start()
        try:
            with pytest.raises(RuntimeError, match="tenant handshake"):
                _Connection(
                    server.address,
                    retry_policy=RetryPolicy(max_attempts=2, **_FAST_RETRY),
                    entity="provider",
                    propagate_trace=False,
                    hello=m.Hello(tenant="t-alpha", auth_token=b""),
                )
        finally:
            server.stop()

    def test_new_server_acks_hello(self):
        service = ProviderService(in_memory=True)
        handle = serve_provider(service)
        try:
            conn = _Connection(
                handle.address,
                entity="provider",
                hello=m.Hello(tenant="t-alpha", auth_token=b""),
            )
            try:
                assert conn.hello_ok is not None
                assert conn.hello_ok.tenant == "t-alpha"
                assert conn.hello_ok.cross_user_dedup is True
                assert conn.counters["hello_downgrades"] == 0
            finally:
                conn.close()
        finally:
            handle.stop()
            service.close()


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    data = b""
    while len(data) < n:
        piece = sock.recv(n - len(data))
        if not piece:
            raise ConnectionError("peer closed")
        data += piece
    return data


class _OldStyleServer:
    """Minimal pre-HELLO TEDStore server (original framing only).

    ``MSG_HELLO`` is an unknown type to it and is rejected exactly the
    way the old dispatch loop rejects one — ``MSG_ERROR "unexpected
    message <type>"`` — which is what drives the client's downgrade
    latch (mirror of the trace-flag version-tolerance pattern).
    """

    def __init__(self) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(2)
        self.address = self._listener.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._listener.close()
        self._thread.join(timeout=5)

    def _serve(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            with conn:
                try:
                    while True:
                        header = _recv_exactly(conn, 5)
                        (length,) = struct.unpack(">I", header[:4])
                        message_type = header[4]
                        _recv_exactly(conn, length - 1)
                        if message_type == m.MSG_STATS_REQUEST:
                            reply = m.frame(
                                m.MSG_STATS_RESPONSE,
                                m.encode_stats([("old", 1)]),
                            )
                        else:
                            reply = m.frame(
                                m.MSG_ERROR,
                                m.encode_error(
                                    f"unexpected message {message_type}"
                                ),
                            )
                        conn.sendall(reply)
                except (ConnectionError, OSError):
                    continue
