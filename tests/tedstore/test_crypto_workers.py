"""Multiprocessing encrypt pool: byte-identical stored state.

``crypto_workers > 0`` moves encryption into a pool of OS processes
(DESIGN.md §16). Encryption is a pure function of (profile, key, chunk)
and the uploader re-sequences by index, so the provider's on-disk state,
the recipes, and the upload results must be byte-identical to the serial
client's — the same contract the threaded pipeline already honours.
"""

import pytest

from tests.harness import differential as diff

from repro.tedstore.pipeline import _mp_encrypt_job


@pytest.mark.parametrize("mode", ["mle", "bted", "fted"])
def test_crypto_workers_matches_serial(mode, tmp_path):
    files = diff.make_workload(seed=3, files=5, chunks_per_file=80)
    names = [name for name, _ in files]
    serial = diff.make_deployment(mode, tmp_path / "serial")
    pooled = diff.make_deployment(
        mode, tmp_path / "pooled", crypto_workers=2
    )
    results_serial = diff.run_workload(serial, files)
    results_pooled = diff.run_workload(pooled, files)
    serial.close()
    pooled.close()
    diff.assert_equivalent(serial, pooled, names)
    assert [r.__dict__ for r in results_serial] == [
        r.__dict__ for r in results_pooled
    ]


def test_crypto_workers_implies_pipelined(tmp_path):
    deployment = diff.make_deployment(
        "bted", tmp_path / "d", crypto_workers=1
    )
    assert deployment.client.pipelined
    deployment.close()


def test_crypto_workers_with_threads_and_cache(tmp_path):
    # The pool composes with the existing pipeline features: multiple
    # worker threads and the fingerprint cache (aliases + cache hits).
    files = diff.make_workload(seed=9, files=4, chunks_per_file=60)
    names = [name for name, _ in files]
    serial = diff.make_deployment("bted", tmp_path / "serial")
    combined = diff.make_deployment(
        "bted",
        tmp_path / "combined",
        workers=3,
        crypto_workers=2,
        cache_capacity=4096,
    )
    diff.run_workload(serial, files)
    diff.run_workload(combined, files)
    serial.close()
    combined.close()
    diff.assert_equivalent(
        serial, combined, names, ignore_offered_counters=True
    )


def test_mp_encrypt_job_matches_inline():
    # The pool entrypoint itself (callable in-process too) must produce
    # what the inline worker loop produces.
    from repro.crypto.cipher import get_profile
    from repro.crypto.hashes import digest

    profile = get_profile("shactr")
    job = [
        (7, b"plaintext-chunk" * 10, b"fp" * 16, b"seed" * 8, b"k" * 32),
    ]
    [resolved] = _mp_encrypt_job("shactr", job)
    expected = profile.encrypt(b"k" * 32, b"plaintext-chunk" * 10)
    assert resolved.index == 7
    assert resolved.ciphertext == expected
    assert resolved.cipher_fp == digest(expected, profile.hash_algorithm)
    assert resolved.size == len(b"plaintext-chunk" * 10)


def test_client_rejects_negative_crypto_workers(tmp_path):
    with pytest.raises(ValueError):
        diff.make_deployment("bted", tmp_path / "d", crypto_workers=-1)
