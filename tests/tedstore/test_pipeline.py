"""Unit tests for the pipelined upload path and the fingerprint cache.

Integration-level equivalence lives in
``tests/integration/test_pipeline_differential.py``; here the pipeline's
local contracts are pinned down: ordering, accounting invariants, error
propagation, graceful fallback, and the cache's thread-safety under a
barrier-synchronized race.
"""

import random
import threading

import pytest

from repro.core.ted import TedKeyManager
from repro.crypto.cipher import SHACTR
from repro.storage.dedup import FingerprintCache
from repro.tedstore.client import TedStoreClient
from repro.tedstore.inprocess import LocalKeyManager, LocalProvider
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.messages import KeyGenRequest
from repro.tedstore.pipeline import PipelineError, PipelinedUploader
from repro.tedstore.provider import ProviderService

_W = 2**14


def _client(**kwargs):
    service = KeyManagerService(
        TedKeyManager(
            secret=b"pipe-unit",
            blowup_factor=1.05,
            batch_size=500,
            sketch_width=_W,
            rng=random.Random(3),
        )
    )
    provider = ProviderService(in_memory=True)
    kwargs.setdefault("profile", SHACTR)
    kwargs.setdefault("sketch_width", _W)
    kwargs.setdefault("batch_size", 200)
    return TedStoreClient(
        LocalKeyManager(service), LocalProvider(provider), **kwargs
    )


def _chunks(count=600, distinct=30, seed=9):
    rng = random.Random(seed)
    blocks = [rng.randbytes(2000) for _ in range(distinct)]
    return [blocks[rng.randrange(distinct)] for _ in range(count)]


class TestOrderingAndAccounting:
    def test_chunk_order_is_preserved(self):
        """Workers finish out of order; the resequencer must not."""
        client = _client(workers=4, pipeline_depth=2)
        chunks = _chunks()
        client.upload_chunks("ordered", chunks)
        assert client.download("ordered") == b"".join(chunks)

    def test_accounting_invariant_holds(self):
        client = _client(workers=3)
        chunks = _chunks()
        result = client.upload_chunks("acct", chunks)
        assert result.chunk_count == len(chunks)
        assert result.logical_bytes == sum(len(c) for c in chunks)
        assert (
            result.stored_chunks + result.duplicate_chunks
            == result.chunk_count
        )

    def test_cache_hits_are_counted_and_consistent(self):
        cache = FingerprintCache(capacity=4096)
        client = _client(workers=3, fingerprint_cache=cache)
        chunks = _chunks()
        first = client.upload_chunks("first", chunks)
        second = client.upload_chunks("second", chunks)
        # The workload repeats blocks, so the second pass must resolve
        # chunks client-side — and every hit still counts as a duplicate.
        assert second.cache_hits > 0
        assert second.duplicate_chunks >= second.cache_hits
        assert (
            second.stored_chunks + second.duplicate_chunks
            == second.chunk_count
        )
        assert cache.hits == first.cache_hits + second.cache_hits
        assert client.download("second") == b"".join(chunks)

    def test_empty_upload_completes(self):
        client = _client(workers=3)
        result = client.upload_chunks("empty", [])
        assert result.chunk_count == 0
        assert result.stored_chunks == 0
        assert client.download("empty") == b""

    def test_single_chunk_upload(self):
        client = _client(workers=4, pipeline_depth=1)
        result = client.upload_chunks("one", [b"x" * 100])
        assert result.chunk_count == 1
        assert client.download("one") == b"x" * 100


class TestRoutingAndValidation:
    def test_serial_client_is_not_pipelined(self):
        assert not _client().pipelined

    def test_workers_enable_pipeline(self):
        assert _client(workers=2).pipelined

    def test_cache_enables_pipeline_even_with_one_worker(self):
        client = _client(
            workers=1, fingerprint_cache=FingerprintCache(capacity=16)
        )
        assert client.pipelined

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            _client(workers=0)

    def test_invalid_pipeline_depth_rejected(self):
        with pytest.raises(ValueError):
            _client(workers=2, pipeline_depth=0)


class _KeygenOnly:
    """A key-manager transport predating the batched-keygen message."""

    def __init__(self, inner):
        self._inner = inner

    def keygen(self, request: KeyGenRequest):
        return self._inner.keygen(request)


class TestFallbackAndErrors:
    def test_falls_back_to_plain_keygen_transport(self):
        client = _client(workers=3)
        client.key_manager = _KeygenOnly(client.key_manager)
        chunks = _chunks(count=300)
        result = client.upload_chunks("fallback", chunks)
        assert result.chunk_count == len(chunks)
        client.key_manager = client.key_manager._inner  # downloads unaffected
        assert client.download("fallback") == b"".join(chunks)

    def test_provider_error_propagates_with_cause(self):
        client = _client(workers=3, batch_size=50)
        boom = RuntimeError("disk on fire")

        class _Exploding:
            def __init__(self, inner):
                self._inner = inner
                self.calls = 0

            def put_chunks(self, request):
                self.calls += 1
                if self.calls >= 2:
                    raise boom
                return self._inner.put_chunks(request)

            def __getattr__(self, name):
                return getattr(self._inner, name)

        client.provider = _Exploding(client.provider)
        with pytest.raises(PipelineError) as excinfo:
            client.upload_chunks("explodes", _chunks())
        assert excinfo.value.__cause__ is boom

    def test_uploader_is_single_use(self):
        client = _client(workers=2)
        uploader = PipelinedUploader(client)
        uploader.run("once", [b"a" * 10, b"b" * 10])
        assert uploader.chunk_count == 2

    def test_no_pipeline_threads_survive_an_upload(self):
        client = _client(workers=4)
        client.upload_chunks("clean", _chunks(count=200))
        lingering = [
            t
            for t in threading.enumerate()
            if t.name.startswith("ted-pipeline")
        ]
        for thread in lingering:
            thread.join(timeout=5.0)
        assert not any(
            t.is_alive()
            for t in threading.enumerate()
            if t.name.startswith("ted-pipeline")
        )


class TestFingerprintCacheRace:
    def test_barrier_synchronized_readers_and_writers(self):
        """Hammer one cache from many threads released simultaneously by
        a barrier; the cache must stay internally consistent and never
        return a value that was not inserted for that exact key."""
        cache = FingerprintCache(capacity=256)
        threads = 8
        rounds = 60
        keys = [(b"fp-%03d" % i, b"seed-%03d" % (i % 7)) for i in range(64)]
        expected = {
            FingerprintCache.key(fp, seed): b"cfp|" + fp + b"|" + seed
            for fp, seed in keys
        }
        barrier = threading.Barrier(threads)
        errors = []

        def worker(worker_id: int) -> None:
            rng = random.Random(worker_id)
            try:
                for round_no in range(rounds):
                    barrier.wait()  # all threads hit the cache together
                    fp, seed = keys[rng.randrange(len(keys))]
                    if (worker_id + round_no) % 2:
                        cache.insert(
                            fp, seed, expected[FingerprintCache.key(fp, seed)]
                        )
                    else:
                        value = cache.lookup(fp, seed)
                        if value is not None:
                            assert (
                                value
                                == expected[FingerprintCache.key(fp, seed)]
                            )
            except BaseException as exc:  # surfaced to the main thread
                errors.append(exc)
                barrier.abort()

        pool = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=30)
        assert not errors, errors
        stats = cache.stats()
        assert stats["entries"] <= 256
        assert stats["hits"] + stats["misses"] > 0
        assert len(cache) == stats["entries"]

    def test_lru_eviction_under_pressure(self):
        cache = FingerprintCache(capacity=4)
        for i in range(10):
            cache.insert(b"fp-%d" % i, b"s", b"c-%d" % i)
        assert len(cache) == 4
        assert cache.stats()["evictions"] == 6
        # Oldest entries are gone, newest survive.
        assert cache.lookup(b"fp-0", b"s") is None
        assert cache.lookup(b"fp-9", b"s") == b"c-9"

    def test_seed_is_part_of_the_key(self):
        """Same plaintext under a different seed is a different ciphertext
        — the cache must never conflate them."""
        cache = FingerprintCache(capacity=16)
        cache.insert(b"fp", b"seed-a", b"cipher-a")
        assert cache.lookup(b"fp", b"seed-b") is None
        assert cache.lookup(b"fp", b"seed-a") == b"cipher-a"

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FingerprintCache(capacity=0)
