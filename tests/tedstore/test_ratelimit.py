"""Key-generation rate limiting (the §2.3 online brute-force defence)."""

import pytest

from repro.core.ted import TedKeyManager
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.messages import KeyGenRequest
from repro.tedstore.ratelimit import (
    KeyGenRateLimiter,
    RateLimitExceeded,
    TokenBucket,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_dry(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, burst=20, clock=clock)
        assert bucket.try_consume(20)
        assert not bucket.try_consume(1)

    def test_refills_over_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, burst=20, clock=clock)
        bucket.try_consume(20)
        clock.advance(1.0)
        assert bucket.try_consume(10)
        assert not bucket.try_consume(1)

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, burst=20, clock=clock)
        clock.advance(100.0)
        assert bucket.available() == 20

    def test_zero_consume_always_allowed(self):
        bucket = TokenBucket(rate=1, burst=1, clock=FakeClock())
        assert bucket.try_consume(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)
        bucket = TokenBucket(rate=1, burst=1, clock=FakeClock())
        with pytest.raises(ValueError):
            bucket.try_consume(-1)

    def test_available_is_non_mutating(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10, burst=20, clock=clock)
        assert bucket.try_consume(20)
        clock.advance(1.0)  # refill credit: 10 tokens
        assert bucket.available() == 10
        assert bucket.available() == 10  # observing must not spend/reset
        assert bucket.try_consume(10)
        assert not bucket.try_consume(1)

    def test_concurrent_consumption_does_not_over_admit(self):
        """Regression: unlocked refill-and-spend raced when a bucket was
        shared across threads outside KeyGenRateLimiter's dict lock."""
        import threading

        bucket = TokenBucket(rate=0.001, burst=1000, clock=lambda: 0.0)
        admitted = []

        def hammer():
            count = 0
            for _ in range(500):
                if bucket.try_consume(1):
                    count += 1
            admitted.append(count)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # A frozen clock means zero refill: exactly the burst is admitted.
        assert sum(admitted) == 1000


class TestKeyGenRateLimiter:
    def test_legitimate_batches_pass(self):
        clock = FakeClock()
        limiter = KeyGenRateLimiter(
            chunks_per_second=1000, burst_chunks=2000, clock=clock
        )
        for _ in range(2):
            limiter.check("client-a", 1000)
        assert limiter.stats["allowed"] == 2000

    def test_brute_force_blocked(self):
        clock = FakeClock()
        limiter = KeyGenRateLimiter(
            chunks_per_second=1000, burst_chunks=2000, clock=clock
        )
        limiter.check("attacker", 2000)
        with pytest.raises(RateLimitExceeded):
            limiter.check("attacker", 1)
        assert limiter.stats["rejected"] == 1

    def test_budget_recovers(self):
        clock = FakeClock()
        limiter = KeyGenRateLimiter(
            chunks_per_second=1000, burst_chunks=2000, clock=clock
        )
        limiter.check("c", 2000)
        clock.advance(2.0)
        limiter.check("c", 2000)

    def test_clients_isolated(self):
        clock = FakeClock()
        limiter = KeyGenRateLimiter(
            chunks_per_second=100, burst_chunks=100, clock=clock
        )
        limiter.check("a", 100)
        limiter.check("b", 100)  # b has its own bucket
        with pytest.raises(RateLimitExceeded):
            limiter.check("a", 1)
        assert limiter.clients() == 2

    def test_negative_chunks_rejected(self):
        limiter = KeyGenRateLimiter(clock=FakeClock())
        with pytest.raises(ValueError):
            limiter.check("c", -1)


class TestServiceIntegration:
    def test_key_manager_enforces_limit(self):
        clock = FakeClock()
        service = KeyManagerService(
            TedKeyManager(secret=b"s", t=5, sketch_width=2**12),
            rate_limiter=KeyGenRateLimiter(
                chunks_per_second=10, burst_chunks=10, clock=clock
            ),
        )
        request = KeyGenRequest(hash_vectors=[[1, 2, 3, 4]] * 10)
        service.handle_keygen(request, client_id="mallory")
        with pytest.raises(RateLimitExceeded):
            service.handle_keygen(request, client_id="mallory")
        # Other clients are unaffected.
        service.handle_keygen(request, client_id="alice")

    def test_no_limiter_means_no_limit(self):
        service = KeyManagerService(
            TedKeyManager(secret=b"s", t=5, sketch_width=2**12)
        )
        request = KeyGenRequest(hash_vectors=[[1, 2, 3, 4]] * 100)
        for _ in range(5):
            service.handle_keygen(request)
