"""Property-based round-trip tests for the wire codecs.

Randomized (but seeded, hence reproducible) generators drive two
properties over the batched-keygen messages and the varint primitive
underneath every payload:

* **encode/decode identity** — ``decode(encode(x)) == x`` for arbitrary
  well-formed values, including boundary shapes (empty batches, empty
  seeds, huge sequence numbers, varint byte-width edges);
* **truncation safety** — every strict prefix of a valid encoding raises
  :class:`~repro.tedstore.messages.ProtocolError` (``ValueError`` for the
  raw varint), never returns garbage and never crashes with anything
  else. Trailing junk is likewise rejected.

Plain ``random`` keeps the suite dependency-free; each case count is
small enough to stay fast while covering all encoder branch widths.
"""

import random

import pytest

from repro.tedstore.messages import (
    BatchedKeyGenRequest,
    BatchedKeyGenResponse,
    ProtocolError,
)
from repro.utils.varint import decode_uvarint, encode_uvarint

CASES = 60

#: Values that exercise every varint byte width plus both u64 edges.
_VARINT_EDGES = [
    0, 1, 127, 128, 16_383, 16_384, 2_097_151, 2_097_152,
    2**32 - 1, 2**32, 2**63, 2**64 - 1,
]


def _random_int(rng: random.Random) -> int:
    if rng.random() < 0.3:
        return rng.choice(_VARINT_EDGES)
    return rng.randrange(0, 1 << rng.randrange(1, 63))


def _random_request(rng: random.Random) -> BatchedKeyGenRequest:
    vectors = [
        [_random_int(rng) for _ in range(rng.randrange(0, 8))]
        for _ in range(rng.randrange(0, 12))
    ]
    return BatchedKeyGenRequest(
        sequence=_random_int(rng), hash_vectors=vectors
    )


def _random_response(rng: random.Random) -> BatchedKeyGenResponse:
    seeds = [
        rng.randbytes(rng.randrange(0, 48))
        for _ in range(rng.randrange(0, 12))
    ]
    return BatchedKeyGenResponse(
        sequence=_random_int(rng),
        seeds=seeds,
        current_t=max(1, _random_int(rng)),
    )


class TestBatchedKeygenRoundTrip:
    @pytest.mark.parametrize("seed", range(CASES))
    def test_request_round_trips(self, seed):
        message = _random_request(random.Random(seed))
        assert (
            BatchedKeyGenRequest.decode(message.encode()) == message
        )

    @pytest.mark.parametrize("seed", range(CASES))
    def test_response_round_trips(self, seed):
        message = _random_response(random.Random(1000 + seed))
        assert (
            BatchedKeyGenResponse.decode(message.encode()) == message
        )

    def test_boundary_shapes_round_trip(self):
        for message in (
            BatchedKeyGenRequest(),
            BatchedKeyGenRequest(sequence=2**64 - 1, hash_vectors=[[]]),
            BatchedKeyGenRequest(hash_vectors=[[0], [2**64 - 1]]),
            BatchedKeyGenResponse(),
            BatchedKeyGenResponse(seeds=[b""], current_t=1),
            BatchedKeyGenResponse(
                sequence=2**63, seeds=[b"\x00" * 32], current_t=2**32
            ),
        ):
            assert type(message).decode(message.encode()) == message


class TestTruncationSafety:
    @pytest.mark.parametrize("seed", range(CASES // 3))
    def test_every_request_prefix_raises(self, seed):
        rng = random.Random(2000 + seed)
        message = _random_request(rng)
        encoded = message.encode()
        for cut in range(len(encoded)):
            with pytest.raises(ProtocolError):
                BatchedKeyGenRequest.decode(encoded[:cut])

    @pytest.mark.parametrize("seed", range(CASES // 3))
    def test_every_response_prefix_raises(self, seed):
        rng = random.Random(3000 + seed)
        message = _random_response(rng)
        encoded = message.encode()
        for cut in range(len(encoded)):
            with pytest.raises(ProtocolError):
                BatchedKeyGenResponse.decode(encoded[:cut])

    @pytest.mark.parametrize("seed", range(CASES // 3))
    def test_trailing_junk_rejected(self, seed):
        rng = random.Random(4000 + seed)
        encoded = _random_request(rng).encode()
        with pytest.raises(ProtocolError):
            BatchedKeyGenRequest.decode(encoded + b"\x00")


class TestVarintRoundTrip:
    @pytest.mark.parametrize("value", _VARINT_EDGES)
    def test_edges_round_trip(self, value):
        encoded = encode_uvarint(value)
        decoded, consumed = decode_uvarint(encoded)
        assert decoded == value
        assert consumed == len(encoded)

    @pytest.mark.parametrize("seed", range(CASES))
    def test_random_values_round_trip(self, seed):
        rng = random.Random(5000 + seed)
        value = _random_int(rng)
        encoded = encode_uvarint(value)
        decoded, consumed = decode_uvarint(encoded)
        assert decoded == value
        assert consumed == len(encoded)

    @pytest.mark.parametrize("seed", range(CASES))
    def test_concatenated_stream_round_trips(self, seed):
        """Varints decode back-to-back from one buffer, offset-exact."""
        rng = random.Random(6000 + seed)
        values = [_random_int(rng) for _ in range(rng.randrange(1, 10))]
        buffer = b"".join(encode_uvarint(v) for v in values)
        offset = 0
        decoded = []
        while offset < len(buffer):
            value, offset = decode_uvarint(buffer, offset)
            decoded.append(value)
        assert decoded == values

    @pytest.mark.parametrize("value", _VARINT_EDGES)
    def test_every_truncation_raises_value_error(self, value):
        encoded = encode_uvarint(value)
        for cut in range(len(encoded)):
            with pytest.raises(ValueError):
                decode_uvarint(encoded[:cut])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1)

    def test_overlong_varint_rejected(self):
        # 11 continuation bytes push shift past 63 bits: corrupt input.
        with pytest.raises(ValueError):
            decode_uvarint(b"\x80" * 11 + b"\x01")

    def test_single_byte_values_are_single_bytes(self):
        for value in range(128):
            assert encode_uvarint(value) == bytes([value])
