"""Shard health layer: circuit breakers, heartbeat monitor, typed errors."""

import pytest

from repro.obs import metrics as obs_metrics
from repro.tedstore.health import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    ShardHealthMonitor,
    ShardUnavailableError,
    healthy_shards,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _breaker(shard: int, **kwargs) -> CircuitBreaker:
    clock = kwargs.pop("clock", None) or FakeClock()
    defaults = dict(failure_threshold=3, reset_timeout=5.0, clock=clock)
    defaults.update(kwargs)
    breaker = CircuitBreaker("provider", shard, **defaults)
    breaker._fake_clock = clock  # test hook
    return breaker


class TestValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            CircuitBreaker("km", 0, failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("km", 0, reset_timeout=-1.0)


class TestStateMachine:
    def test_opens_after_consecutive_failures(self):
        breaker = _breaker(900)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # below threshold
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_success_resets_the_failure_streak(self):
        breaker = _breaker(901)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # streak restarted, never hit 3

    def test_open_breaker_fails_fast_with_typed_error(self):
        breaker = _breaker(902, failure_threshold=1)
        breaker.record_failure()
        with pytest.raises(ShardUnavailableError) as excinfo:
            breaker.admit()
        assert excinfo.value.side == "provider"
        assert excinfo.value.shard == 902
        assert "open" in excinfo.value.reason
        # Typed AND a ConnectionError, so existing retry/except paths
        # that catch wire failures also catch a fast-failed shard.
        assert isinstance(excinfo.value, ConnectionError)

    def test_half_open_after_reset_timeout(self):
        breaker = _breaker(903, failure_threshold=1, reset_timeout=5.0)
        breaker.record_failure()
        breaker._fake_clock.now = 4.9
        assert breaker.state == OPEN
        breaker._fake_clock.now = 5.0
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_exactly_one_trial(self):
        breaker = _breaker(904, failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure()
        breaker._fake_clock.now = 1.0
        breaker.admit()  # the single trial slot
        with pytest.raises(ShardUnavailableError, match="trial"):
            breaker.admit()

    def test_check_does_not_consume_the_trial_slot(self):
        breaker = _breaker(907, failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure()
        with pytest.raises(ShardUnavailableError):
            breaker.check()  # open: same fail-fast as admit()
        breaker._fake_clock.now = 1.0
        breaker.check()
        breaker.check()  # repeatable: nothing was claimed
        breaker.admit()  # the real call still gets the trial slot
        with pytest.raises(ShardUnavailableError, match="trial"):
            breaker.check()  # trial in flight: check fails fast too

    def test_trial_success_closes(self):
        breaker = _breaker(905, failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure()
        breaker._fake_clock.now = 1.0
        breaker.admit()
        breaker.record_success()
        assert breaker.state == CLOSED
        breaker.admit()  # closed: unlimited admission again

    def test_trial_failure_reopens_for_another_timeout(self):
        breaker = _breaker(906, failure_threshold=3, reset_timeout=1.0)
        for _ in range(3):
            breaker.record_failure()
        breaker._fake_clock.now = 1.0
        breaker.admit()
        breaker.record_failure()  # one trial failure suffices to re-open
        assert breaker.state == OPEN
        breaker._fake_clock.now = 1.5
        with pytest.raises(ShardUnavailableError):
            breaker.admit()
        breaker._fake_clock.now = 2.0
        assert breaker.state == HALF_OPEN


class TestInstruments:
    def test_breaker_state_and_health_gauges(self):
        registry = obs_metrics.get_registry()
        breaker = _breaker(910, failure_threshold=1)
        state = registry.get("ted_breaker_state").labels(
            side="provider", shard="910"
        )
        health = registry.get("ted_shard_health").labels(
            side="provider", shard="910"
        )
        assert (state.value, health.value) == (0, 1)
        breaker.record_failure()
        assert (state.value, health.value) == (2, 0)
        breaker._fake_clock.now = 5.0
        assert breaker.state == HALF_OPEN
        assert (state.value, health.value) == (1, 0)
        breaker.record_success()
        assert (state.value, health.value) == (0, 1)

    def test_failover_counter_records_open_and_rejoin(self):
        registry = obs_metrics.get_registry()
        breaker = _breaker(911, failure_threshold=1)
        opened = registry.get("ted_shard_failover_total").labels(
            side="provider", shard="911", event="open"
        )
        rejoined = registry.get("ted_shard_failover_total").labels(
            side="provider", shard="911", event="rejoin"
        )
        breaker.record_failure()
        breaker.record_success()
        assert opened.value == 1
        assert rejoined.value == 1


class TestMonitor:
    def test_probe_and_breaker_shards_must_match(self):
        with pytest.raises(ValueError):
            ShardHealthMonitor(
                probes={0: lambda: None}, breakers={1: _breaker(920)}
            )

    def test_run_once_feeds_breakers(self):
        alive = {0: True, 1: False}

        def probe(shard):
            def inner():
                if not alive[shard]:
                    raise ConnectionError("down")

            return inner

        breakers = {
            s: _breaker(930 + s, failure_threshold=2) for s in alive
        }
        monitor = ShardHealthMonitor(
            probes={s: probe(s) for s in alive}, breakers=breakers
        )
        assert monitor.run_once() == {0: True, 1: False}
        monitor.run_once()
        assert breakers[0].state == CLOSED
        assert breakers[1].state == OPEN  # two consecutive probe failures

        # The shard restarts: the very next probe round rejoins it, no
        # client traffic needed to drive the half-open trial.
        alive[1] = True
        breakers[1]._fake_clock.now = 10.0
        assert monitor.run_once() == {0: True, 1: True}
        assert breakers[1].state == CLOSED

    def test_healthy_shards_snapshot(self):
        healthy = _breaker(940)
        dead = _breaker(941, failure_threshold=1)
        dead.record_failure()
        assert healthy_shards([healthy, dead]) == {940: True, 941: False}
