"""TEDStore client over the in-process deployment."""

import random

import pytest

from repro.chunking.cdc import ChunkerParams, ContentDefinedChunker
from repro.core.ted import TedKeyManager
from repro.crypto.cipher import FAST, SECURE, SHACTR
from repro.tedstore.client import TedStoreClient
from repro.tedstore.inprocess import LocalKeyManager, LocalProvider
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.provider import ProviderService
from repro.traces.workload import unique_file

_W = 2**14


def _make_client(
    tmp_path=None,
    profile=SHACTR,
    master_key=b"\x01" * 32,
    batch_size=200,
    blowup_factor=1.05,
    provider=None,
):
    key_manager = KeyManagerService(
        TedKeyManager(
            secret=b"client-test-secret",
            blowup_factor=blowup_factor,
            batch_size=batch_size,
            sketch_width=_W,
            rng=random.Random(4),
        )
    )
    if provider is None:
        if tmp_path is None:
            provider = ProviderService(in_memory=True)
        else:
            provider = ProviderService(
                directory=str(tmp_path), container_bytes=64 << 10
            )
    return TedStoreClient(
        LocalKeyManager(key_manager),
        LocalProvider(provider),
        master_key=master_key,
        profile=profile,
        sketch_width=_W,
        batch_size=batch_size,
        chunker=ContentDefinedChunker(
            ChunkerParams(min_size=1024, avg_size=2048, max_size=4096)
        ),
    )


class TestUploadDownload:
    @pytest.mark.parametrize("profile", [SHACTR, FAST])
    def test_roundtrip(self, profile):
        client = _make_client(profile=profile)
        data = unique_file(100_000)
        client.upload("file", data)
        assert client.download("file") == data

    def test_roundtrip_secure_profile_small(self):
        # Pure-Python AES-256 path; keep the payload small.
        client = _make_client(profile=SECURE)
        data = unique_file(8_000)
        client.upload("file", data)
        assert client.download("file") == data

    def test_roundtrip_on_disk(self, tmp_path):
        client = _make_client(tmp_path=tmp_path)
        data = unique_file(60_000)
        client.upload("file", data)
        client.provider.service.flush()
        assert client.download("file") == data

    def test_empty_file(self):
        client = _make_client()
        client.upload("empty", b"")
        assert client.download("empty") == b""

    def test_multiple_files(self):
        client = _make_client()
        files = {f"f{i}": unique_file(20_000, client_id=i) for i in range(4)}
        for name, data in files.items():
            client.upload(name, data)
        for name, data in files.items():
            assert client.download(name) == data

    def test_duplicate_upload_partially_deduplicates(self):
        # FTED starts at t = 1 and has not tuned yet on this tiny upload, so
        # duplicates spread across key-seed buckets — dedup happens but is
        # deliberately partial (the TED trade-off in action).
        client = _make_client()
        data = unique_file(100_000)
        first = client.upload("f1", data)
        second = client.upload("f2", data)
        assert first.duplicate_chunks == 0
        assert second.duplicate_chunks > 0
        assert second.duplicate_chunks + second.stored_chunks == \
            second.chunk_count

    def test_duplicate_upload_full_dedup_with_large_t(self):
        # BTED with t far above any frequency reduces to MLE: the second
        # upload of identical data must deduplicate completely.
        key_manager = KeyManagerService(
            TedKeyManager(secret=b"s", t=10_000, sketch_width=_W)
        )
        client = TedStoreClient(
            LocalKeyManager(key_manager),
            LocalProvider(ProviderService(in_memory=True)),
            profile=SHACTR,
            sketch_width=_W,
            batch_size=200,
            chunker=ContentDefinedChunker(
                ChunkerParams(min_size=1024, avg_size=2048, max_size=4096)
            ),
        )
        data = unique_file(100_000)
        client.upload("f1", data)
        second = client.upload("f2", data)
        assert second.stored_chunks == 0
        assert second.duplicate_chunks == second.chunk_count

    def test_upload_chunks_trace_path(self):
        client = _make_client()
        chunks = [unique_file(3000, client_id=i) for i in range(10)]
        result = client.upload_chunks("trace-file", chunks)
        assert result.chunk_count == 10
        assert client.download("trace-file") == b"".join(chunks)

    def test_upload_result_accounting(self):
        client = _make_client()
        data = unique_file(50_000)
        result = client.upload("file", data)
        assert result.logical_bytes == len(data)
        assert result.stored_chunks + result.duplicate_chunks == \
            result.chunk_count


class TestMetadataDedup:
    def _meta_client(self, provider):
        key_manager = KeyManagerService(
            TedKeyManager(secret=b"s", t=10_000, sketch_width=_W)
        )
        return TedStoreClient(
            LocalKeyManager(key_manager),
            LocalProvider(provider),
            profile=SHACTR,
            sketch_width=_W,
            batch_size=200,
            metadata_dedup=True,
            metadata_entries_per_chunk=16,
        )

    def test_roundtrip(self):
        client = self._meta_client(ProviderService(in_memory=True))
        data = unique_file(60_000)
        client.upload("f", data)
        assert client.download("f") == data

    def test_empty_file(self):
        client = self._meta_client(ProviderService(in_memory=True))
        client.upload("empty", b"")
        assert client.download("empty") == b""

    def test_recipe_chunks_dedup_across_identical_uploads(self):
        provider = ProviderService(in_memory=True)
        client = self._meta_client(provider)
        data = unique_file(60_000)
        client.upload("day-0", data)
        unique_after_first = len(provider._memory_chunks)
        client.upload("day-1", data)
        # With t = 10,000 (MLE regime) the data chunks fully dedup AND the
        # metadata chunks dedup too: no new unique chunks at all.
        assert len(provider._memory_chunks) == unique_after_first

    def test_wrong_master_key_still_locked_out(self):
        provider = ProviderService(in_memory=True)
        uploader = self._meta_client(provider)
        uploader.upload("f", unique_file(20_000))
        thief = self._meta_client(provider)
        thief.master_key = b"\x09" * 32
        with pytest.raises(ValueError):
            thief.download("f")


class TestSecurity:
    def test_wrong_master_key_cannot_download(self):
        provider = ProviderService(in_memory=True)
        uploader = _make_client(master_key=b"\x01" * 32, provider=provider)
        thief = _make_client(master_key=b"\x02" * 32, provider=provider)
        uploader.upload("secret-file", unique_file(20_000))
        with pytest.raises(ValueError):
            thief.download("secret-file")

    def test_stored_chunks_are_ciphertext(self):
        provider = ProviderService(in_memory=True)
        client = _make_client(provider=provider)
        data = unique_file(30_000)
        client.upload("f", data)
        stored = b"".join(provider._memory_chunks.values())
        # No 64-byte window of the plaintext appears in storage.
        assert data[:64] not in stored

    def test_key_manager_never_sees_fingerprints(self):
        # The client only ever sends short hashes (ints < sketch width).
        captured = []

        class SpyKeyManager:
            def __init__(self, inner):
                self.inner = inner

            def keygen(self, request):
                captured.extend(request.hash_vectors)
                return self.inner.keygen(request)

        client = _make_client()
        client.key_manager = SpyKeyManager(client.key_manager)
        client.upload("f", unique_file(20_000))
        assert captured
        for vector in captured:
            assert len(vector) == 4
            assert all(0 <= h < _W for h in vector)


class TestInstrumentation:
    def test_stage_timer_covers_pipeline(self):
        client = _make_client()
        client.upload("f", unique_file(30_000))
        totals = client.timer.totals()
        for stage in (
            "chunking",
            "fingerprinting",
            "hashing",
            "key seeding",
            "key derivation",
            "encryption",
            "write",
        ):
            assert stage in totals, stage
        client.download("f")
        totals = client.timer.totals()
        assert "chunk fetch" in totals
        assert "decryption" in totals

    def test_batching_splits_requests(self):
        client = _make_client(batch_size=5)
        chunks = [unique_file(1000, client_id=i) for i in range(12)]
        client.upload_chunks("f", chunks)
        # 12 chunks at batch size 5 → 3 key-generation round trips.
        stats = dict(client.key_manager.service.stats())
        assert stats["requests"] == 12

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            _make_client(batch_size=0)

    def test_recipe_count_mismatch_detected(self):
        client = _make_client()
        client.upload("f", unique_file(10_000))
        # Corrupt the stored key recipe by re-sealing a truncated one.
        from repro.storage.recipe import KeyRecipe, seal, unseal
        from repro.tedstore.messages import GetRecipes, PutRecipes

        provider = client.provider
        recipes = provider.get_recipes(GetRecipes(file_name="f"))
        key_recipe = KeyRecipe.deserialize(
            unseal(client.master_key, recipes.sealed_key_recipe)
        )
        key_recipe.keys.pop()
        provider.put_recipes(
            PutRecipes(
                file_name="f",
                sealed_file_recipe=recipes.sealed_file_recipe,
                sealed_key_recipe=seal(
                    client.master_key, key_recipe.serialize()
                ),
            )
        )
        with pytest.raises(ValueError):
            client.download("f")
