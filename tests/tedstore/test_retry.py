"""Retry policy: backoff, jitter, deadlines, injectable time."""

import random

import pytest

from repro.tedstore.retry import (
    DeadlineExceeded,
    RetriesExhausted,
    RetryPolicy,
    retry_call,
)


class FakeTime:
    """Deterministic clock + sleep pair: sleeping advances the clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps = []

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


def _policy(**kwargs) -> RetryPolicy:
    ft = kwargs.pop("fake_time", None) or FakeTime()
    defaults = dict(
        max_attempts=4,
        base_delay=0.1,
        multiplier=2.0,
        max_delay=1.0,
        jitter=0.0,
        deadline=10.0,
        clock=ft.clock,
        sleep=ft.sleep,
        rng=random.Random(0),
    )
    defaults.update(kwargs)
    policy = RetryPolicy(**defaults)
    policy._fake_time = ft  # test hook
    return policy


class TestPolicyValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=0)

    def test_deadline_none_is_unbounded(self):
        state = _policy(deadline=None).start_call()
        assert state.remaining() is None


class TestBackoff:
    def test_exponential_growth_with_cap(self):
        policy = _policy()
        delays = [policy.backoff_delay(n) for n in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.8, 1.0]  # capped at max_delay

    def test_jitter_stays_in_band_and_is_seeded(self):
        a = _policy(jitter=0.5, rng=random.Random(42))
        b = _policy(jitter=0.5, rng=random.Random(42))
        delays_a = [a.backoff_delay(1) for _ in range(20)]
        delays_b = [b.backoff_delay(1) for _ in range(20)]
        assert delays_a == delays_b  # same seed, same schedule
        assert all(0.05 <= d <= 0.15 for d in delays_a)
        assert len(set(delays_a)) > 1  # jitter actually varies


class TestRetryCall:
    def test_succeeds_after_transient_failures(self):
        policy = _policy()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionError("transient")
            return "ok"

        assert retry_call(flaky, policy) == "ok"
        assert len(attempts) == 3
        assert policy._fake_time.sleeps == [0.1, 0.2]

    def test_exhausts_attempts(self):
        policy = _policy(max_attempts=3)

        def always_fails():
            raise ConnectionError("down")

        with pytest.raises(RetriesExhausted):
            retry_call(always_fails, policy)
        assert len(policy._fake_time.sleeps) == 2  # 3 attempts, 2 backoffs

    def test_deadline_cuts_retries_short(self):
        # Each attempt burns 3s of fake time; the 10s deadline admits the
        # first retry but not the second.
        ft = FakeTime()
        policy = _policy(
            fake_time=ft, max_attempts=10, base_delay=1.0, max_delay=1.0
        )

        def slow_failure():
            ft.now += 6.0
            raise ConnectionError("slow death")

        with pytest.raises(DeadlineExceeded):
            retry_call(slow_failure, policy)
        assert len(ft.sleeps) == 1

    def test_backoff_clamps_to_remaining_deadline(self):
        # 1.0s deadline, 10s backoff: the naive schedule would either
        # overshoot the budget or give up with 0.4s still on the table.
        # The clamp sleeps exactly the remainder and makes the final
        # attempt *inside* the deadline.
        ft = FakeTime()
        policy = _policy(
            fake_time=ft,
            max_attempts=5,
            base_delay=10.0,
            max_delay=10.0,
            deadline=1.0,
        )
        attempts = []

        def flaky():
            attempts.append(ft.now)
            if len(attempts) == 1:
                ft.now += 0.6
                raise ConnectionError("first attempt burns 0.6s")
            return "ok"

        assert retry_call(flaky, policy) == "ok"
        assert ft.sleeps == [pytest.approx(0.4)]  # remainder, not 10s
        assert attempts[1] == pytest.approx(1.0)  # final attempt at T
        assert ft.now <= 1.0 + 1e-9  # never overshot the budget

    def test_elapsed_deadline_still_raises(self):
        ft = FakeTime()
        policy = _policy(
            fake_time=ft, max_attempts=5, base_delay=0.1, deadline=1.0
        )

        def slow_death():
            ft.now += 2.0  # one attempt blows the whole budget
            raise ConnectionError("slow")

        with pytest.raises(DeadlineExceeded):
            retry_call(slow_death, policy)
        assert ft.sleeps == []  # nothing left to clamp to

    def test_clamped_final_attempt_failure_is_deadline_exceeded(self):
        ft = FakeTime()
        policy = _policy(
            fake_time=ft,
            max_attempts=5,
            base_delay=10.0,
            max_delay=10.0,
            deadline=1.0,
        )
        attempts = []

        def always_fails():
            attempts.append(ft.now)
            ft.now += 0.6
            raise ConnectionError("down")

        with pytest.raises(DeadlineExceeded):
            retry_call(always_fails, policy)
        # Attempt 1 at 0.0 burns to 0.6, clamp sleeps 0.4, attempt 2 at
        # 1.0 fails with the budget gone — no third attempt.
        assert len(attempts) == 2
        assert ft.sleeps == [pytest.approx(0.4)]

    def test_non_retryable_exception_propagates(self):
        policy = _policy()

        def type_error():
            raise TypeError("logic bug")

        with pytest.raises(TypeError):
            retry_call(type_error, policy, retryable=(ConnectionError,))
        assert policy._fake_time.sleeps == []

    def test_on_retry_observes_each_failure(self):
        policy = _policy()
        seen = []

        def fails_twice():
            if len(seen) < 2:
                raise ConnectionError("x")
            return "done"

        retry_call(
            fails_twice,
            policy,
            on_retry=lambda n, exc, delay: seen.append((n, delay)),
        )
        assert seen == [(1, 0.1), (2, 0.2)]
