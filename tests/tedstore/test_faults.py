"""Fault injection: deterministic schedules, degraded quorums, recovery."""

import random

import pytest

from repro.core.ted import TedKeyManager
from repro.crypto.cipher import SHACTR
from repro.tedstore.client import TedStoreClient
from repro.tedstore.faults import (
    FaultPlan,
    FaultyKeyManager,
    FaultyProvider,
    FaultyQuorumServer,
    InjectedFault,
)
from repro.tedstore.inprocess import LocalKeyManager, LocalProvider
from repro.tedstore.keymanager import KeyManagerService
from repro.tedstore.messages import (
    GetChunks,
    KeyGenRequest,
    ProtocolError,
    PutChunks,
)
from repro.tedstore.provider import ProviderService
from repro.tedstore.quorum import QuorumClient, deal_quorum
from repro.traces.workload import unique_file

_W = 2**14


def _stack():
    key_manager = KeyManagerService(
        TedKeyManager(secret=b"fault-secret", t=50, sketch_width=_W)
    )
    provider = ProviderService(in_memory=True)
    return LocalKeyManager(key_manager), LocalProvider(provider)


class TestFaultPlan:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(delay_seconds=-1)

    def test_with_seed_changes_only_the_seed(self):
        plan = FaultPlan(drop_rate=0.5, seed=1)
        reseeded = plan.with_seed(9)
        assert reseeded.seed == 9
        assert reseeded.drop_rate == 0.5


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        def run():
            km, _ = _stack()
            faulty = FaultyKeyManager(km, FaultPlan(drop_rate=0.4, seed=11))
            outcomes = []
            for _ in range(40):
                try:
                    faulty.keygen(KeyGenRequest(hash_vectors=[[1, 2, 3, 4]]))
                    outcomes.append("ok")
                except InjectedFault:
                    outcomes.append("drop")
            return outcomes, faulty.fault_counters

        outcomes_a, counters_a = run()
        outcomes_b, counters_b = run()
        assert outcomes_a == outcomes_b
        assert counters_a == counters_b
        assert "drop" in outcomes_a and "ok" in outcomes_a


class TestFaultModes:
    def test_drop_raises_injected_fault(self):
        _, prov = _stack()
        faulty = FaultyProvider(prov, FaultPlan(drop_rate=1.0, seed=0))
        with pytest.raises(InjectedFault, match="drop"):
            faulty.put_chunks(PutChunks(chunks=[(b"fp", b"data")]))
        assert faulty.fault_counters["drops"] == 1

    def test_close_loses_reply_but_state_changed(self):
        # The dangerous case: the request was delivered, the reply lost.
        _, prov = _stack()
        faulty = FaultyProvider(prov, FaultPlan(close_rate=1.0, seed=0))
        with pytest.raises(InjectedFault, match="close"):
            faulty.put_chunks(PutChunks(chunks=[(b"fp", b"data")]))
        # The chunk really was stored despite the lost reply.
        assert prov.get_chunks(GetChunks(fingerprints=[b"fp"])).chunks == [
            b"data"
        ]

    def test_delay_uses_injected_sleep(self):
        slept = []
        _, prov = _stack()
        faulty = FaultyProvider(
            prov,
            FaultPlan(
                delay_rate=1.0, delay_seconds=3.0, seed=0, sleep=slept.append
            ),
        )
        prov.put_chunks(PutChunks(chunks=[(b"fp", b"data")]))
        faulty.get_chunks(GetChunks(fingerprints=[b"fp"]))
        assert slept == [3.0]

    def test_corrupt_surfaces_as_protocol_error_or_garbage(self):
        _, prov = _stack()
        prov.put_chunks(PutChunks(chunks=[(b"fp", b"payload-bytes")]))
        faulty = FaultyProvider(prov, FaultPlan(corrupt_rate=1.0, seed=3))
        good = prov.get_chunks(GetChunks(fingerprints=[b"fp"])).chunks
        outcomes = set()
        for _ in range(30):
            try:
                reply = faulty.get_chunks(GetChunks(fingerprints=[b"fp"]))
                outcomes.add("garbage" if reply.chunks != good else "clean")
            except ProtocolError:
                outcomes.add("protocol_error")
        # Every delivery was corrupted: either the frame failed to decode
        # or the decoded data differs from the truth.
        assert "clean" not in outcomes
        assert outcomes  # at least one corruption observed


class TestClientUnderFaults:
    def test_upload_fails_cleanly_on_unrecovered_fault(self):
        # Without a retrying transport underneath, an injected drop
        # surfaces as ConnectionError — never silent data loss.
        km, prov = _stack()
        client = TedStoreClient(
            km,
            FaultyProvider(prov, FaultPlan(drop_rate=1.0, seed=0)),
            profile=SHACTR,
            sketch_width=_W,
            batch_size=100,
        )
        with pytest.raises(ConnectionError):
            client.upload("f", unique_file(20_000))


class TestQuorumUnderFaults:
    def test_degraded_quorum_derives_identical_keys(self):
        servers, _ = deal_quorum(3, 5, rng=random.Random(1))
        healthy_key = QuorumClient(3, rng=random.Random(2)).derive_key(
            b"fp", servers
        )
        plan = FaultPlan(drop_rate=0.25, seed=7)
        flaky = [FaultyQuorumServer(s, plan) for s in servers]
        client = QuorumClient(3, rng=random.Random(3))
        derived = []
        unavailable = 0
        for _ in range(40):
            try:
                derived.append(client.derive_key(b"fp", flaky))
            except ValueError:
                unavailable += 1  # >2 replicas down for this request
        assert derived  # quorum survived at least some degraded rounds
        assert set(derived) == {healthy_key}  # determinism across quorums
        assert client.stats["replica_failures"] > 0
        assert client.stats["degraded_derivations"] > 0

    def test_seeded_quorum_fault_run_is_deterministic(self):
        def run():
            servers, _ = deal_quorum(3, 5, rng=random.Random(1))
            plan = FaultPlan(drop_rate=0.3, seed=21)
            flaky = [FaultyQuorumServer(s, plan) for s in servers]
            client = QuorumClient(3, rng=random.Random(4))
            trace = []
            for i in range(30):
                try:
                    trace.append(client.derive_key(b"%d" % (i % 3), flaky))
                except ValueError:
                    trace.append(None)
            return trace, dict(client.stats)

        trace_a, stats_a = run()
        trace_b, stats_b = run()
        assert trace_a == trace_b
        assert stats_a == stats_b

    def test_quorum_exhaustion_raises_value_error(self):
        servers, _ = deal_quorum(3, 5, rng=random.Random(1))
        dead = [
            FaultyQuorumServer(s, FaultPlan(drop_rate=1.0, seed=0))
            for s in servers
        ]
        client = QuorumClient(3)
        with pytest.raises(ValueError, match="degraded below threshold"):
            client.derive_key(b"fp", dead)
        assert client.stats["replica_failures"] == 5

    def test_replicas_get_distinct_schedules(self):
        servers, _ = deal_quorum(3, 5, rng=random.Random(1))
        plan = FaultPlan(drop_rate=0.5, seed=5)
        flaky = [FaultyQuorumServer(s, plan) for s in servers]
        client = QuorumClient(3, rng=random.Random(6))
        for _ in range(20):
            try:
                client.derive_key(b"fp", flaky)
            except ValueError:
                pass
        drops = [f.fault_counters["drops"] for f in flaky]
        # A shared schedule would drop on identical request indices and
        # produce identical counts; distinct seeds must diverge.
        assert len(set(drops)) > 1


class TestPauseAndPartition:
    """Stateful whole-process fault kinds for the chaos harness."""

    def test_pause_blocks_calls_until_resume(self):
        import threading

        _, prov = _stack()
        prov.put_chunks(PutChunks(chunks=[(b"fp", b"data")]))
        faulty = FaultyProvider(prov, FaultPlan())
        faulty.pause()
        assert faulty.paused
        replies = []

        def blocked_call():
            replies.append(
                faulty.get_chunks(GetChunks(fingerprints=[b"fp"]))
            )

        thread = threading.Thread(target=blocked_call)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive()  # SIGSTOP analogue: alive but silent
        assert replies == []
        faulty.resume()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert replies[0].chunks == [b"data"]
        assert faulty.fault_counters["paused_calls"] == 1

    def test_partition_fails_instantly_until_heal(self):
        km, _ = _stack()
        faulty = FaultyKeyManager(km, FaultPlan())
        request = KeyGenRequest(hash_vectors=[[1, 2, 3, 4]])
        faulty.keygen(request)
        faulty.partition()
        assert faulty.partitioned
        with pytest.raises(InjectedFault, match="partition"):
            faulty.keygen(request)
        with pytest.raises(InjectedFault):
            faulty.stats()
        faulty.heal()
        assert not faulty.partitioned
        assert len(faulty.keygen(request).seeds) == 1
        assert faulty.fault_counters["partition_rejects"] == 2

    def test_partition_wins_over_a_concurrent_resume(self):
        """pause → partition → resume: woken callers see the partition."""
        import threading

        _, prov = _stack()
        faulty = FaultyProvider(prov, FaultPlan())
        faulty.pause()
        errors = []

        def blocked_call():
            try:
                faulty.stats()
            except InjectedFault as exc:
                errors.append(exc)

        thread = threading.Thread(target=blocked_call)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive()
        faulty.partition()
        faulty.resume()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert len(errors) == 1

    def test_quorum_server_exposes_the_same_toggles(self):
        servers, _ = deal_quorum(3, 5, rng=random.Random(1))
        flaky = FaultyQuorumServer(servers[0], FaultPlan())
        flaky.partition()
        with pytest.raises(InjectedFault):
            flaky.sign_blinded(b"point")
        flaky.heal()
